"""Quickstart: distributed sampling and counting on the hardcore model.

This example walks through the three tasks the paper studies -- inference,
approximate sampling and exact sampling -- on a small hardcore (weighted
independent set) instance, using the high-level API.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import total_variation
from repro.core import LocalSamplingProblem, estimate_partition_function
from repro.graphs import cycle_graph
from repro.inference import ExactInference
from repro.models import hardcore_model


def main() -> None:
    # A hardcore model on a 12-cycle with fugacity 0.8: every configuration
    # is an independent set, weighted by 0.8 per occupied node.  Degree-2
    # graphs are always in the uniqueness regime, so the paper's machinery
    # applies with polylogarithmic round complexity.
    graph = cycle_graph(12)
    model = hardcore_model(graph, fugacity=0.8)
    print(f"model: {model.name}, n = {model.size}, uniqueness = {model.metadata['uniqueness']}")

    # Pin node 0 to "occupied": instances carry a partial configuration tau,
    # which is what makes the problem self-reducible (Definition 2.2).
    problem = LocalSamplingProblem(model, pinning={0: 1}, seed=42)

    # --- Task 1: approximate inference (local counting) -------------------
    report = problem.infer(error=0.05)
    print(f"\ninference engine: {report.engine}, rounds: {report.rounds}")
    for node in (1, 3, 6):
        estimated = report.marginals[node][1]
        exact = problem.exact_marginal(node)[1]
        print(f"  P(node {node} occupied) ~ {estimated:.4f}   (exact {exact:.4f})")

    # --- Task 2: approximate sampling (Theorem 3.2) ------------------------
    sample = problem.sample(error=0.05)
    occupied = sorted(node for node, value in sample.configuration.items() if value == 1)
    print(f"\napproximate sample (rounds = {sample.rounds}): occupied set = {occupied}")

    # --- Task 3: exact sampling via the distributed JVV sampler (Thm 4.2) --
    exact_sample = problem.sample_exact()
    occupied = sorted(node for node, value in exact_sample.configuration.items() if value == 1)
    print(
        f"exact sample     (rounds = {exact_sample.rounds}, "
        f"accepted = {exact_sample.success}): occupied set = {occupied}"
    )

    # --- Bonus: global counting through the chain rule ---------------------
    counting = estimate_partition_function(problem.instance, ExactInference())
    exact_z = model.partition_function({0: 1})
    print(f"\nconditional partition function Z(tau): estimated {counting.estimate:.4f}, exact {exact_z:.4f}")

    # Sanity: the inference marginals are within the requested error.
    worst = max(
        total_variation(report.marginals[node], problem.exact_marginal(node))
        for node in problem.instance.free_nodes
    )
    print(f"worst marginal TV error: {worst:.4f} (requested 0.05)")

    # --- Bonus: the execution knob trio (engine / runtime / addresses) -----
    # `engine=` picks how one quantity is evaluated, `runtime=` picks which
    # backend executes, and -- for the cluster backend -- `addresses=` picks
    # which machines.  Here we rehearse a multi-machine deployment on one
    # host: two real worker subprocesses on loopback, reached over the same
    # TCP transport remote workers would use.  Every value is bit-identical
    # to the serial loop.
    from repro import cluster
    from repro.inference.ssm_inference import TruncatedBallInference
    from repro.runtime import Runtime

    with cluster.local.spawn_workers(2) as pool:
        runtime = Runtime(backend="cluster", addresses=pool.addresses)
        with runtime:
            engine = TruncatedBallInference(radius=2, engine="compiled", runtime=runtime)
            clustered = engine.marginals(problem.instance, error=0.05)
    serial = TruncatedBallInference(radius=2).marginals(problem.instance, error=0.05)
    print(
        f"\ncluster backend: 2 localhost workers at {pool.addresses}, "
        f"marginals identical to serial: {clustered == serial}"
    )


if __name__ == "__main__":
    main()
