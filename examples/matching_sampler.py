"""Exact sampling of matchings (the monomer--dimer model).

The paper derives an O(sqrt(Delta) log^3 n)-round exact sampler for matchings
from the strong spatial mixing of the monomer--dimer model (Bayati et al.)
through the line-graph duality.  This example:

1. builds the matching model of a 3x3 grid,
2. runs the distributed JVV sampler to draw exact samples,
3. translates the line-graph configurations back to edge sets and verifies
   they are matchings,
4. compares the empirical edge-occupancy marginals with the exact ones,
5. draws a batch of LubyGlauber chains through the batched runtime (all
   chains advance as one ``(chains, n)`` code matrix; see
   :mod:`repro.runtime`) and summarises their mixing with split R-hat.

(The per-node cost of the correlation-decay engine grows with the number of
self-avoiding walks in the line graph, so for an interactive example we keep
the grid small; the degree-scaling experiment lives in
``benchmarks/bench_matching_rounds.py``.)

Run with::

    python examples/matching_sampler.py
"""

from collections import Counter

from repro.analysis import split_r_hat
from repro.core import LocalSamplingProblem
from repro.gibbs import SamplingInstance
from repro.graphs import grid_graph
from repro.models import matching_model
from repro.models.matching import configuration_to_matching, is_valid_matching
from repro.runtime import ChainBatch


def main() -> None:
    graph = grid_graph(3, 3)
    model = matching_model(graph, edge_weight=1.5)
    print(
        f"monomer-dimer model on a 3x3 grid: {graph.number_of_edges()} edges, "
        f"edge weight {model.metadata['edge_weight']}, "
        f"SSM decay rate {model.metadata['ssm_decay_rate']:.3f}"
    )

    problem = LocalSamplingProblem(model, seed=7)

    num_samples = 12
    edge_counts: Counter = Counter()
    sizes = []
    failures = 0
    for index in range(num_samples):
        result = problem.sample_exact(seed=100 + index)
        matching = configuration_to_matching(model, result.configuration)
        assert is_valid_matching(graph, matching), "sampler returned a non-matching!"
        if not result.success:
            failures += 1
        sizes.append(len(matching))
        edge_counts.update(matching)

    print(f"\ndrew {num_samples} samples ({failures} with local failures flagged)")
    print(f"matching sizes: min {min(sizes)}, mean {sum(sizes) / len(sizes):.2f}, max {max(sizes)}")

    print(
        "\nmost frequently matched edges (empirical over "
        f"{num_samples} samples -- expect noise -- vs exact marginal):"
    )
    inverse = {edge: node for node, edge in model.metadata["edge_of_node"].items()}
    for edge, count in edge_counts.most_common(5):
        line_node = inverse[edge]
        exact = problem.exact_marginal(line_node)[1]
        print(f"  {edge}: empirical {count / num_samples:.2f}, exact {exact:.2f}")

    report = problem.infer(error=0.05)
    print(f"\ninference rounds for 5% accuracy: {report.rounds}")
    print(f"approximate sampler rounds (incl. scheduling): {problem.sample(0.05).rounds}")

    # Batched multi-chain sampling: 32 independent LubyGlauber chains advance
    # as one (chains, n) code matrix on the compiled engine.  Each chain is
    # bit-identical to the serial chain under its spawned seed; the per-round
    # matching-size traces feed the split R-hat mixing diagnostic.
    instance = SamplingInstance(model)
    batch = ChainBatch(instance, n_chains=32, seed=11)
    traces = batch.luby_rounds(40, statistic=lambda codes: codes.sum(axis=1))
    matchings = [
        configuration_to_matching(model, configuration)
        for configuration in batch.configurations()
    ]
    assert all(is_valid_matching(graph, matching) for matching in matchings)
    sizes = [len(matching) for matching in matchings]
    print(
        f"\nbatched runtime: {batch.n_chains} LubyGlauber chains x 40 rounds, "
        f"matching sizes min {min(sizes)} / mean {sum(sizes) / len(sizes):.2f} / "
        f"max {max(sizes)}"
    )
    print(f"split R-hat of the size traces: {split_r_hat(traces):.3f} (mixed if < 1.1)")


if __name__ == "__main__":
    main()
