"""Exact sampling of matchings (the monomer--dimer model).

The paper derives an O(sqrt(Delta) log^3 n)-round exact sampler for matchings
from the strong spatial mixing of the monomer--dimer model (Bayati et al.)
through the line-graph duality.  This example:

1. builds the matching model of a 3x3 grid,
2. runs the distributed JVV sampler to draw exact samples,
3. translates the line-graph configurations back to edge sets and verifies
   they are matchings,
4. compares the empirical edge-occupancy marginals with the exact ones.

(The per-node cost of the correlation-decay engine grows with the number of
self-avoiding walks in the line graph, so for an interactive example we keep
the grid small; the degree-scaling experiment lives in
``benchmarks/bench_matching_rounds.py``.)

Run with::

    python examples/matching_sampler.py
"""

from collections import Counter

from repro.core import LocalSamplingProblem
from repro.graphs import grid_graph
from repro.models import matching_model
from repro.models.matching import configuration_to_matching, is_valid_matching


def main() -> None:
    graph = grid_graph(3, 3)
    model = matching_model(graph, edge_weight=1.5)
    print(
        f"monomer-dimer model on a 3x3 grid: {graph.number_of_edges()} edges, "
        f"edge weight {model.metadata['edge_weight']}, "
        f"SSM decay rate {model.metadata['ssm_decay_rate']:.3f}"
    )

    problem = LocalSamplingProblem(model, seed=7)

    num_samples = 12
    edge_counts: Counter = Counter()
    sizes = []
    failures = 0
    for index in range(num_samples):
        result = problem.sample_exact(seed=100 + index)
        matching = configuration_to_matching(model, result.configuration)
        assert is_valid_matching(graph, matching), "sampler returned a non-matching!"
        if not result.success:
            failures += 1
        sizes.append(len(matching))
        edge_counts.update(matching)

    print(f"\ndrew {num_samples} samples ({failures} with local failures flagged)")
    print(f"matching sizes: min {min(sizes)}, mean {sum(sizes) / len(sizes):.2f}, max {max(sizes)}")

    print(
        "\nmost frequently matched edges (empirical over "
        f"{num_samples} samples -- expect noise -- vs exact marginal):"
    )
    inverse = {edge: node for node, edge in model.metadata["edge_of_node"].items()}
    for edge, count in edge_counts.most_common(5):
        line_node = inverse[edge]
        exact = problem.exact_marginal(line_node)[1]
        print(f"  {edge}: empirical {count / num_samples:.2f}, exact {exact:.2f}")

    report = problem.infer(error=0.05)
    print(f"\ninference rounds for 5% accuracy: {report.rounds}")
    print(f"approximate sampler rounds (incl. scheduling): {problem.sample(0.05).rounds}")


if __name__ == "__main__":
    main()
