"""The computational phase transition for distributed sampling.

The paper's headline application: sampling from the hardcore model takes
O(log^3 n) rounds below the uniqueness threshold lambda_c(Delta) and
Omega(diam) rounds above it.  This example measures the quantity behind both
sides of that statement -- the influence of a far-away boundary condition on
a node's marginal -- on a complete binary tree (Delta = 3, lambda_c = 4):

* below the threshold the influence decays with the distance, so a node only
  needs a small ball to answer accurately (the paper's upper bound applies);
* above the threshold the influence stays bounded away from zero even at the
  full depth of the tree, so any algorithm accurate on all boundary
  conditions must look essentially that far -- the Omega(diam) lower bound.

Run with::

    python examples/hardcore_phase_transition.py
"""

import networkx as nx

from repro.gibbs import SamplingInstance
from repro.models import hardcore_model, hardcore_uniqueness_threshold
from repro.spatialmixing import long_range_correlation


def main() -> None:
    depth = 4
    tree = nx.balanced_tree(2, depth)
    threshold = hardcore_uniqueness_threshold(3)
    accuracy = 0.1
    print(f"complete binary tree of depth {depth} ({tree.number_of_nodes()} nodes)")
    print(f"uniqueness threshold lambda_c(3) = {threshold:.3f}")
    print(f"target accuracy for the implied locality lower bound: {accuracy}\n")

    distances = list(range(1, depth + 1))
    header = (
        f"{'lambda/lambda_c':>16} | "
        + " | ".join(f"infl@d={d}" for d in distances)
        + " | locality lower bound"
    )
    print(header)
    print("-" * len(header))
    for ratio in (0.1, 0.25, 0.5, 1.0, 1.5, 2.5, 4.0):
        fugacity = ratio * threshold
        model = hardcore_model(tree, fugacity=fugacity)
        instance = SamplingInstance(model)
        influences = {
            d: long_range_correlation(instance, 0, distance=d, max_configs=24)
            for d in distances
        }
        lower_bound = depth
        for radius in range(0, depth + 1):
            if all(influences[d] <= 2 * accuracy for d in distances if d > radius):
                lower_bound = radius
                break
        regime = "uniqueness" if ratio < 1.0 else "NON-uniqueness"
        influence_cells = " | ".join(f"{influences[d]:>9.4f}" for d in distances)
        print(f"{ratio:>16.2f} | {influence_cells} | {lower_bound:>20d}   {regime}")

    print(
        "\nReading: below the threshold the boundary influence decays with the\n"
        "distance, so a logarithmic-radius ball determines every marginal and\n"
        "the paper's O(log^3 n)-round exact sampler applies.  Above the\n"
        "threshold the influence at distance = depth stays large, so accurate\n"
        "inference (hence sampling) needs to see a constant fraction of the\n"
        "tree -- the Omega(diam) lower bound of [FSY17], and together with the\n"
        "upper bound the first computational phase transition for distributed\n"
        "sampling."
    )


if __name__ == "__main__":
    main()
