"""Distributed inference and sampling for proper colorings.

Proper list-colorings are the paper's running example of self-reducibility:
pinning part of a q-coloring turns the rest into a list-coloring instance.
This example works on a triangle-free graph with q >= alpha* * Delta colors
(the Gamarnik--Katz--Misra strong-spatial-mixing regime the paper's coloring
application relies on) and shows:

1. per-node marginal inference with belief propagation and its accuracy,
2. approximate sampling through the Theorem 3.2 reduction,
3. the self-reduction: conditioning on a partial coloring and re-running
   inference on the reduced instance,
4. counting proper colorings through the chain rule.

Run with::

    python examples/coloring_inference.py
"""

from repro.analysis import total_variation
from repro.core import LocalSamplingProblem, estimate_solution_count
from repro.graphs import random_bipartite_regular_graph
from repro.inference import ExactInference
from repro.models import ALPHA_STAR, coloring_model


def main() -> None:
    degree, half_size = 3, 5
    graph = random_bipartite_regular_graph(degree, half_size, seed=11)
    num_colors = 6  # > alpha* * Delta = 5.29
    model = coloring_model(graph, num_colors=num_colors)
    print(
        f"triangle-free graph with {graph.number_of_nodes()} nodes, Delta = {degree}; "
        f"q = {num_colors} colors (alpha* * Delta = {ALPHA_STAR * degree:.2f}) "
        f"-> SSM regime: {model.metadata['ssm_regime']}"
    )

    anchor = ("L", 0)
    problem = LocalSamplingProblem(model, pinning={anchor: 0}, seed=3)

    # --- inference ----------------------------------------------------------
    report = problem.infer(error=0.05)
    print(f"\nBP inference, rounds = {report.rounds}")
    probes = list(problem.instance.free_nodes)[:3]
    for node in probes:
        estimate = report.marginals[node]
        exact = problem.exact_marginal(node)
        error = total_variation(estimate, exact)
        top = max(estimate, key=estimate.get)
        print(f"  node {node}: most likely color {top}, P ~ {estimate[top]:.3f}, TV error {error:.4f}")

    # --- sampling -----------------------------------------------------------
    sample = problem.sample(error=0.05)
    proper = all(
        sample.configuration[u] != sample.configuration[v] for u, v in graph.edges()
    )
    print(f"\nsampled coloring is proper: {proper} (rounds = {sample.rounds})")

    # --- self-reduction -----------------------------------------------------
    reduced = problem.conditioned({("R", 0): 1, ("R", 1): 2})
    reduced_report = reduced.infer(error=0.05)
    node = probes[0]
    print(
        f"\nafter pinning two more nodes, P(node {node} = 0) moves from "
        f"{report.marginals[node][0]:.3f} to {reduced_report.marginals[node][0]:.3f}"
    )

    # --- counting -----------------------------------------------------------
    count = estimate_solution_count(problem.instance, ExactInference())
    exact_count = model.partition_function({anchor: 0})
    print(
        f"\nproper colorings consistent with the pinning: "
        f"chain-rule estimate {count:.1f}, exact {exact_count:.1f}"
    )


if __name__ == "__main__":
    main()
