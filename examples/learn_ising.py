"""Weight learning round trip: sample, fit (PL and CD), sample again.

Demonstrates `repro.learning` end to end:

1. build a ground-truth Ising model and draw a dataset from it through
   the batched runtime;
2. fit the Ising family back to the data with the exact pseudo-likelihood
   estimator and with contrastive divergence (whose negative phase is
   `Runtime.run_chains`, here on the batched backend);
3. sample from the fitted model and compare its exact node marginals with
   the truth.

Run with:

    PYTHONPATH=src python examples/learn_ising.py
"""

from __future__ import annotations

from repro.analysis import total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.learning import IsingFamily, fit
from repro.models import ising_model
from repro.runtime import Runtime


def main() -> None:
    true_interaction, true_field = 0.4, 0.25
    graph = cycle_graph(10)
    truth = ising_model(
        graph, interaction=true_interaction, external_field=true_field
    )
    true_instance = SamplingInstance(truth, {})

    print("sampling 400 configurations from the true model (batched runtime)...")
    data = Runtime("batched", n_chains=400).run_chains(
        "glauber", true_instance, 300, seed=42
    )

    family = IsingFamily(graph)
    for method, options in (
        ("pl", {}),
        ("cd", {"runtime": "batched", "seed": 0}),
    ):
        result = fit(family, data, method=method, **options)
        fitted = result.parameters()
        print(
            f"\nmethod={method}: {result.iterations} iterations, "
            f"{'converged' if result.converged else 'schedule exhausted'}"
        )
        print(f"  interaction    : true {true_interaction:.3f}  "
              f"fitted {fitted['interaction']:.3f}")
        print(f"  external_field : true {true_field:.3f}  "
              f"fitted {fitted['external_field']:.3f}")

        # Fit-then-sample: the FitResult carries a ready-to-use distribution.
        fitted_instance = SamplingInstance(result.distribution, {})
        probe = true_instance.free_nodes[0]
        tv = total_variation(
            fitted_instance.target_marginal(probe),
            true_instance.target_marginal(probe),
        )
        print(f"  exact marginal TV at node {probe}: {tv:.4f}")

    print("\n(see src/repro/experiments/e13_learning.py for the full sweep)")


if __name__ == "__main__":
    main()
