"""Locality primitives on simple undirected graphs.

The LOCAL model measures information by graph distance: a t-round algorithm
at node ``v`` sees exactly the radius-t ball ``B_t(v)``.  These helpers make
that notion concrete and are used by the simulator to *enforce* locality
(nodes are handed ball subgraphs, never the full graph).

All functions accept plain :class:`networkx.Graph` objects.  Node labels can
be any hashable value; the simulator assigns integer IDs separately via
:func:`node_ids`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Set

import networkx as nx

Node = Hashable


def distance(graph: nx.Graph, u: Node, v: Node) -> int:
    """Shortest-path distance between ``u`` and ``v``.

    Raises :class:`networkx.NetworkXNoPath` if the nodes are disconnected.
    """
    return nx.shortest_path_length(graph, u, v)


def distances_from(graph: nx.Graph, source: Node, radius: int | None = None) -> Dict[Node, int]:
    """All shortest-path distances from ``source``.

    If ``radius`` is given, the BFS is truncated at that radius, which keeps
    the cost proportional to the ball size rather than the graph size.
    """
    if radius is not None and radius < 0:
        raise ValueError("radius must be non-negative")
    return dict(nx.single_source_shortest_path_length(graph, source, cutoff=radius))


def ball(graph: nx.Graph, center: Node, radius: int) -> Set[Node]:
    """The set ``B_r(v)`` of nodes within distance ``radius`` of ``center``."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return set(distances_from(graph, center, radius))


def sphere(graph: nx.Graph, center: Node, radius: int) -> Set[Node]:
    """Nodes at distance exactly ``radius`` from ``center``."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    dists = distances_from(graph, center, radius)
    return {node for node, dist in dists.items() if dist == radius}


def ball_subgraph(graph: nx.Graph, center: Node, radius: int) -> nx.Graph:
    """The subgraph induced by ``B_r(center)``, as an independent copy.

    The copy is what a LOCAL algorithm running for ``radius`` rounds at
    ``center`` is allowed to inspect.
    """
    return graph.subgraph(ball(graph, center, radius)).copy()


def induced_subgraph(graph: nx.Graph, nodes: Iterable[Node]) -> nx.Graph:
    """Copy of the subgraph induced by ``nodes``."""
    return graph.subgraph(set(nodes)).copy()


def boundary(graph: nx.Graph, region: Iterable[Node]) -> Set[Node]:
    """External vertex boundary of ``region``.

    Returns the nodes outside ``region`` adjacent to at least one node inside
    it.  In Gibbs-distribution terms this is the separator through which the
    outside influences the inside (Proposition 2.1 in the paper).
    """
    region_set = set(region)
    result: Set[Node] = set()
    for node in region_set:
        for neighbor in graph.neighbors(node):
            if neighbor not in region_set:
                result.add(neighbor)
    return result


def power_graph(graph: nx.Graph, power: int) -> nx.Graph:
    """The graph power ``G^k``: an edge joins u, v whenever dist(u, v) <= k.

    Lemma 3.1 builds a network decomposition of ``G^{r+1}`` to schedule an
    SLOCAL algorithm of locality ``r``.
    """
    if power < 1:
        raise ValueError("power must be at least 1")
    result = nx.Graph()
    result.add_nodes_from(graph.nodes())
    for node in graph.nodes():
        for other, dist in distances_from(graph, node, power).items():
            if other != node and dist <= power:
                result.add_edge(node, other)
    return result


def diameter(graph: nx.Graph) -> int:
    """Diameter of a connected graph (0 for a single node)."""
    if graph.number_of_nodes() <= 1:
        return 0
    return nx.diameter(graph)


def node_ids(graph: nx.Graph) -> Dict[Node, int]:
    """Deterministic unique IDs for the nodes of ``graph``.

    The LOCAL model assumes each node holds a unique identifier.  We assign
    consecutive integers in sorted order of the node labels (falling back to
    the string representation when labels are not mutually comparable), so
    the assignment is reproducible across runs.
    """
    try:
        ordered = sorted(graph.nodes())
    except TypeError:
        ordered = sorted(graph.nodes(), key=repr)
    return {node: index for index, node in enumerate(ordered)}
