"""Graph and hypergraph dualities used to express edge models as vertex models.

The paper's framework is stated for vertex-indexed joint distributions.
Edge models -- matchings of a graph, matchings of a hypergraph -- are
handled "through dualities of graphs/hypergraphs, which preserve the
distances" (Section 5).  Concretely:

* a matching of ``G`` is an independent set of the *line graph* ``L(G)``;
* a matching of a hypergraph ``H`` is an independent set of the *dual graph*
  whose vertices are the hyperedges of ``H``, adjacent when they intersect.

Both constructions change distances by at most a constant factor, so LOCAL
round complexities transfer up to constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Sequence, Tuple

import networkx as nx

Node = Hashable
Edge = Tuple[Node, Node]


def line_graph_with_map(graph: nx.Graph) -> Tuple[nx.Graph, Dict[Node, Edge]]:
    """Line graph of ``graph`` together with the vertex -> original-edge map.

    The line graph ``L(G)`` has one vertex per edge of ``G``; two vertices
    are adjacent when the corresponding edges share an endpoint.  Vertices of
    the returned graph are integers ``0..m-1`` (deterministic order), and the
    mapping gives the original edge (as a sorted tuple) for each of them.
    """
    edges = [_canonical_edge(u, v) for u, v in graph.edges()]
    edges.sort(key=repr)
    index_of = {edge: index for index, edge in enumerate(edges)}
    line = nx.Graph()
    line.add_nodes_from(range(len(edges)))
    incident: Dict[Node, List[int]] = {}
    for edge, index in index_of.items():
        for endpoint in edge:
            incident.setdefault(endpoint, []).append(index)
    for indices in incident.values():
        for i, a in enumerate(indices):
            for b in indices[i + 1:]:
                line.add_edge(a, b)
    mapping = {index: edge for edge, index in index_of.items()}
    return line, mapping


def _canonical_edge(u: Node, v: Node) -> Edge:
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass
class Hypergraph:
    """A hypergraph given by its vertices and hyperedges.

    ``rank`` is the maximum hyperedge size and ``max_degree`` the maximum
    number of hyperedges containing a single vertex -- the two parameters
    that the weighted-hypergraph-matching uniqueness threshold depends on.
    """

    vertices: List[Node]
    hyperedges: List[FrozenSet[Node]] = field(default_factory=list)

    def __post_init__(self) -> None:
        vertex_set = set(self.vertices)
        normalized = []
        for hyperedge in self.hyperedges:
            members = frozenset(hyperedge)
            if not members:
                raise ValueError("hyperedges must be non-empty")
            if not members <= vertex_set:
                raise ValueError(f"hyperedge {set(members)} uses unknown vertices")
            normalized.append(members)
        self.hyperedges = normalized

    @property
    def rank(self) -> int:
        """Maximum hyperedge size (0 for an empty hypergraph)."""
        return max((len(h) for h in self.hyperedges), default=0)

    @property
    def max_degree(self) -> int:
        """Maximum number of hyperedges incident to a single vertex."""
        degree: Dict[Node, int] = {v: 0 for v in self.vertices}
        for hyperedge in self.hyperedges:
            for vertex in hyperedge:
                degree[vertex] += 1
        return max(degree.values(), default=0)

    @classmethod
    def from_graph(cls, graph: nx.Graph) -> "Hypergraph":
        """View an ordinary graph as a rank-2 hypergraph."""
        return cls(
            vertices=list(graph.nodes()),
            hyperedges=[frozenset(edge) for edge in graph.edges()],
        )

    @classmethod
    def random_regular(cls, num_vertices: int, rank: int, num_edges: int, seed: int = 0) -> "Hypergraph":
        """Random hypergraph with ``num_edges`` hyperedges of size ``rank``."""
        import numpy as np

        if rank < 2 or rank > num_vertices:
            raise ValueError("rank must satisfy 2 <= rank <= num_vertices")
        rng = np.random.default_rng(seed)
        vertices = list(range(num_vertices))
        hyperedges: List[FrozenSet[Node]] = []
        seen = set()
        attempts = 0
        while len(hyperedges) < num_edges and attempts < 100 * num_edges:
            attempts += 1
            members = frozenset(int(v) for v in rng.choice(num_vertices, size=rank, replace=False))
            if members in seen:
                continue
            seen.add(members)
            hyperedges.append(members)
        return cls(vertices=vertices, hyperedges=hyperedges)


def hypergraph_dual_graph(hypergraph: Hypergraph) -> Tuple[nx.Graph, Dict[int, FrozenSet[Node]]]:
    """Intersection (dual) graph of a hypergraph.

    Vertices are hyperedge indices ``0..m-1``; two are adjacent when the
    hyperedges share a vertex.  A matching of the hypergraph is exactly an
    independent set of this graph, which is how the weighted hypergraph
    matching model is reduced to a hardcore-style vertex model.
    """
    dual = nx.Graph()
    dual.add_nodes_from(range(len(hypergraph.hyperedges)))
    for i, first in enumerate(hypergraph.hyperedges):
        for j in range(i + 1, len(hypergraph.hyperedges)):
            if first & hypergraph.hyperedges[j]:
                dual.add_edge(i, j)
    mapping = dict(enumerate(hypergraph.hyperedges))
    return dual, mapping


def matching_to_line_graph_configuration(
    graph: nx.Graph, matching: Sequence[Edge]
) -> Dict[int, int]:
    """Translate a matching of ``graph`` to a 0/1 configuration on its line graph.

    Convenience used by tests to cross-check the edge-model duality.
    """
    _, mapping = line_graph_with_map(graph)
    inverse = {edge: index for index, edge in mapping.items()}
    chosen = {_canonical_edge(u, v) for u, v in matching}
    for edge in chosen:
        if edge not in inverse:
            raise ValueError(f"{edge} is not an edge of the graph")
    return {index: int(edge in chosen) for index, edge in mapping.items()}
