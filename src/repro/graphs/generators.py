"""Reproducible graph generators for the experiments.

Every generator that involves randomness takes an integer ``seed`` so that
experiments and tests are deterministic.  The graphs returned are plain
:class:`networkx.Graph` instances with hashable node labels.
"""

from __future__ import annotations

import itertools

import networkx as nx
import numpy as np


def path_graph(n: int) -> nx.Graph:
    """Path on ``n`` nodes labelled ``0..n-1``."""
    _require_positive(n)
    return nx.path_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """Cycle on ``n >= 3`` nodes labelled ``0..n-1``."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    return nx.cycle_graph(n)


def complete_graph(n: int) -> nx.Graph:
    """Complete graph on ``n`` nodes."""
    _require_positive(n)
    return nx.complete_graph(n)


def star_graph(leaves: int) -> nx.Graph:
    """Star with one hub (label 0) and ``leaves`` leaves."""
    if leaves < 0:
        raise ValueError("leaves must be non-negative")
    return nx.star_graph(leaves)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """2D grid with nodes labelled ``(row, col)``."""
    _require_positive(rows)
    _require_positive(cols)
    return nx.grid_2d_graph(rows, cols)


def torus_graph(rows: int, cols: int) -> nx.Graph:
    """2D torus (grid with wrap-around), every node has degree 4."""
    if rows < 3 or cols < 3:
        raise ValueError("a torus needs at least 3 rows and 3 columns")
    return nx.grid_2d_graph(rows, cols, periodic=True)


def random_tree(n: int, seed: int = 0) -> nx.Graph:
    """Uniformly random labelled tree on ``n`` nodes (via Pruefer sequences)."""
    _require_positive(n)
    if n <= 2:
        return nx.path_graph(n)
    rng = np.random.default_rng(seed)
    prufer = [int(rng.integers(0, n)) for _ in range(n - 2)]
    return nx.from_prufer_sequence(prufer)


def random_regular_graph(degree: int, n: int, seed: int = 0) -> nx.Graph:
    """Random ``degree``-regular simple graph on ``n`` nodes."""
    _require_positive(n)
    if degree < 0 or degree >= n:
        raise ValueError("degree must satisfy 0 <= degree < n")
    if (degree * n) % 2 != 0:
        raise ValueError("degree * n must be even")
    return nx.random_regular_graph(degree, n, seed=seed)


def erdos_renyi_graph(n: int, probability: float, seed: int = 0) -> nx.Graph:
    """Erdos-Renyi G(n, p) graph."""
    _require_positive(n)
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    return nx.gnp_random_graph(n, probability, seed=seed)


def random_bipartite_regular_graph(degree: int, half_size: int, seed: int = 0) -> nx.Graph:
    """Random bipartite ``degree``-regular graph with ``half_size`` nodes per side.

    Bipartite graphs are triangle-free, which makes them the natural test bed
    for the triangle-free coloring application (q >= alpha * Delta).  The
    construction unions ``degree`` random perfect matchings between the two
    sides and retries until the result is simple and connected (or returns
    the last simple attempt if connectivity is not achieved).
    """
    _require_positive(half_size)
    if degree < 1 or degree > half_size:
        raise ValueError("degree must satisfy 1 <= degree <= half_size")
    rng = np.random.default_rng(seed)
    left = [("L", i) for i in range(half_size)]
    right = [("R", i) for i in range(half_size)]
    last_simple: nx.Graph | None = None
    for _ in range(200):
        graph = nx.Graph()
        graph.add_nodes_from(left)
        graph.add_nodes_from(right)
        simple = True
        for _ in range(degree):
            permutation = rng.permutation(half_size)
            for i, j in enumerate(permutation):
                u, v = left[i], right[int(j)]
                if graph.has_edge(u, v):
                    simple = False
                    break
                graph.add_edge(u, v)
            if not simple:
                break
        if not simple:
            continue
        last_simple = graph
        if nx.is_connected(graph):
            return graph
    if last_simple is None:
        raise RuntimeError("failed to build a simple bipartite regular graph")
    return last_simple


def is_triangle_free(graph: nx.Graph) -> bool:
    """Whether ``graph`` contains no triangle (3-cycle)."""
    for u, v in graph.edges():
        if any(True for _ in nx.common_neighbors(graph, u, v)):
            return False
    return True


def all_connected_graphs(n: int):
    """Yield every connected simple graph on nodes ``0..n-1`` (small n only).

    Used by exhaustive property tests; the number of graphs grows doubly
    exponentially so ``n`` should be at most 5.
    """
    if n > 5:
        raise ValueError("exhaustive enumeration is limited to n <= 5")
    nodes = list(range(n))
    possible_edges = list(itertools.combinations(nodes, 2))
    for bits in itertools.product([0, 1], repeat=len(possible_edges)):
        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        graph.add_edges_from(edge for edge, bit in zip(possible_edges, bits) if bit)
        if n <= 1 or nx.is_connected(graph):
            yield graph


def _require_positive(n: int) -> None:
    if n < 1:
        raise ValueError("graph size must be positive")
