"""Graph substrate used by every other subsystem.

The LOCAL model operates on simple undirected graphs.  This package wraps
:mod:`networkx` with the graph-locality primitives the paper's algorithms
need (r-balls, power graphs, boundary extraction), a set of reproducible
graph generators used by the experiments, and the line-graph / hypergraph
dualities used to express edge models (matchings, hypergraph matchings) as
vertex models.
"""

from repro.graphs.structure import (
    ball,
    ball_subgraph,
    boundary,
    diameter,
    distance,
    distances_from,
    induced_subgraph,
    node_ids,
    power_graph,
    sphere,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    is_triangle_free,
    path_graph,
    random_bipartite_regular_graph,
    random_regular_graph,
    random_tree,
    star_graph,
    torus_graph,
)
from repro.graphs.duality import (
    Hypergraph,
    hypergraph_dual_graph,
    line_graph_with_map,
)

__all__ = [
    "ball",
    "ball_subgraph",
    "boundary",
    "diameter",
    "distance",
    "distances_from",
    "induced_subgraph",
    "node_ids",
    "power_graph",
    "sphere",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "is_triangle_free",
    "path_graph",
    "random_bipartite_regular_graph",
    "random_regular_graph",
    "random_tree",
    "star_graph",
    "torus_graph",
    "Hypergraph",
    "hypergraph_dual_graph",
    "line_graph_with_map",
]
