"""Weight learning: estimate Gibbs factor weights from observed configurations.

The inverse problem to everything else in this repository: given samples
*from* a Gibbs distribution, recover the parameters that generated them.
Two estimators, one facade:

``families``
    :class:`ModelFamily` -- a ``theta``-parameterised family on a fixed
    graph with exact sufficient statistics (``IsingFamily``,
    ``HardcoreFamily``); the engine's weight-update path
    (:meth:`~repro.gibbs.distribution.GibbsDistribution.update_factors` /
    :meth:`~repro.engine.compiled.CompiledGibbs.reweighted`) makes
    re-evaluating the family at a new ``theta`` cheap.
``suffstats``
    Vectorised statistics extraction from ``(samples, n)`` code matrices in
    the engine's integer coding.
``pseudolikelihood``
    The exact per-node conditional PL objective + gradient (via the same
    batched conditional gathers the sampler uses), with L2 regularisation.
``cd``
    Contrastive-divergence / persistent-CD gradient estimation whose
    negative phase is literally ``Runtime.run_chains`` -- batched, process-
    and cluster-parallel through the ``runtime=`` knob, bit-identical
    fitted weights on every backend.
``optimize``
    Deterministic optimisers: adaptive-step gradient ascent (default),
    gated scipy L-BFGS, and the fixed-schedule stochastic path for CD.
``trainer``
    The :func:`fit` / :class:`Trainer` facade returning a
    :class:`FitResult` (fitted ``GibbsDistribution`` + training log), with
    obs spans/metrics per iteration; the ``repro-fit`` console script
    (``python -m repro.learning``) drives it from the command line.
"""

from repro.learning.cd import (
    cd_gradient,
    negative_phase_seeds,
    persistent_state,
    sweep_steps,
)
from repro.learning.families import (
    FAMILIES,
    HardcoreFamily,
    IsingFamily,
    ModelFamily,
    family_by_name,
)
from repro.learning.optimize import (
    OptimizeResult,
    follow_gradient,
    maximize,
    maximize_ascent,
    maximize_lbfgs,
    scipy_available,
)
from repro.learning.pseudolikelihood import pl_value_and_grad
from repro.learning.suffstats import (
    decode_codes,
    empirical_node_marginals,
    encode_configurations,
    factor_value_counts,
    feature_counts,
    mean_feature_counts,
)
from repro.learning.trainer import FitResult, Trainer, fit

__all__ = [
    "ModelFamily",
    "IsingFamily",
    "HardcoreFamily",
    "FAMILIES",
    "family_by_name",
    "encode_configurations",
    "decode_codes",
    "feature_counts",
    "mean_feature_counts",
    "empirical_node_marginals",
    "factor_value_counts",
    "pl_value_and_grad",
    "cd_gradient",
    "persistent_state",
    "negative_phase_seeds",
    "sweep_steps",
    "OptimizeResult",
    "maximize",
    "maximize_ascent",
    "maximize_lbfgs",
    "follow_gradient",
    "scipy_available",
    "Trainer",
    "FitResult",
    "fit",
]
