"""``repro-fit``: fit model weights from sampled data, from the shell.

A self-contained round trip: build a generating model on a named graph,
sample a synthetic dataset from it through ``Runtime.run_chains``, fit the
family back to the data with the chosen estimator, and report true vs
fitted parameters (human-readable table by default, ``--json`` for
machines).  The uninstalled equivalent is ``python -m repro.learning``.

Examples::

    repro-fit --family ising --graph cycle:12 --interaction 0.4 --field 0.2 \\
        --samples 400 --method pl
    repro-fit --family hardcore --graph path:10 --fugacity 1.5 \\
        --method cd --runtime batched --seed 7 --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.gibbs.instance import SamplingInstance
from repro.graphs import cycle_graph, grid_graph, path_graph
from repro.learning.families import FAMILIES, family_by_name
from repro.learning.trainer import Trainer
from repro.runtime import chain_seed_sequences, resolve_runtime

_GRAPHS = {
    "cycle": cycle_graph,
    "path": path_graph,
    "grid": grid_graph,
}


def _parse_graph(spec: str):
    """``kind:n`` -> a graph (``grid:k`` builds a ``k x k`` grid)."""
    kind, _, size = spec.partition(":")
    if kind not in _GRAPHS or not size:
        raise argparse.ArgumentTypeError(
            f"graph spec {spec!r} is not KIND:N with KIND in {sorted(_GRAPHS)}"
        )
    try:
        n = int(size)
    except ValueError:
        raise argparse.ArgumentTypeError(f"graph size {size!r} is not an integer")
    if n < 2:
        raise argparse.ArgumentTypeError("graph size must be at least 2")
    if kind == "grid":
        return grid_graph(n, n)
    return _GRAPHS[kind](n)


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-fit",
        description="Sample a synthetic dataset from a known model and fit "
        "the family back to it (weight-recovery round trip).",
    )
    parser.add_argument(
        "--family", choices=sorted(FAMILIES), default="ising",
        help="model family to generate from and fit (default: ising)",
    )
    parser.add_argument(
        "--graph", type=_parse_graph, default="cycle:12", metavar="KIND:N",
        help="graph spec: cycle:N, path:N or grid:K (default: cycle:12)",
    )
    parser.add_argument(
        "--interaction", type=float, default=0.4,
        help="true Ising interaction J (default: 0.4)",
    )
    parser.add_argument(
        "--field", type=float, default=0.2,
        help="true Ising external field h (default: 0.2)",
    )
    parser.add_argument(
        "--fugacity", type=float, default=1.5,
        help="true hardcore fugacity lambda (default: 1.5)",
    )
    parser.add_argument(
        "--samples", type=int, default=400,
        help="dataset size (default: 400)",
    )
    parser.add_argument(
        "--burn-in", type=int, default=300, dest="burn_in",
        help="sampler steps per dataset chain (default: 300)",
    )
    parser.add_argument(
        "--method", choices=("pl", "cd"), default="pl",
        help="estimator (default: pl)",
    )
    parser.add_argument(
        "--runtime", default="batched",
        choices=("serial", "batched", "process", "cluster"),
        help="execution backend for sampling and the CD negative phase "
        "(default: batched)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed (default: 0)")
    parser.add_argument(
        "--l2", type=float, default=0.0, help="L2 regularisation (default: 0)"
    )
    parser.add_argument(
        "--max-iter", type=int, default=None, dest="max_iter",
        help="optimiser iteration cap (default: per-method)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit one JSON object instead of a table"
    )
    return parser.parse_args(argv)


def _true_theta(args: argparse.Namespace) -> np.ndarray:
    if args.family == "ising":
        return np.array([args.interaction, args.field])
    return np.array([float(np.log(args.fugacity))])


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    family = family_by_name(args.family, args.graph)
    true_theta = _true_theta(args)
    generating = family.build(true_theta)
    instance = SamplingInstance(generating, {})
    runtime = resolve_runtime(args.runtime)
    data = runtime.run_chains(
        "glauber",
        instance,
        args.burn_in,
        seeds=chain_seed_sequences(args.seed, args.samples),
    )
    trainer = Trainer(
        family,
        method=args.method,
        runtime=runtime,
        l2=args.l2,
        max_iter=args.max_iter,
        seed=args.seed,
    )
    result = trainer.fit(data)
    fitted = result.parameters()
    names = family.parameter_names
    rows = [
        (name, float(true_theta[i]), fitted[name], abs(float(true_theta[i]) - fitted[name]))
        for i, name in enumerate(names)
    ]
    if args.json:
        payload = {
            "family": args.family,
            "method": args.method,
            "runtime": args.runtime,
            "samples": args.samples,
            "seed": args.seed,
            "iterations": result.iterations,
            "converged": result.converged,
            "parameters": {
                name: {"true": true, "fitted": fit_value, "error": error}
                for name, true, fit_value, error in rows
            },
        }
        print(json.dumps(payload, sort_keys=True))
    else:
        print(
            f"repro-fit: {args.family} on {args.graph.number_of_nodes()} nodes, "
            f"{args.samples} samples, method={args.method}, runtime={args.runtime}"
        )
        width = max(len(name) for name in names)
        print(f"{'parameter':<{width}}  {'true':>10}  {'fitted':>10}  {'error':>10}")
        for name, true, fit_value, error in rows:
            print(f"{name:<{width}}  {true:>10.4f}  {fit_value:>10.4f}  {error:>10.4f}")
        print(
            f"{result.iterations} iterations, "
            f"{'converged' if result.converged else 'not converged'}"
        )
    if hasattr(runtime, "shutdown"):
        runtime.shutdown()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
