"""The ``Trainer`` facade: fit a model family to observed configurations.

One entry point covers both estimators::

    from repro.learning import IsingFamily, fit

    result = fit(IsingFamily(graph), samples, method="pl")
    result.theta          # fitted parameter vector
    result.distribution   # a fresh GibbsDistribution at the fitted weights
    result.log            # per-iteration training log

``method="pl"`` maximises the exact pseudo-likelihood with the
deterministic optimiser layer (:mod:`repro.learning.optimize`);
``method="cd"`` follows contrastive-divergence gradient estimates whose
negative phase rides :meth:`repro.runtime.executor.Runtime.run_chains`
(:mod:`repro.learning.cd`) -- pass ``runtime="batched"`` / ``"process"`` /
``"cluster"`` to parallelise it, with bit-identical fitted weights on every
backend for the same seed.  ``persistent=True`` keeps the negative chains
alive across iterations through the runtime's resumable
:class:`~repro.runtime.chains.ChainState` (serial/batched backends).

Observability: when the process-wide obs handle is enabled (``obs=True``
here, ``Runtime(obs=True)``, or :func:`repro.obs.enable`), each fit emits a
``learning.fit`` span, per-iteration ``learning.iteration`` spans, and
``learning.*`` metrics; tracing never touches the estimators' RNG, so
results are bit-identical with obs on or off.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.learning.cd import cd_gradient, persistent_state
from repro.learning.families import ModelFamily
from repro.learning.optimize import OptimizeResult, follow_gradient, maximize
from repro.learning.pseudolikelihood import pl_value_and_grad
from repro.learning.suffstats import encode_configurations
from repro.runtime import resolve_runtime


class FitResult:
    """A fitted model: parameters, distribution, and the training log."""

    __slots__ = (
        "theta",
        "distribution",
        "family",
        "method",
        "log",
        "converged",
        "iterations",
        "value",
    )

    def __init__(
        self,
        theta: np.ndarray,
        distribution,
        family: ModelFamily,
        method: str,
        log: List[dict],
        converged: bool,
        iterations: int,
        value: Optional[float],
    ) -> None:
        self.theta = theta
        #: A fresh :class:`~repro.gibbs.distribution.GibbsDistribution` at
        #: the fitted weights (independent of the family's mutable template).
        self.distribution = distribution
        self.family = family
        self.method = method
        self.log = log
        self.converged = converged
        self.iterations = iterations
        #: Final objective value (pseudo-likelihood fits only).
        self.value = value

    def parameters(self) -> dict:
        """``{parameter name: fitted value}``."""
        return {
            name: float(value)
            for name, value in zip(self.family.parameter_names, self.theta)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.4f}" for k, v in self.parameters().items())
        return (
            f"FitResult(method={self.method!r}, {inner}, "
            f"iterations={self.iterations}, converged={self.converged})"
        )


class Trainer:
    """A configured estimator for one model family.

    Parameters
    ----------
    family : ModelFamily
        The parameterised family to fit.
    method : str
        ``"pl"`` (exact pseudo-likelihood, default) or ``"cd"``
        (contrastive divergence).
    runtime : None, str or Runtime
        Negative-phase execution backend (CD only); every backend yields
        bit-identical fitted weights for the same seed.
    kernel : str or ChainKernel
        Negative-phase dynamics (CD only).
    l2 : float
        L2 regularisation strength.
    optimizer : str
        PL optimiser: ``"ascent"`` (deterministic, default), ``"lbfgs"``
        (requires scipy), or ``"auto"``.
    max_iter, step, tol, decay
        Optimiser schedule; ``decay`` applies to the CD step schedule only.
    k : int
        CD-k sweep count per negative phase.  Non-persistent chains restart
        from the deterministic greedy state every iteration, so ``k`` is
        also the negative phase's burn-in -- hence the default of 10 sweeps
        rather than the classical CD-1 (which assumes data-initialised
        chains).
    n_negative : int
        Negative chains per CD iteration.
    persistent : bool
        Persistent CD: keep the negative chains alive across iterations
        (serial/batched runtimes only).
    seed : int
        Root seed of the CD negative phases.
    obs : bool or repro.obs.Observability, optional
        As on :class:`~repro.runtime.executor.Runtime`: ``True`` enables
        the process-wide obs handle for the duration of each ``fit`` call.
    """

    def __init__(
        self,
        family: ModelFamily,
        method: str = "pl",
        runtime=None,
        kernel="glauber",
        l2: float = 0.0,
        optimizer: str = "ascent",
        max_iter: Optional[int] = None,
        step: Optional[float] = None,
        tol: float = 1e-5,
        decay: float = 1.0,
        k: int = 10,
        n_negative: int = 64,
        persistent: bool = False,
        seed: int = 0,
        obs: Union[None, bool, object] = None,
    ) -> None:
        if method not in ("pl", "cd"):
            raise ValueError(f'method must be "pl" or "cd", got {method!r}')
        self.family = family
        self.method = method
        self.runtime = runtime
        self.kernel = kernel
        self.l2 = float(l2)
        self.optimizer = optimizer
        self.max_iter = max_iter if max_iter is not None else (200 if method == "pl" else 80)
        self.step = step if step is not None else (0.5 if method == "pl" else 0.01)
        self.tol = float(tol)
        self.decay = float(decay)
        self.k = int(k)
        self.n_negative = int(n_negative)
        self.persistent = bool(persistent)
        self.seed = int(seed)
        self.obs = obs

    # ------------------------------------------------------------------
    def fit(
        self,
        data: Union[np.ndarray, Sequence[dict]],
        theta0: Optional[np.ndarray] = None,
    ) -> FitResult:
        """Fit the family to the data; returns a :class:`FitResult`.

        ``data`` is either a ``(samples, n)`` code matrix in compiled
        coding or a sequence of configuration dicts (the samplers' output
        format), encoded via the family template's compiled engine.
        """
        from repro import obs as obs_api

        owned = False
        if self.obs is True and obs_api.active() is None:
            obs_api.enable()
            owned = True
        elif self.obs is not None and self.obs not in (True, False):
            obs_api.install(self.obs)
        try:
            return self._fit(data, theta0)
        finally:
            if owned:
                obs_api.disable()

    def _fit(self, data, theta0) -> FitResult:
        family = self.family
        codes = self._encode(data)
        start = (
            np.zeros(family.n_parameters)
            if theta0 is None
            else np.asarray(theta0, dtype=float).copy()
        )
        if len(start) != family.n_parameters:
            raise ValueError(
                f"theta0 has {len(start)} entries; the family has "
                f"{family.n_parameters} parameters {family.parameter_names}"
            )
        with obs.span(
            "learning.fit",
            family=type(family).__name__,
            method=self.method,
            samples=int(codes.shape[0]),
            nodes=int(codes.shape[1]),
        ):
            if self.method == "pl":
                outcome = self._fit_pl(codes, start)
            else:
                outcome = self._fit_cd(codes, start)
        handle = obs.active()
        if handle is not None:
            handle.metrics.counter("learning.fits").inc()
            handle.metrics.gauge("learning.last_iterations").set(outcome.iterations)
        theta = outcome.theta
        return FitResult(
            theta,
            family.build(theta),
            family,
            self.method,
            outcome.trajectory,
            outcome.converged,
            outcome.iterations,
            outcome.value,
        )

    def _fit_pl(self, codes: np.ndarray, theta0: np.ndarray) -> OptimizeResult:
        def value_and_grad(theta):
            with obs.span("learning.iteration", method="pl"):
                value, grad = pl_value_and_grad(
                    self.family, codes, theta, l2=self.l2
                )
            handle = obs.active()
            if handle is not None:
                handle.metrics.counter("learning.pl.evaluations").inc()
                handle.metrics.gauge("learning.pl.objective").set(value)
            return value, grad

        return maximize(
            value_and_grad,
            theta0,
            method=self.optimizer,
            max_iter=self.max_iter,
            tol=self.tol,
            **({"step": self.step} if self.optimizer == "ascent" else {}),
        )

    def _fit_cd(self, codes: np.ndarray, theta0: np.ndarray) -> OptimizeResult:
        runtime = resolve_runtime(self.runtime)
        state = None
        if self.persistent:
            layout = "serial" if runtime.is_serial else "batched"
            state = persistent_state(
                self.family,
                theta0,
                codes,
                kernel=self.kernel,
                n_negative=self.n_negative,
                seed=self.seed,
                layout=layout,
            )

        def grad_fn(theta, iteration):
            with obs.span("learning.iteration", method="cd", iteration=iteration):
                grad, _ = cd_gradient(
                    self.family,
                    codes,
                    theta,
                    kernel=self.kernel,
                    runtime=runtime,
                    k=self.k,
                    n_negative=self.n_negative,
                    seed=self.seed,
                    iteration=iteration,
                    l2=self.l2,
                    state=state,
                )
            handle = obs.active()
            if handle is not None:
                handle.metrics.counter("learning.cd.iterations").inc()
            return grad

        return follow_gradient(
            grad_fn,
            theta0,
            step=self.step,
            decay=self.decay,
            max_iter=self.max_iter,
            tol=self.tol if self.tol else 0.0,
        )

    def _encode(self, data) -> np.ndarray:
        if isinstance(data, np.ndarray):
            codes = np.asarray(data, dtype=np.int64)
            if codes.ndim != 2:
                raise ValueError(
                    f"a code-matrix dataset must be 2-D, got shape {codes.shape}"
                )
            return codes
        compiled = self.family.template().compiled_engine()
        return encode_configurations(compiled, list(data))


def fit(
    family: ModelFamily,
    data: Union[np.ndarray, Sequence[dict]],
    method: str = "pl",
    theta0: Optional[np.ndarray] = None,
    **options,
) -> FitResult:
    """Fit a model family to data (the one-call form of :class:`Trainer`).

    See :class:`Trainer` for the keyword options (``runtime=``, ``kernel=``,
    ``l2=``, ``k=``, ``persistent=``, ``seed=``, ``obs=``, ...).
    """
    return Trainer(family, method=method, **options).fit(data, theta0=theta0)
