"""Exact pseudo-likelihood objective and gradient.

The pseudo-likelihood of a dataset ``{sigma^(i)}`` under parameters
``theta`` is the mean over samples and nodes of the exact local conditional
log-probability

.. math::

    \\mathrm{PL}(\\theta) = \\frac{1}{m} \\sum_i \\sum_v
        \\log p_\\theta(\\sigma^{(i)}_v \\mid \\sigma^{(i)}_{-v})
        \\; - \\; \\frac{\\ell_2}{2} \\lVert\\theta\\rVert^2,

a consistent, partition-function-free surrogate for the likelihood
(Besag 1975; pracmln's ``bpll.py`` is the reference design).  Both the
objective and its gradient are *exact* here:

* the conditionals come from the compiled engine's per-node factor tables,
  evaluated for all samples of one node at once through the same
  :class:`~repro.runtime.chains._BatchedTables` gather the batched sampler
  uses (zeros in the tables encode hard constraints, so constrained
  families need no special casing);
* the gradient per (sample, node) is
  ``phi_v(sigma_v) - sum_a p(a | rest) phi_v(a)`` with ``phi_v`` the
  family's local features -- the theta-independent parts of ``phi`` cancel
  between the two terms, so using full feature vectors is exact.

``tests/test_learning.py`` checks the gradient against central finite
differences of the objective.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.runtime.chains import _BatchedTables


def pl_value_and_grad(
    family, codes: np.ndarray, theta: np.ndarray, l2: float = 0.0
) -> Tuple[float, np.ndarray]:
    """The pseudo-likelihood objective and its exact gradient at ``theta``.

    Parameters
    ----------
    family : ModelFamily
        The parameterised family being fitted.
    codes : numpy.ndarray
        The ``(samples, n)`` dataset in compiled coding.
    theta : numpy.ndarray
        Parameter vector (length ``family.n_parameters``).
    l2 : float
        L2 regularisation strength (``- l2/2 * ||theta||^2`` added to the
        objective, ``- l2 * theta`` to the gradient).

    Returns
    -------
    (float, numpy.ndarray)
        ``(objective, gradient)``; the gradient has length ``K``.

    Raises
    ------
    ValueError
        When a data configuration is infeasible under the family (an
        observed value has zero conditional weight).
    """
    theta = np.asarray(theta, dtype=float)
    codes = np.asarray(codes, dtype=np.int64)
    m, n = codes.shape
    if m == 0:
        raise ValueError("pseudo-likelihood needs at least one sample")
    distribution = family.distribution_at(theta)
    compiled = distribution.compiled_engine()
    if n != len(compiled.nodes):
        raise ValueError(
            f"dataset has {n} columns but the family has {len(compiled.nodes)} nodes"
        )
    tables = _BatchedTables(compiled)
    rows = np.arange(m)
    value = 0.0
    grad = np.zeros(family.n_parameters)
    for v in range(n):
        weights = tables.weights(codes, rows, np.full(m, v, dtype=np.int64))
        totals = weights.sum(axis=1)
        observed = weights[rows, codes[:, v]]
        if not np.all(observed > 0.0):
            bad = int(np.flatnonzero(observed <= 0.0)[0])
            raise ValueError(
                f"sample {bad} is infeasible at node {compiled.nodes[v]!r}: "
                "its observed value has zero conditional weight under the family"
            )
        probabilities = weights / totals[:, None]
        value += float(np.log(observed / totals).sum())
        phi = family.local_features(codes, v)  # (m, q, K)
        observed_phi = phi[rows, codes[:, v], :]
        expected_phi = (probabilities[:, :, None] * phi).sum(axis=1)
        grad += (observed_phi - expected_phi).sum(axis=0)
    value /= m
    grad /= m
    if l2:
        value -= 0.5 * l2 * float(theta @ theta)
        grad -= l2 * theta
    return value, grad
