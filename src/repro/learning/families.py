"""Parameterised exponential families over a fixed graph.

Weight learning estimates a parameter vector ``theta``, not an arbitrary
factor collection: a :class:`ModelFamily` fixes the graph, the alphabet and
the factor *structure*, and exposes

* ``build(theta)`` -- a fresh :class:`~repro.gibbs.distribution.GibbsDistribution`
  at ``theta``;
* ``distribution_at(theta)`` -- a persistent template re-weighted in place
  (via :meth:`~repro.gibbs.distribution.GibbsDistribution.update_factors`),
  so the compiled engine's structural caches stay warm across gradient
  steps;
* ``features(codes)`` -- the sufficient statistics ``phi(sigma)`` of a
  ``(samples, n)`` code matrix, satisfying the exponential-family contract

  .. math:: \\partial_\\theta \\log w(\\sigma; \\theta) = \\phi(\\sigma)

  exactly (additive constants included), which is what makes the
  pseudo-likelihood gradient and the contrastive-divergence estimator of
  this package exact per-family rather than model-by-model code;
* ``local_features(codes, column)`` -- ``phi`` evaluated at every alphabet
  substitution of one node, the inner quantity of the pseudo-likelihood
  gradient (a generic substitution fallback is provided; families override
  it with incremental updates).

Columns of a code matrix follow the compiled node order
(``sorted(graph.nodes())``), shared with the engine and the batched runner.

Two concrete families cover the paper's flagship models:
:class:`IsingFamily` (``theta = (interaction, external_field)``) and
:class:`HardcoreFamily` (``theta = (log_fugacity,)``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.gibbs.distribution import GibbsDistribution
from repro.models.hardcore import hardcore_model
from repro.models.ising import ising_model


class ModelFamily(ABC):
    """A ``theta``-parameterised family of Gibbs distributions on one graph."""

    #: Human-readable parameter names, one per component of ``theta``.
    parameter_names: Tuple[str, ...] = ()

    def __init__(self, graph: nx.Graph) -> None:
        self.graph = graph
        self._template: Optional[GibbsDistribution] = None
        self._template_theta: Optional[Tuple[float, ...]] = None

    @property
    def n_parameters(self) -> int:
        return len(self.parameter_names)

    # ------------------------------------------------------------------
    @abstractmethod
    def build(self, theta: np.ndarray) -> GibbsDistribution:
        """A fresh distribution of this family at parameter vector ``theta``."""

    @abstractmethod
    def features(self, codes: np.ndarray) -> np.ndarray:
        """Sufficient statistics ``phi`` of a ``(m, n)`` code matrix, as ``(m, K)``.

        The contract is exact: ``log w(sigma; theta) = theta . phi(sigma) +
        c(sigma)`` with ``c`` independent of ``theta`` (hard constraints live
        in ``c``).
        """

    # ------------------------------------------------------------------
    def template(self) -> GibbsDistribution:
        """The persistent template distribution (built lazily at ``theta = 0``)."""
        if self._template is None:
            zero = np.zeros(self.n_parameters)
            self._template = self.build(zero)
            self._template_theta = tuple(zero)
        return self._template

    def distribution_at(self, theta: np.ndarray) -> GibbsDistribution:
        """The template re-weighted in place to ``theta`` (cheap per step).

        Unlike :meth:`build`, the returned object is the *same* distribution
        every call -- its factor weights move, its compiled engine is rebuilt
        via :meth:`~repro.engine.compiled.CompiledGibbs.reweighted` (sharing
        the structural elimination caches), and its ball cache is cleared.
        Callers must not hold on to stale marginals across calls.
        """
        theta_key = tuple(float(t) for t in np.asarray(theta, dtype=float))
        template = self.template()
        if theta_key != self._template_theta:
            template.update_factors(self.build(np.asarray(theta, dtype=float)).factors)
            self._template_theta = theta_key
        return template

    def local_features(self, codes: np.ndarray, column: int) -> np.ndarray:
        """``phi`` under every alphabet substitution at one node: ``(m, q, K)``.

        Entry ``[i, a, :]`` is ``features`` of sample ``i`` with node
        ``column`` set to code ``a``.  This generic fallback substitutes and
        recomputes; families with cheap incremental feature updates override
        it (see :meth:`IsingFamily.local_features`).
        """
        q = len(self.template().alphabet)
        m = codes.shape[0]
        out = np.empty((m, q, self.n_parameters))
        scratch = codes.copy()
        for a in range(q):
            scratch[:, column] = a
            out[:, a, :] = self.features(scratch)
        scratch[:, column] = codes[:, column]
        return out

    def mean_features(self, codes: np.ndarray) -> np.ndarray:
        """``phi`` averaged over the samples, as a length-``K`` vector."""
        return np.asarray(self.features(codes), dtype=float).mean(axis=0)


def _column_index(graph: nx.Graph) -> Dict:
    """Node -> column maps matching the compiled node order."""
    try:
        ordered = sorted(graph.nodes())
    except TypeError:
        ordered = sorted(graph.nodes(), key=repr)
    return {node: i for i, node in enumerate(ordered)}


class IsingFamily(ModelFamily):
    """The Ising model: ``theta = (interaction J, external_field h)``.

    With spins ``s = 2 * code - 1 in {-1, +1}`` the repository's
    parameterisation (:func:`repro.models.ising.ising_model`) gives
    ``log w = J * sum_{uv} (s_u s_v + 1) + h * sum_v (s_v + 1)``, so the
    sufficient statistics are ``phi_J = sum_{uv} (s_u s_v + 1)`` and
    ``phi_h = sum_v (s_v + 1)`` -- the ``+1`` offsets keep the contract
    ``d log w / d theta = phi`` exact, constants included.
    """

    parameter_names = ("interaction", "external_field")

    def __init__(self, graph: nx.Graph) -> None:
        super().__init__(graph)
        index = _column_index(graph)
        edges = [(index[u], index[v]) for u, v in graph.edges()]
        self._edge_u = np.array([u for u, _ in edges], dtype=np.int64)
        self._edge_v = np.array([v for _, v in edges], dtype=np.int64)
        #: Per-column neighbour column lists (for incremental local features).
        self._neighbours: List[np.ndarray] = [
            np.array([index[m] for m in graph.neighbors(node)], dtype=np.int64)
            for node in sorted(index, key=index.get)
        ]

    def build(self, theta: np.ndarray) -> GibbsDistribution:
        interaction, external_field = (float(t) for t in theta)
        return ising_model(
            self.graph, interaction=interaction, external_field=external_field
        )

    def features(self, codes: np.ndarray) -> np.ndarray:
        spins = 2 * np.asarray(codes, dtype=np.int64) - 1
        phi_j = (spins[:, self._edge_u] * spins[:, self._edge_v] + 1).sum(axis=1)
        phi_h = (spins + 1).sum(axis=1)
        return np.stack([phi_j, phi_h], axis=1).astype(float)

    def local_features(self, codes: np.ndarray, column: int) -> np.ndarray:
        spins = 2 * np.asarray(codes, dtype=np.int64) - 1
        base = self.features(codes)  # (m, 2)
        s_v = spins[:, column]
        neighbour_sum = (
            spins[:, self._neighbours[column]].sum(axis=1)
            if len(self._neighbours[column])
            else np.zeros(len(spins), dtype=np.int64)
        )
        out = np.empty((codes.shape[0], 2, 2))
        for a, t in enumerate((-1, 1)):
            out[:, a, 0] = base[:, 0] + (t - s_v) * neighbour_sum
            out[:, a, 1] = base[:, 1] + (t - s_v)
        return out


class HardcoreFamily(ModelFamily):
    """The hardcore model: ``theta = (log_fugacity,)``.

    ``log w = log(lambda) * #occupied + c(sigma)`` where ``c`` is the
    ``theta``-independent independent-set indicator, so the sufficient
    statistic is the occupation count.
    """

    parameter_names = ("log_fugacity",)

    def build(self, theta: np.ndarray) -> GibbsDistribution:
        return hardcore_model(self.graph, fugacity=float(np.exp(float(theta[0]))))

    def features(self, codes: np.ndarray) -> np.ndarray:
        return np.asarray(codes, dtype=float).sum(axis=1, keepdims=True)

    def local_features(self, codes: np.ndarray, column: int) -> np.ndarray:
        base = self.features(codes)[:, 0]
        current = np.asarray(codes[:, column], dtype=float)
        out = np.empty((codes.shape[0], 2, 1))
        out[:, 0, 0] = base - current
        out[:, 1, 0] = base - current + 1.0
        return out


#: Families reachable by name (the ``repro-fit`` CLI and the trainer's
#: string shorthand).
FAMILIES = {
    "ising": IsingFamily,
    "hardcore": HardcoreFamily,
}


def family_by_name(name: str, graph: nx.Graph) -> ModelFamily:
    """Instantiate a registered family on ``graph``; raises for unknown names."""
    try:
        cls = FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown model family {name!r}; expected one of {sorted(FAMILIES)}"
        ) from None
    return cls(graph)
