"""``python -m repro.learning`` -- the uninstalled ``repro-fit`` entry point."""

import sys

from repro.learning.cli import main

if __name__ == "__main__":
    sys.exit(main())
