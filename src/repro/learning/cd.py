"""Contrastive-divergence gradient estimation on top of ``Runtime.run_chains``.

The (regularised) log-likelihood gradient of an exponential family is

.. math::

    \\nabla_\\theta \\; = \\; \\mathbb{E}_{\\mathrm{data}}[\\phi]
        - \\mathbb{E}_{\\theta}[\\phi] - \\ell_2 \\theta .

Contrastive divergence (Hinton 2002; pracmln's ``cd.py``) replaces the
intractable model expectation with the empirical mean of *negative* samples
produced by a short MCMC run at the current ``theta``.  Here the negative
phase is literally :meth:`repro.runtime.executor.Runtime.run_chains`: CD-k
runs ``k`` sweeps of any registered chain kernel, so gradient estimation is
batched, process-sharded and cluster-distributed for free through the
``runtime=`` knob -- and because every backend consumes the same explicit
per-chain seeds (derived deterministically from ``(seed, iteration)``), the
fitted weights are **bit-identical across backends** for a fixed seed.

Persistent CD (Tieleman 2008) keeps the negative chains alive across
gradient steps instead of restarting them: the chains ride a
:class:`~repro.runtime.chains.ChainState` (``run_chains(..., state=...)``),
which retargets them onto each step's re-weighted model -- the workload the
runtime's resumable-state satellite exists for.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gibbs.instance import SamplingInstance
from repro.learning.suffstats import encode_configurations
from repro.runtime import ChainState, chain_seed_sequences, make_chain_state, resolve_runtime
from repro.sampling.kernels import resolve_kernel


def negative_phase_seeds(seed: int, iteration: int, n_negative: int):
    """The per-chain seeds of one CD iteration's negative phase.

    Derived from ``SeedSequence((seed, iteration))``, so every backend --
    serial, batched, process, cluster -- spawns the *same* per-chain
    streams and the estimator is a pure function of ``(seed, iteration)``.
    """
    return chain_seed_sequences(
        np.random.SeedSequence((int(seed), int(iteration))), n_negative
    )


def sweep_steps(instance: SamplingInstance, k: int) -> int:
    """``k`` sweeps of single-site dynamics, in kernel units (steps)."""
    return int(k) * max(1, len(instance.free_nodes))


def persistent_state(
    family,
    theta: np.ndarray,
    data_codes: np.ndarray,
    kernel="glauber",
    n_negative: int = 8,
    seed: int = 0,
    layout: str = "batched",
) -> ChainState:
    """Fresh persistent-CD chains, seeded from the data.

    Chain ``c`` starts at data row ``c mod m`` (the standard PCD particle
    initialisation) with its RNG stream spawned from ``seed``; advance the
    returned state through ``run_chains(..., state=...)`` each iteration.
    """
    distribution = family.distribution_at(np.asarray(theta, dtype=float))
    instance = SamplingInstance(distribution, {})
    data_codes = np.asarray(data_codes, dtype=np.int64)
    rows = np.arange(n_negative) % len(data_codes)
    return make_chain_state(
        resolve_kernel(kernel),
        instance,
        chain_seed_sequences(seed, n_negative),
        initial_codes=data_codes[rows],
        layout=layout,
    )


def cd_gradient(
    family,
    data_codes: np.ndarray,
    theta: np.ndarray,
    kernel="glauber",
    runtime=None,
    k: int = 1,
    n_negative: int = 8,
    seed: int = 0,
    iteration: int = 0,
    l2: float = 0.0,
    state: Optional[ChainState] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One CD-k (or persistent-CD) gradient estimate at ``theta``.

    Parameters
    ----------
    family : ModelFamily
        The parameterised family being fitted.
    data_codes : numpy.ndarray
        The ``(samples, n)`` dataset in compiled coding.
    theta : numpy.ndarray
        Current parameter vector.
    kernel : str or ChainKernel
        The negative-phase dynamics (any registered kernel).
    runtime : None, str or Runtime
        Execution backend for the negative phase; ``None`` is serial.  All
        backends produce bit-identical gradients for the same seed.
    k : int
        Sweeps of the dynamics per negative phase (CD-k).
    n_negative : int
        Number of negative chains (ignored when resuming a ``state``).
    seed, iteration : int
        Together determine the negative phase's RNG streams (see
        :func:`negative_phase_seeds`).
    l2 : float
        L2 regularisation strength.
    state : ChainState, optional
        Persistent-CD particles to resume (serial/batched runtimes only);
        when given, the chains continue instead of restarting from scratch
        and ``seed`` / ``iteration`` / ``n_negative`` are ignored.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        ``(gradient, negative_codes)`` -- the length-``K`` gradient estimate
        and the final negative-sample code matrix.
    """
    theta = np.asarray(theta, dtype=float)
    data_codes = np.asarray(data_codes, dtype=np.int64)
    distribution = family.distribution_at(theta)
    compiled = distribution.compiled_engine()
    instance = SamplingInstance(distribution, {})
    steps = sweep_steps(instance, k)
    resolved = resolve_runtime(runtime)
    if state is not None:
        negatives = resolved.run_chains(kernel, instance, steps, state=state)
    else:
        negatives = resolved.run_chains(
            kernel,
            instance,
            steps,
            seeds=negative_phase_seeds(seed, iteration, n_negative),
        )
    negative_codes = encode_configurations(compiled, negatives)
    gradient = family.mean_features(data_codes) - family.mean_features(negative_codes)
    if l2:
        gradient = gradient - l2 * theta
    return gradient, negative_codes
