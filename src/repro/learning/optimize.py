"""Small deterministic optimisers for the learning subsystem.

Two regimes (mirroring pracmln's ``optimize.py`` split):

* :func:`maximize` -- exact-gradient ascent of a deterministic objective
  (the pseudo-likelihood path): adaptive-step backtracking gradient ascent
  by default, with an optional scipy L-BFGS path when scipy is importable
  (never required -- the dependency is gated, not assumed);
* :func:`follow_gradient` -- fixed-schedule stochastic approximation for
  estimated gradients with no evaluable objective (the contrastive
  divergence path): ``theta_{t+1} = theta_t + step * decay^t * g_t``.

Everything here is seeded by its inputs alone -- no RNG is consumed, so a
fit is a pure function of ``(data, theta0, hyperparameters)`` and the
bit-identity guarantees of the gradient estimators carry through to the
fitted weights.
"""

from __future__ import annotations

import importlib.util
from typing import Callable, List, Optional, Tuple

import numpy as np


class OptimizeResult:
    """The outcome of an optimisation run."""

    __slots__ = ("theta", "value", "iterations", "converged", "trajectory")

    def __init__(
        self,
        theta: np.ndarray,
        value: Optional[float],
        iterations: int,
        converged: bool,
        trajectory: List[dict],
    ) -> None:
        self.theta = theta
        self.value = value
        self.iterations = iterations
        self.converged = converged
        #: Per-iteration log entries (objective, gradient norm, step size).
        self.trajectory = trajectory

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OptimizeResult(theta={np.array2string(self.theta, precision=4)}, "
            f"value={self.value}, iterations={self.iterations}, "
            f"converged={self.converged})"
        )


def scipy_available() -> bool:
    """Whether scipy can be imported (checked without importing it)."""
    return importlib.util.find_spec("scipy") is not None


def maximize_ascent(
    value_and_grad: Callable[[np.ndarray], Tuple[float, np.ndarray]],
    theta0: np.ndarray,
    step: float = 0.5,
    max_iter: int = 200,
    tol: float = 1e-6,
    shrink: float = 0.5,
    grow: float = 1.1,
    min_step: float = 1e-12,
    callback: Optional[Callable[[int, np.ndarray, float, np.ndarray], None]] = None,
) -> OptimizeResult:
    """Backtracking adaptive-step gradient ascent.

    Each iteration proposes ``theta + step * grad`` and backtracks
    (``step *= shrink``) until the objective improves, then lets the step
    grow again (``step *= grow``).  Terminates when the gradient's infinity
    norm drops below ``tol``, the step underflows ``min_step``, or
    ``max_iter`` is reached.  Fully deterministic.
    """
    theta = np.asarray(theta0, dtype=float).copy()
    value, grad = value_and_grad(theta)
    trajectory: List[dict] = []
    converged = False
    iterations = 0
    for iteration in range(max_iter):
        gnorm = float(np.abs(grad).max()) if grad.size else 0.0
        if callback is not None:
            callback(iteration, theta, value, grad)
        trajectory.append(
            {"iteration": iteration, "value": value, "grad_norm": gnorm, "step": step}
        )
        if gnorm < tol:
            converged = True
            break
        while step >= min_step:
            candidate = theta + step * grad
            candidate_value, candidate_grad = value_and_grad(candidate)
            if candidate_value > value:
                theta, value, grad = candidate, candidate_value, candidate_grad
                step *= grow
                break
            step *= shrink
        else:
            # The step underflowed: no ascent direction at working precision.
            break
        iterations = iteration + 1
    return OptimizeResult(theta, value, iterations, converged, trajectory)


def maximize_lbfgs(
    value_and_grad: Callable[[np.ndarray], Tuple[float, np.ndarray]],
    theta0: np.ndarray,
    max_iter: int = 200,
    tol: float = 1e-6,
    callback: Optional[Callable[[int, np.ndarray, float, np.ndarray], None]] = None,
) -> OptimizeResult:
    """L-BFGS-B ascent via scipy (gated -- raises when scipy is unavailable)."""
    if not scipy_available():
        raise RuntimeError(
            'scipy is not installed; use method="ascent" (the default)'
        )
    from scipy.optimize import minimize as scipy_minimize

    trajectory: List[dict] = []
    counter = {"iteration": 0}

    def negated(theta: np.ndarray) -> Tuple[float, np.ndarray]:
        value, grad = value_and_grad(theta)
        iteration = counter["iteration"]
        counter["iteration"] = iteration + 1
        if callback is not None:
            callback(iteration, theta, value, grad)
        trajectory.append(
            {
                "iteration": iteration,
                "value": value,
                "grad_norm": float(np.abs(grad).max()) if grad.size else 0.0,
            }
        )
        return -value, -grad

    outcome = scipy_minimize(
        negated,
        np.asarray(theta0, dtype=float),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_iter, "gtol": tol},
    )
    return OptimizeResult(
        np.asarray(outcome.x, dtype=float),
        float(-outcome.fun),
        int(outcome.nit),
        bool(outcome.success),
        trajectory,
    )


def maximize(
    value_and_grad: Callable[[np.ndarray], Tuple[float, np.ndarray]],
    theta0: np.ndarray,
    method: str = "ascent",
    **options,
) -> OptimizeResult:
    """Maximise a deterministic objective with the named method.

    ``"ascent"`` (default) is always available and fully deterministic;
    ``"lbfgs"`` requires scipy; ``"auto"`` picks lbfgs when scipy is
    importable and falls back to ascent otherwise.
    """
    if method == "auto":
        method = "lbfgs" if scipy_available() else "ascent"
    if method == "ascent":
        return maximize_ascent(value_and_grad, theta0, **options)
    if method == "lbfgs":
        return maximize_lbfgs(value_and_grad, theta0, **options)
    raise ValueError(
        f'unknown optimiser {method!r}; expected "ascent", "lbfgs" or "auto"'
    )


def follow_gradient(
    grad_fn: Callable[[np.ndarray, int], np.ndarray],
    theta0: np.ndarray,
    step: float = 0.1,
    decay: float = 1.0,
    max_iter: int = 100,
    tol: float = 0.0,
    callback: Optional[Callable[[int, np.ndarray, np.ndarray], None]] = None,
) -> OptimizeResult:
    """Fixed-schedule stochastic gradient ascent for estimated gradients.

    ``grad_fn(theta, iteration)`` returns a (possibly noisy) gradient
    estimate; there is no objective to line-search against, so the step
    schedule is ``step * decay^iteration``.  Stops early when the estimate's
    infinity norm drops below ``tol`` (``tol=0`` runs all iterations --
    a noisy estimate near the optimum rarely vanishes exactly).
    """
    theta = np.asarray(theta0, dtype=float).copy()
    trajectory: List[dict] = []
    converged = False
    iterations = 0
    current = step
    for iteration in range(max_iter):
        grad = np.asarray(grad_fn(theta, iteration), dtype=float)
        gnorm = float(np.abs(grad).max()) if grad.size else 0.0
        if callback is not None:
            callback(iteration, theta, grad)
        trajectory.append(
            {"iteration": iteration, "grad_norm": gnorm, "step": current}
        )
        if tol and gnorm < tol:
            converged = True
            break
        theta = theta + current * grad
        current *= decay
        iterations = iteration + 1
    return OptimizeResult(theta, None, iterations, converged, trajectory)
