"""Vectorised sufficient-statistics extraction from code matrices.

The learning subsystem works on the engine's integer coding: a dataset is a
``(samples, n)`` int64 matrix whose columns follow the compiled node order
(``CompiledGibbs.nodes``) and whose entries are alphabet codes
(``CompiledGibbs.symbol_index``).  This module converts between
configuration dicts and code matrices and extracts the count statistics the
estimators consume:

* :func:`encode_configurations` / :func:`decode_codes` -- the boundary with
  the sampler API (``run_chains`` speaks configuration dicts);
* :func:`feature_counts` / :func:`mean_feature_counts` -- a family's
  sufficient statistics ``phi`` per sample / averaged;
* :func:`empirical_node_marginals` -- per-node empirical value frequencies;
* :func:`factor_value_counts` -- per-factor counts over joint value tuples,
  the raw "how often did this factor see this local configuration" tables
  (one ``ravel_multi_index`` + ``bincount`` per factor, no Python loop over
  samples).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence

import numpy as np

Node = Hashable
Value = Hashable


def encode_configurations(
    compiled, configurations: Sequence[Mapping[Node, Value]]
) -> np.ndarray:
    """Encode configuration dicts as a ``(samples, n)`` int64 code matrix.

    Parameters
    ----------
    compiled : CompiledGibbs
        Supplies the node order (columns) and the symbol coding (entries).
    configurations : sequence of mapping
        Full configurations; every node of ``compiled.nodes`` must be
        assigned an alphabet value.
    """
    symbol_index = compiled.symbol_index
    nodes = compiled.nodes
    out = np.empty((len(configurations), len(nodes)), dtype=np.int64)
    for i, configuration in enumerate(configurations):
        for j, node in enumerate(nodes):
            try:
                out[i, j] = symbol_index[configuration[node]]
            except KeyError:
                if node not in configuration:
                    raise ValueError(
                        f"configuration {i} is missing node {node!r}"
                    ) from None
                raise ValueError(
                    f"configuration {i} assigns node {node!r} the value "
                    f"{configuration[node]!r}, outside the alphabet"
                ) from None
    return out


def decode_codes(compiled, codes: np.ndarray) -> List[Dict[Node, Value]]:
    """Decode a ``(samples, n)`` code matrix back to configuration dicts."""
    alphabet = compiled.alphabet
    nodes = compiled.nodes
    return [
        {node: alphabet[code] for node, code in zip(nodes, row)}
        for row in np.asarray(codes, dtype=np.int64).tolist()
    ]


def feature_counts(family, codes: np.ndarray) -> np.ndarray:
    """A family's sufficient statistics per sample, as ``(samples, K)``."""
    return np.asarray(family.features(codes), dtype=float)


def mean_feature_counts(family, codes: np.ndarray) -> np.ndarray:
    """A family's sufficient statistics averaged over the samples (length ``K``)."""
    return feature_counts(family, codes).mean(axis=0)


def empirical_node_marginals(compiled, codes: np.ndarray) -> np.ndarray:
    """Per-node empirical value frequencies, as ``(n, q)``.

    Row ``v`` is the observed distribution of node ``compiled.nodes[v]``
    over the alphabet codes -- the sample estimate of the marginal the
    fit-then-sample experiments compare against exact marginals.
    """
    codes = np.asarray(codes, dtype=np.int64)
    m, n = codes.shape
    q = compiled.q
    out = np.empty((n, q))
    for v in range(n):
        out[v] = np.bincount(codes[:, v], minlength=q) / m
    return out


def factor_value_counts(compiled, codes: np.ndarray) -> List[np.ndarray]:
    """Per-factor counts over joint value tuples.

    For factor ``f`` with scope arity ``r`` the result entry is a
    ``(q,) * r`` integer array whose ``(a_1, ..., a_r)`` cell counts the
    samples in which ``f``'s scope nodes held codes ``(a_1, ..., a_r)`` --
    the per-factor feature counts in the engine's own table layout, computed
    with one ``ravel_multi_index`` + ``bincount`` per factor.
    """
    codes = np.asarray(codes, dtype=np.int64)
    q = compiled.q
    counts: List[np.ndarray] = []
    for scope in compiled.scopes:
        shape = (q,) * len(scope)
        flat = np.ravel_multi_index(
            tuple(codes[:, variable] for variable in scope), shape
        )
        counts.append(np.bincount(flat, minlength=q ** len(scope)).reshape(shape))
    return counts
