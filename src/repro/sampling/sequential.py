"""Inference => approximate sampling (Theorem 3.2).

The reduction is the classical sequential sampler made local:

* an SLOCAL algorithm scans the nodes in an arbitrary order; at each free
  node it invokes the approximate-inference engine on the instance
  conditioned on the values sampled so far (restricted to what the node can
  actually see within its locality radius) and samples the node's value from
  the returned marginal with per-node error ``delta / n``;
* Lemma 3.1 then turns the SLOCAL algorithm into a LOCAL algorithm with an
  ``O(log^2 n)`` multiplicative round overhead and locally certifiable
  failures.

A coupling argument gives total-variation error at most ``delta`` for the
SLOCAL sampler; the LOCAL simulation preserves the output distribution
conditioned on success.

The scan is additionally exposed as a *chain kernel*
(:class:`SequentialKernel`, see :mod:`repro.sampling.kernels`): one unit
resamples the next free node of the deterministic scan order from its
exact local conditional -- the sequential sampler with the cheapest local
oracle (the radius-``l`` conditional given the current boundary values),
iterated as a dynamics.  It is the ungated sibling of
:class:`~repro.sampling.jvv.JVVKernel` and, like every kernel, runs
bit-identically on all four execution backends through
:meth:`repro.runtime.executor.Runtime.run_chains`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence

import numpy as np

from repro.analysis.distances import sample_from
from repro.gibbs.instance import SamplingInstance
from repro.inference.base import InferenceAlgorithm
from repro.localmodel.network import Network
from repro.localmodel.scheduler import ScheduledRunResult, simulate_slocal_as_local
from repro.localmodel.slocal import SLocalAlgorithm, SLocalRunResult, StateAccess, run_slocal_algorithm
from repro.sampling.kernels import ScanKernel, register_kernel

Node = Hashable
Value = Hashable


class SequentialKernel(ScanKernel):
    """The deterministic sequential scan as a chain kernel.

    Exactly the shared :class:`ScanKernel` heat-bath scan, ungated: step
    ``t`` resamples free node ``t mod n_free`` (deterministic scan order)
    from its exact local conditional given the full current state.  One
    full scan from the greedy ground state is the Theorem 3.2 sequential
    sampler run with the local (radius-``l``) oracle; further scans iterate
    the dynamics.  This is the "next kernel is a thin file" existence
    proof: the class body is the name -- serial loop, batched loop, RNG
    contract and backend dispatch are all inherited.
    """

    name = "sequential"
    unit = "steps"


#: The registered kernel instance (also ``kernel="sequential"`` everywhere).
SEQUENTIAL_KERNEL = register_kernel(SequentialKernel())


def sequential_scan_sample(
    instance: SamplingInstance,
    steps: int,
    seed=0,
    initial: Optional[Dict[Node, Value]] = None,
    engine: Optional[str] = None,
) -> Dict[Node, Value]:
    """Serial reference of :class:`SequentialKernel` (one chain, ``steps`` updates)."""
    return SEQUENTIAL_KERNEL.serial_run(
        instance, steps, seed=seed, initial=initial, engine=engine
    )


class SequentialSamplingAlgorithm(SLocalAlgorithm):
    """The SLOCAL sequential sampler of Theorem 3.2."""

    passes = 1

    def __init__(
        self,
        instance: SamplingInstance,
        inference: InferenceAlgorithm,
        error: float,
    ) -> None:
        if error <= 0:
            raise ValueError("the target total-variation error must be positive")
        self.instance = instance
        self.inference = inference
        self.error = error

    # ------------------------------------------------------------------
    def per_node_error(self) -> float:
        """The per-node inference error ``delta / n`` used by the reduction."""
        return self.error / max(1, self.instance.size)

    def locality(self, network: Network) -> int:
        """Locality = the inference engine's radius at error ``delta / n``."""
        return self.inference.locality(self.instance, self.per_node_error())

    def initial_state(self, node: Node, network: Network) -> dict:
        return {}

    def process(
        self,
        pass_index: int,
        node: Node,
        access: StateAccess,
        rng: np.random.Generator,
        network: Network,
    ) -> None:
        instance = self.instance
        if node in instance.pinning:
            value = instance.pinning[node]
        else:
            # Condition on every already-sampled value visible within the
            # locality ball; values farther away cannot influence the
            # inference engine anyway (it is a local algorithm).
            visible_assignment: Dict[Node, Value] = {}
            for other in access.visible_nodes:
                state = access.read(other)
                if "value" in state and other != node:
                    visible_assignment[other] = state["value"]
            conditioned = instance.conditioned(visible_assignment)
            marginal = self.inference.marginal(conditioned, node, self.per_node_error())
            value = sample_from(marginal, rng)
        access.write(node, "value", value)
        access.write(node, "output", value)
        access.write(node, "failed", False)


@dataclass
class ApproximateSampleResult:
    """A sample produced by the inference => sampling reduction."""

    configuration: Dict[Node, Value]
    failures: Dict[Node, bool]
    rounds: int
    ordering: Sequence[Node]
    details: Dict[str, object]

    @property
    def success(self) -> bool:
        """True when every node produced an output without failing."""
        return not any(self.failures.values())


def sample_approximate_slocal(
    instance: SamplingInstance,
    inference: InferenceAlgorithm,
    error: float,
    seed: int = 0,
    ordering: Optional[Sequence[Node]] = None,
) -> ApproximateSampleResult:
    """Draw one approximate sample with the SLOCAL sequential sampler.

    The ``rounds`` reported are the SLOCAL locality (what Theorem 3.2 charges
    before the Lemma 3.1 simulation overhead).
    """
    algorithm = SequentialSamplingAlgorithm(instance, inference, error)
    network = Network(instance.graph, seed=seed)
    result: SLocalRunResult = run_slocal_algorithm(algorithm, network, ordering)
    return ApproximateSampleResult(
        configuration={node: result.outputs[node] for node in network.nodes},
        failures=result.failures,
        rounds=result.locality,
        ordering=result.ordering,
        details={"mode": "slocal", "inference": inference.name()},
    )


def sample_approximate_local(
    instance: SamplingInstance,
    inference: InferenceAlgorithm,
    error: float,
    seed: int = 0,
) -> ApproximateSampleResult:
    """Draw one approximate sample with the LOCAL algorithm of Theorem 3.2.

    Internally simulates the SLOCAL sampler through the network decomposition
    scheduler of Lemma 3.1; the reported rounds include the ``O(log^2 n)``
    scheduling overhead and the failure indicators include the decomposition
    failures.
    """
    algorithm = SequentialSamplingAlgorithm(instance, inference, error)
    network = Network(instance.graph, seed=seed)
    result: ScheduledRunResult = simulate_slocal_as_local(algorithm, network, seed=seed)
    return ApproximateSampleResult(
        configuration={node: result.outputs[node] for node in network.nodes},
        failures=result.failures,
        rounds=result.rounds,
        ordering=result.ordering,
        details={
            "mode": "local",
            "inference": inference.name(),
            **result.details,
        },
    )
