"""Exact sampling by exhaustive enumeration (ground truth only).

These utilities are deliberately non-local and exponential: they enumerate
the entire support of the target distribution and are used by the tests and
benchmarks to measure how close the distributed samplers come to the true
distribution, and as the "perfect" baseline in the comparison experiment.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import numpy as np

from repro.analysis.distances import configuration_key, sample_from
from repro.gibbs.instance import SamplingInstance

Node = Hashable
Value = Hashable


def enumerate_target_distribution(instance: SamplingInstance) -> Dict[tuple, float]:
    """The full target distribution ``mu^tau`` as ``{configuration_key: probability}``.

    Exponential in the number of free nodes; intended for instances with at
    most ~20 free binary variables (or correspondingly fewer with larger
    alphabets).
    """
    weights: Dict[tuple, float] = {}
    for configuration in instance.distribution.support(instance.pinning):
        weights[configuration_key(configuration)] = instance.distribution.weight(configuration)
    total = sum(weights.values())
    if total <= 0.0:
        raise ValueError("the target distribution has empty support (infeasible pinning)")
    return {key: weight / total for key, weight in weights.items()}


class ExactSampler:
    """Draws exact samples from ``mu^tau`` by inverse-transform over the support."""

    def __init__(self, instance: SamplingInstance, seed: int = 0) -> None:
        self.instance = instance
        self._distribution = enumerate_target_distribution(instance)
        self._rng = np.random.default_rng(seed)

    @property
    def support_size(self) -> int:
        """Number of feasible configurations of the target distribution."""
        return len(self._distribution)

    def probability_of(self, configuration) -> float:
        """Probability of a full configuration under the target distribution."""
        return self._distribution.get(configuration_key(configuration), 0.0)

    def sample(self) -> Dict[Node, Value]:
        """One exact sample, as a node -> value dictionary."""
        key = sample_from(self._distribution, self._rng)
        return dict(key)

    def samples(self, count: int) -> Tuple[Dict[Node, Value], ...]:
        """A tuple of ``count`` independent exact samples."""
        return tuple(self.sample() for _ in range(count))
