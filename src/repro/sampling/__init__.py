"""Distributed samplers and the sampling side of the paper's reductions.

* :mod:`repro.sampling.exact` -- brute-force enumeration of the target
  distribution and an exact sampler built on it (ground truth for tests);
* :mod:`repro.sampling.sequential` -- the SLOCAL sequential sampler behind
  Theorem 3.2 (inference => approximate sampling) plus the LOCAL driver
  obtained through Lemma 3.1;
* :mod:`repro.sampling.jvv` -- the three-pass local-JVV algorithm of
  Theorem 4.2 / Proposition 4.3: local rejection sampling that turns
  approximate inference into *exact* sampling with locally certifiable
  failures;
* :mod:`repro.sampling.sampling_to_inference` -- Theorem 3.4 (sampling =>
  inference), realised by Monte-Carlo estimation of the sampler's marginals;
* :mod:`repro.sampling.glauber` -- sequential Glauber dynamics and the
  parallel LubyGlauber chain (the prior-art baseline from Feng, Sun, Yin
  2017) used by the baseline-comparison experiment.
"""

from repro.sampling.exact import ExactSampler, enumerate_target_distribution
from repro.sampling.kernels import (
    ChainKernel,
    ScanKernel,
    get_kernel,
    register_kernel,
    registered_kernels,
    resolve_kernel,
)
from repro.sampling.sequential import (
    SequentialKernel,
    SequentialSamplingAlgorithm,
    sample_approximate_local,
    sample_approximate_slocal,
    sequential_scan_sample,
)
from repro.sampling.jvv import (
    JVVKernel,
    LocalJVVSampler,
    jvv_chain_stats,
    jvv_rejection_sample,
    sample_exact_local,
    sample_exact_slocal,
)
from repro.sampling.sampling_to_inference import InferenceFromSampling
from repro.sampling.glauber import (
    GlauberKernel,
    LubyGlauberKernel,
    glauber_sample,
    greedy_feasible_configuration,
    luby_glauber_sample,
)

__all__ = [
    "ExactSampler",
    "enumerate_target_distribution",
    "ChainKernel",
    "ScanKernel",
    "get_kernel",
    "register_kernel",
    "registered_kernels",
    "resolve_kernel",
    "SequentialKernel",
    "SequentialSamplingAlgorithm",
    "sample_approximate_local",
    "sample_approximate_slocal",
    "sequential_scan_sample",
    "JVVKernel",
    "LocalJVVSampler",
    "jvv_chain_stats",
    "jvv_rejection_sample",
    "sample_exact_local",
    "sample_exact_slocal",
    "InferenceFromSampling",
    "GlauberKernel",
    "LubyGlauberKernel",
    "glauber_sample",
    "greedy_feasible_configuration",
    "luby_glauber_sample",
]
