"""Approximate sampling => approximate inference (Theorem 3.4).

The paper's reduction is information-theoretic: a node can reconstruct the
marginal distribution of its own output by enumerating the random bits the
sampling algorithm consumes within its radius.  Enumerating random bits is
not realistic on a simulator (the bit strings are unbounded), so we realise
the same reduction by Monte-Carlo estimation: the node's marginal is the
empirical distribution of its output over independent runs of the sampler.
The substitution preserves the quantity the theorem is about -- the marginal
of the sampler's output distribution, which is within ``delta + epsilon_0``
of the target (``epsilon_0`` being the sampler's failure probability) -- and
adds only a statistical estimation error that shrinks as ``1/sqrt(samples)``
and is reported alongside the result.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro.analysis.distances import normalize
from repro.analysis.fitting import sample_complexity_for_tv
from repro.gibbs.instance import SamplingInstance
from repro.inference.base import InferenceAlgorithm

Node = Hashable
Value = Hashable

#: A sampler callable: ``(instance, error, seed) -> (configuration, rounds)``.
SamplerFunction = Callable[[SamplingInstance, float, int], tuple]


class InferenceFromSampling(InferenceAlgorithm):
    """Estimate marginals by repeatedly invoking an approximate sampler.

    Parameters
    ----------
    sampler:
        A callable ``(instance, error, seed) -> (configuration, rounds)``
        returning one (possibly failed) sample; the configurations of failed
        runs are still counted, exactly as in the theorem's statement
        (failures only enter through the additive ``epsilon_0`` term).
    num_samples:
        Number of independent runs per marginal query.  If omitted, the
        count is derived from the query's error via the standard empirical
        total-variation bound.
    seed:
        Base seed; run ``k`` of query ``j`` uses seed ``seed + j * stride + k``.
    """

    def __init__(
        self,
        sampler: SamplerFunction,
        num_samples: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.sampler = sampler
        self.num_samples = num_samples
        self.seed = seed
        self._query_count = 0
        self._last_rounds = 0

    # ------------------------------------------------------------------
    def _samples_for(self, instance: SamplingInstance, error: float) -> int:
        if self.num_samples is not None:
            return self.num_samples
        return sample_complexity_for_tv(max(error, 1e-3), instance.distribution.alphabet_size)

    def locality(self, instance: SamplingInstance, error: float) -> int:
        """The sampler's round complexity (one parallel batch of runs)."""
        if self._last_rounds:
            return self._last_rounds
        # Probe with a single run to learn the sampler's round count.
        _, rounds = self.sampler(instance, error, self.seed)
        self._last_rounds = int(rounds)
        return self._last_rounds

    def marginal(
        self, instance: SamplingInstance, node: Node, error: float
    ) -> Dict[Value, float]:
        """Empirical marginal of ``node`` over repeated sampler runs."""
        if node in instance.pinning:
            pinned = instance.pinning[node]
            return {value: (1.0 if value == pinned else 0.0) for value in instance.alphabet}
        runs = self._samples_for(instance, error)
        counts: Dict[Value, float] = {value: 0.0 for value in instance.alphabet}
        base = self.seed + 7919 * self._query_count
        self._query_count += 1
        for k in range(runs):
            configuration, rounds = self.sampler(instance, error, base + k)
            self._last_rounds = int(rounds)
            counts[configuration[node]] = counts.get(configuration[node], 0.0) + 1.0
        return normalize(counts) if sum(counts.values()) > 0 else {
            value: 1.0 / len(instance.alphabet) for value in instance.alphabet
        }
