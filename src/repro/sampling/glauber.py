"""Markov-chain baselines: Glauber dynamics and the LubyGlauber parallel chain.

The paper positions its reductions against the previous approach to
distributed sampling -- parallelised Markov chains such as the LubyGlauber
algorithm of Feng, Sun and Yin (PODC 2017).  These baselines are implemented
here for the comparison experiment (E12):

* :func:`glauber_sample` -- classical single-site Glauber dynamics: pick a
  uniformly random free node, resample it from its conditional distribution
  given its neighbourhood;
* :func:`luby_glauber_sample` -- per round, an independent set of free nodes
  is selected through random priorities (a Luby step) and all selected nodes
  update simultaneously; one round is ``O(1)`` LOCAL rounds.

Both chains have the target distribution ``mu^tau`` as their stationary
distribution whenever the single-site dynamics is ergodic (which local
admissibility guarantees for the models used in the experiments).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np

from repro.analysis.distances import normalize, sample_from
from repro.gibbs.instance import SamplingInstance

Node = Hashable
Value = Hashable


def greedy_feasible_configuration(instance: SamplingInstance) -> Dict[Node, Value]:
    """A feasible full configuration extending the pinning, built greedily.

    Processes the free nodes in deterministic order and assigns each the
    first alphabet value that keeps every fully assigned factor positive.
    For locally admissible distributions this always succeeds and the result
    is feasible (it is the sequential-local-oblivious construction of
    Remark 2.3); a ``RuntimeError`` is raised otherwise.
    """
    distribution = instance.distribution
    assignment: Dict[Node, Value] = instance.pinning.as_dict()
    for node in distribution.nodes:
        if node in assignment:
            continue
        chosen = None
        for value in distribution.alphabet:
            assignment[node] = value
            feasible = True
            for factor in distribution.factors_at(node):
                if not set(factor.scope) <= set(assignment):
                    continue
                if factor.evaluate(assignment) == 0.0:
                    feasible = False
                    break
            if feasible:
                chosen = value
                break
            del assignment[node]
        if chosen is None:
            raise RuntimeError(
                f"greedy construction got stuck at node {node!r}; "
                "the distribution is not locally admissible"
            )
    return assignment


def local_conditional(
    instance: SamplingInstance, configuration: Dict[Node, Value], node: Node
) -> Dict[Value, float]:
    """Conditional distribution of ``node`` given the rest of the configuration.

    Only the factors containing ``node`` matter, so this is a strictly local
    computation (one LOCAL round).
    """
    distribution = instance.distribution
    weights: Dict[Value, float] = {}
    working = dict(configuration)
    for value in distribution.alphabet:
        working[node] = value
        weight = 1.0
        for factor in distribution.factors_at(node):
            weight *= factor.evaluate(working)
            if weight == 0.0:
                break
        weights[value] = weight
    total = sum(weights.values())
    if total <= 0.0:
        raise ValueError(
            f"node {node!r} has no feasible value given its neighbourhood; "
            "the single-site dynamics is not ergodic here"
        )
    return normalize(weights)


def glauber_sample(
    instance: SamplingInstance,
    steps: int,
    seed: int = 0,
    initial: Optional[Dict[Node, Value]] = None,
) -> Dict[Node, Value]:
    """Run single-site Glauber dynamics for ``steps`` updates and return the state."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    rng = np.random.default_rng(seed)
    configuration = dict(initial) if initial is not None else greedy_feasible_configuration(instance)
    free_nodes = instance.free_nodes
    if not free_nodes:
        return configuration
    for _ in range(steps):
        node = free_nodes[int(rng.integers(0, len(free_nodes)))]
        conditional = local_conditional(instance, configuration, node)
        configuration[node] = sample_from(conditional, rng)
    return configuration


def luby_glauber_sample(
    instance: SamplingInstance,
    rounds: int,
    seed: int = 0,
    initial: Optional[Dict[Node, Value]] = None,
) -> Dict[Node, Value]:
    """Run the LubyGlauber parallel chain for ``rounds`` rounds and return the state.

    In each round every free node draws a uniform priority; a node updates
    iff its priority beats all of its free neighbours' (the selected nodes
    form an independent set, so the simultaneous updates commute with the
    sequential chain and stationarity is preserved).
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    rng = np.random.default_rng(seed)
    configuration = dict(initial) if initial is not None else greedy_feasible_configuration(instance)
    graph = instance.graph
    free_nodes = instance.free_nodes
    free_set = set(free_nodes)
    if not free_nodes:
        return configuration
    for _ in range(rounds):
        priorities = {node: rng.random() for node in free_nodes}
        selected = [
            node
            for node in free_nodes
            if all(
                priorities[node] > priorities[neighbour]
                for neighbour in graph.neighbors(node)
                if neighbour in free_set
            )
        ]
        # All selected nodes read the *current* configuration and update
        # simultaneously; since they form an independent set the conditional
        # distributions do not interact within the round.
        updates = {
            node: sample_from(local_conditional(instance, configuration, node), rng)
            for node in selected
        }
        configuration.update(updates)
    return configuration
