"""Markov-chain baselines: Glauber dynamics and the LubyGlauber parallel chain.

The paper positions its reductions against the previous approach to
distributed sampling -- parallelised Markov chains such as the LubyGlauber
algorithm of Feng, Sun and Yin (PODC 2017).  These baselines are implemented
here for the comparison experiment (E12):

* :func:`glauber_sample` -- classical single-site Glauber dynamics: pick a
  uniformly random free node, resample it from its conditional distribution
  given its neighbourhood;
* :func:`luby_glauber_sample` -- per round, an independent set of free nodes
  is selected through random priorities (a Luby step) and all selected nodes
  update simultaneously; one round is ``O(1)`` LOCAL rounds.

Both chains have the target distribution ``mu^tau`` as their stationary
distribution whenever the single-site dynamics is ergodic (which local
admissibility guarantees for the models used in the experiments).

The inner loop runs on the compiled evaluation engine by default (see
:mod:`repro.engine`): the state lives in an integer code array, and one
conditional is a single gather into each precomputed per-node factor table
followed by a product over the alphabet axis -- instead of ``q x
|factors_at(v)|`` dict-based ``Factor.evaluate`` calls.  Pass
``engine="dict"`` to run the reference implementation.

Both samplers also accept a ``runtime=`` knob (see :mod:`repro.runtime`):
a non-serial runtime advances many independent chains through the unified
kernel execution path (:meth:`repro.runtime.executor.Runtime.run_chains`),
bit-identical per chain to the serial functions here.

Both dynamics are exposed as *chain kernels*
(:class:`GlauberKernel` / :class:`LubyGlauberKernel`, see
:mod:`repro.sampling.kernels`): the serial loops below are the reference
bit-patterns, the ``batched_advance`` methods are the vectorised
``(chains, n)`` code-matrix implementations, and every execution backend
(serial/batched/process/cluster) dispatches them through the same
``run_chains`` path.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.analysis.distances import normalize, sample_from
from repro.engine import resolve_engine
from repro.gibbs.instance import SamplingInstance
from repro.sampling.kernels import (
    RNG_CHUNK,
    ChainKernel,
    register_kernel,
    sample_code,
)

Node = Hashable
Value = Hashable


def greedy_feasible_configuration(
    instance: SamplingInstance, engine: Optional[str] = None
) -> Dict[Node, Value]:
    """A feasible full configuration extending the pinning, built greedily.

    Processes the free nodes in deterministic order and assigns each the
    first alphabet value that keeps every fully assigned factor positive.
    For locally admissible distributions this always succeeds and the result
    is feasible (it is the sequential-local-oblivious construction of
    Remark 2.3); a ``RuntimeError`` is raised otherwise.
    """
    if resolve_engine(engine) == "dict":
        return _greedy_feasible_configuration_dict(instance)
    distribution = instance.distribution
    compiled = distribution.compiled_engine()
    conditionals = compiled.conditionals
    codes = [-1] * len(compiled.nodes)
    for node, value in instance.pinning.items():
        codes[compiled.node_index[node]] = compiled.symbol_index[value]
    for variable, node in enumerate(compiled.nodes):
        if codes[variable] >= 0:
            continue
        weights = conditionals.weights_partial(variable, codes)
        chosen = next((code for code, weight in enumerate(weights) if weight > 0.0), None)
        if chosen is None:
            raise RuntimeError(
                f"greedy construction got stuck at node {node!r}; "
                "the distribution is not locally admissible"
            )
        codes[variable] = chosen
    return {
        node: compiled.alphabet[codes[variable]]
        for variable, node in enumerate(compiled.nodes)
    }


def _greedy_feasible_configuration_dict(instance: SamplingInstance) -> Dict[Node, Value]:
    """Reference implementation of :func:`greedy_feasible_configuration`."""
    distribution = instance.distribution
    assignment: Dict[Node, Value] = instance.pinning.as_dict()
    for node in distribution.nodes:
        if node in assignment:
            continue
        chosen = None
        assigned = set(assignment)
        assigned.add(node)
        for value in distribution.alphabet:
            assignment[node] = value
            feasible = True
            for factor in distribution.factors_at(node):
                if not factor.scope_set <= assigned:
                    continue
                if factor.evaluate(assignment) == 0.0:
                    feasible = False
                    break
            if feasible:
                chosen = value
                break
            del assignment[node]
        if chosen is None:
            raise RuntimeError(
                f"greedy construction got stuck at node {node!r}; "
                "the distribution is not locally admissible"
            )
    return assignment


def warm_start_configuration(
    instance: SamplingInstance, sweeps: int = 3, engine: Optional[str] = None
) -> Dict[Node, Value]:
    """A deterministic local-search warm start for chain initialisation.

    Starts from :func:`greedy_feasible_configuration` and runs up to
    ``sweeps`` deterministic coordinate-ascent sweeps: each free node (in
    deterministic order) is set to the argmax of its local conditional
    weights, first maximum winning ties.  This is the chain-bootstrap idiom
    of pracmln's ``SAMaxWalkSAT`` -- seed the chain near a mode instead of at
    an arbitrary feasible state -- without the stochastic walk, so the result
    is a pure function of the instance.  No RNG is consumed: passing the
    result as ``initial=`` to a sampler changes only the starting state,
    never the kernel's draw sequence.
    """
    if sweeps < 0:
        raise ValueError("sweeps must be non-negative")
    configuration = greedy_feasible_configuration(instance, engine=engine)
    free_nodes = instance.free_nodes
    if not free_nodes:
        return configuration
    if resolve_engine(engine) == "dict":
        for _ in range(sweeps):
            changed = False
            for node in free_nodes:
                conditional = local_conditional(
                    instance, configuration, node, engine="dict"
                )
                best = max(
                    instance.distribution.alphabet, key=lambda v: conditional[v]
                )
                if configuration[node] != best:
                    configuration[node] = best
                    changed = True
            if not changed:
                break
        return configuration
    compiled, conditionals, codes = _compiled_state(instance, configuration)
    free_index = [compiled.node_index[node] for node in free_nodes]
    for _ in range(sweeps):
        changed = False
        for variable in free_index:
            weights = conditionals.weights_by_codes(variable, codes)
            total = sum(weights)
            if total <= 0.0:
                node = compiled.nodes[variable]
                raise ValueError(
                    f"node {node!r} has no feasible value given its neighbourhood; "
                    "the single-site dynamics is not ergodic here"
                )
            best = max(range(compiled.q), key=lambda code: weights[code])
            if codes[variable] != best:
                codes[variable] = best
                changed = True
        if not changed:
            break
    return _decode_state(compiled, codes)


def local_conditional(
    instance: SamplingInstance,
    configuration: Dict[Node, Value],
    node: Node,
    engine: Optional[str] = None,
) -> Dict[Value, float]:
    """Conditional distribution of ``node`` given the rest of the configuration.

    Only the factors containing ``node`` matter, so this is a strictly local
    computation (one LOCAL round).
    """
    distribution = instance.distribution
    if resolve_engine(engine) == "compiled":
        conditionals = distribution.compiled_engine().conditionals
        weights_list = conditionals.weights_by_mapping(node, configuration)
        total = sum(weights_list)
        if total <= 0.0:
            raise ValueError(
                f"node {node!r} has no feasible value given its neighbourhood; "
                "the single-site dynamics is not ergodic here"
            )
        return {
            value: weights_list[code] / total
            for code, value in enumerate(distribution.alphabet)
        }
    weights: Dict[Value, float] = {}
    working = dict(configuration)
    for value in distribution.alphabet:
        working[node] = value
        weight = 1.0
        for factor in distribution.factors_at(node):
            weight *= factor.evaluate(working)
            if weight == 0.0:
                break
        weights[value] = weight
    total = sum(weights.values())
    if total <= 0.0:
        raise ValueError(
            f"node {node!r} has no feasible value given its neighbourhood; "
            "the single-site dynamics is not ergodic here"
        )
    return normalize(weights)


def _compiled_state(instance: SamplingInstance, configuration: Dict[Node, Value]):
    """The (compiled, conditionals, code-list) triple for a chain run."""
    compiled = instance.distribution.compiled_engine()
    symbol_index = compiled.symbol_index
    codes = [symbol_index[configuration[node]] for node in compiled.nodes]
    return compiled, compiled.conditionals, codes


def _decode_state(compiled, codes) -> Dict[Node, Value]:
    alphabet = compiled.alphabet
    return {
        node: alphabet[codes[variable]]
        for variable, node in enumerate(compiled.nodes)
    }


#: Backwards-compatible aliases: the canonical definitions moved to
#: :mod:`repro.sampling.kernels` with the kernel layer.
_sample_code = sample_code
_RNG_CHUNK = RNG_CHUNK


def glauber_sample(
    instance: SamplingInstance,
    steps: int,
    seed: int = 0,
    initial: Optional[Dict[Node, Value]] = None,
    engine: Optional[str] = None,
    runtime=None,
):
    """Run single-site Glauber dynamics for ``steps`` updates and return the state.

    ``runtime`` selects the execution backend (see :mod:`repro.runtime`).
    The default (``None`` / serial) runs one chain and returns its final
    configuration, exactly as before.  A non-serial runtime runs
    ``runtime.n_chains`` independent chains -- batched as one code matrix on
    the batched backend -- and returns the *list* of per-chain final
    configurations; chain ``c`` is bit-identical to the serial chain seeded
    with the ``c``-th stream spawned from ``seed``.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if runtime is not None:
        from repro.runtime import resolve_runtime

        resolved = resolve_runtime(runtime)
        if not resolved.is_serial:
            return resolved.run_chains(
                GLAUBER_KERNEL, instance, steps, seed=seed, initial=initial, engine=engine
            )
    rng = np.random.default_rng(seed)
    configuration = (
        dict(initial)
        if initial is not None
        else greedy_feasible_configuration(instance, engine=engine)
    )
    free_nodes = instance.free_nodes
    if not free_nodes:
        return configuration
    if resolve_engine(engine) == "dict":
        for _ in range(steps):
            node = free_nodes[int(rng.integers(0, len(free_nodes)))]
            conditional = local_conditional(instance, configuration, node, engine="dict")
            configuration[node] = sample_from(conditional, rng)
        return configuration
    compiled, conditionals, codes = _compiled_state(instance, configuration)
    free_index = [compiled.node_index[node] for node in free_nodes]
    free_count = len(free_index)
    tables = conditionals.tables
    remaining = steps
    while remaining > 0:
        chunk = min(remaining, _RNG_CHUNK)
        remaining -= chunk
        choices = rng.integers(0, free_count, size=chunk)
        points = rng.random(chunk)
        for step in range(chunk):
            variable = free_index[choices[step]]
            # Inlined CompiledConditionals.weights_by_codes: this loop is the
            # single-site hot path, and the call overhead is measurable.
            weights = None
            for flat, stride0, others, strides in tables[variable]:
                offset = 0
                for other, stride in zip(others, strides):
                    offset += codes[other] * stride
                gathered = flat[offset::stride0]
                if weights is None:
                    weights = gathered
                else:
                    weights = [w * g for w, g in zip(weights, gathered)]
            if weights is None:
                # A factorless free node resamples uniformly.
                codes[variable] = min(int(points[step] * compiled.q), compiled.q - 1)
                continue
            total = sum(weights)
            if total <= 0.0:
                node = compiled.nodes[variable]
                raise ValueError(
                    f"node {node!r} has no feasible value given its neighbourhood; "
                    "the single-site dynamics is not ergodic here"
                )
            codes[variable] = _sample_code(weights, points[step] * total)
    return _decode_state(compiled, codes)


def luby_glauber_sample(
    instance: SamplingInstance,
    rounds: int,
    seed: int = 0,
    initial: Optional[Dict[Node, Value]] = None,
    engine: Optional[str] = None,
    runtime=None,
):
    """Run the LubyGlauber parallel chain for ``rounds`` rounds and return the state.

    In each round every free node draws a uniform priority; a node updates
    iff its priority beats all of its free neighbours' (the selected nodes
    form an independent set, so the simultaneous updates commute with the
    sequential chain and stationarity is preserved).

    ``runtime`` selects the execution backend (see :mod:`repro.runtime`);
    as with :func:`glauber_sample`, a non-serial runtime runs
    ``runtime.n_chains`` chains and returns the list of per-chain states.
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    if runtime is not None:
        from repro.runtime import resolve_runtime

        resolved = resolve_runtime(runtime)
        if not resolved.is_serial:
            return resolved.run_chains(
                LUBY_GLAUBER_KERNEL,
                instance,
                rounds,
                seed=seed,
                initial=initial,
                engine=engine,
            )
    rng = np.random.default_rng(seed)
    configuration = (
        dict(initial)
        if initial is not None
        else greedy_feasible_configuration(instance, engine=engine)
    )
    graph = instance.graph
    free_nodes = instance.free_nodes
    free_set = set(free_nodes)
    if not free_nodes:
        return configuration
    if resolve_engine(engine) == "dict":
        for _ in range(rounds):
            priorities = {node: rng.random() for node in free_nodes}
            selected = [
                node
                for node in free_nodes
                if all(
                    priorities[node] > priorities[neighbour]
                    for neighbour in graph.neighbors(node)
                    if neighbour in free_set
                )
            ]
            # All selected nodes read the *current* configuration and update
            # simultaneously; since they form an independent set the
            # conditional distributions do not interact within the round.
            updates = {
                node: sample_from(
                    local_conditional(instance, configuration, node, engine="dict"), rng
                )
                for node in selected
            }
            configuration.update(updates)
        return configuration
    compiled, conditionals, codes = _compiled_state(instance, configuration)
    free_index = [compiled.node_index[node] for node in free_nodes]
    free_position = {variable: i for i, variable in enumerate(free_index)}
    # Free neighbours of each free node, as positions into the priority array.
    neighbour_positions = [
        [
            free_position[compiled.node_index[neighbour]]
            for neighbour in graph.neighbors(node)
            if neighbour in free_set
        ]
        for node in free_nodes
    ]
    for _ in range(rounds):
        priorities = rng.random(len(free_index))
        selected = [
            variable
            for position, variable in enumerate(free_index)
            if all(
                priorities[position] > priorities[other]
                for other in neighbour_positions[position]
            )
        ]
        points = rng.random(len(selected))
        # The selected nodes form an independent set, so evaluating their
        # conditionals against the same pre-round snapshot and applying the
        # updates afterwards matches the simultaneous-update semantics.
        updates = []
        for index, variable in enumerate(selected):
            weights = conditionals.weights_by_codes(variable, codes)
            total = sum(weights)
            if total <= 0.0:
                node = compiled.nodes[variable]
                raise ValueError(
                    f"node {node!r} has no feasible value given its neighbourhood; "
                    "the single-site dynamics is not ergodic here"
                )
            updates.append((variable, _sample_code(weights, points[index] * total)))
        for variable, code in updates:
            codes[variable] = code
    return _decode_state(compiled, codes)


# ----------------------------------------------------------------------
# kernel definitions (see repro.sampling.kernels)
# ----------------------------------------------------------------------
class GlauberKernel(ChainKernel):
    """Single-site Glauber dynamics as a chain kernel.

    One unit = one uniformly random free node resampled from its exact
    local conditional.  ``serial_run`` is :func:`glauber_sample`;
    ``batched_advance`` is the vectorised ``(chains, n)`` implementation
    (one batched gather per step), bit-identical per chain under the
    chunked RNG contract (``integers(0, free, k)`` then ``random(k)`` per
    chunk of ``k`` steps).
    """

    name = "glauber"
    unit = "steps"

    def serial_run(self, instance, count, seed=0, initial=None, engine=None):
        return glauber_sample(instance, count, seed=seed, initial=initial, engine=engine)

    def batched_advance(self, batch, count, statistic=None):
        if count < 0:
            raise ValueError("steps must be non-negative")
        free_index = batch.free_index
        free_count = len(free_index)
        trace: Optional[List[np.ndarray]] = [] if statistic is not None else None
        if free_count == 0 or count == 0:
            if trace is not None:
                for _ in range(count):
                    trace.append(np.asarray(statistic(batch.codes), dtype=float))
                return batch.stack_trace(trace)
            return None
        chains = batch.n_chains
        tables = batch.tables
        q = tables.q
        chain_ids = batch.chain_ids
        codes = batch.codes
        factorless = tables.factorless
        remaining = count
        while remaining > 0:
            chunk = min(remaining, RNG_CHUNK)
            remaining -= chunk
            choices = np.empty((chains, chunk), dtype=np.int64)
            points = np.empty((chains, chunk))
            for chain, rng in enumerate(batch.rngs):
                choices[chain] = rng.integers(0, free_count, size=chunk)
                points[chain] = rng.random(chunk)
            variables = free_index[choices]
            for step in range(chunk):
                chosen = variables[:, step]
                point = points[:, step]
                new_codes = tables.sample_codes(
                    codes, chain_ids, chosen, point, batch.compiled
                )
                if batch.any_factorless:
                    # Replicate the serial fast path for factorless nodes
                    # (uniform resample via truncation, not cumulative search).
                    uniform = np.minimum((point * q).astype(np.int64), q - 1)
                    new_codes = np.where(factorless[chosen], uniform, new_codes)
                codes[chain_ids, chosen] = new_codes
                if trace is not None:
                    trace.append(np.asarray(statistic(codes), dtype=float))
        if trace is not None:
            return batch.stack_trace(trace)
        return None

    def packed_advance(self, packed, count) -> None:
        """Fused multi-instance step over one padded code matrix.

        Advances every group of a :class:`~repro.runtime.chains.PackedBatch`
        -- possibly *different models* -- with one ``sample_codes`` gather
        per step across all ``total_chains`` rows, instead of one per
        group.  Bit-identity with solo groups holds because each chain
        replays its exact solo draw pattern (``integers(0, group_free,
        chunk)`` then ``random(chunk)`` per chunk, per chain) and the
        merged tables' padding multiplies by 1.0 after the real factor
        entries; the *write* column is the chain's group-local variable,
        while the *table* row is its global id (group node offset +
        local).  Falls back to the groupwise loop when the pack is not
        fusable (mixed alphabet sizes or a group with no free nodes).
        """
        if count < 0:
            raise ValueError("steps must be non-negative")
        if count == 0:
            return None
        if not packed.fusable():
            return super().packed_advance(packed, count)
        layout = packed.layout()
        codes = packed.gather_codes()
        tables = layout.tables
        q = tables.q
        factorless = tables.factorless
        total = layout.total_chains
        chain_ids = np.arange(total)
        node_offsets = layout.chain_node_offset
        free_counts = layout.free_counts
        free_lookup = layout.free_lookup
        any_factorless = layout.any_factorless
        # stuck_node_error only reads .nodes; give it the packed label map.
        class _packed_compiled:  # noqa: N801 - local shim
            nodes = layout.nodes
        remaining = count
        while remaining > 0:
            chunk = min(remaining, RNG_CHUNK)
            remaining -= chunk
            choices = np.empty((total, chunk), dtype=np.int64)
            points = np.empty((total, chunk))
            for chain, rng in enumerate(layout.rngs):
                choices[chain] = rng.integers(0, free_counts[chain], size=chunk)
                points[chain] = rng.random(chunk)
            local = free_lookup[chain_ids[:, None], choices]
            for step in range(chunk):
                cols = local[:, step]
                variables = node_offsets + cols
                point = points[:, step]
                new_codes = tables.sample_codes(
                    codes, chain_ids, variables, point, _packed_compiled
                )
                if any_factorless:
                    # The serial fast path for factorless nodes (uniform
                    # resample via truncation), per packed row.
                    uniform = np.minimum((point * q).astype(np.int64), q - 1)
                    new_codes = np.where(factorless[variables], uniform, new_codes)
                codes[chain_ids, cols] = new_codes
        packed.scatter_codes(codes)
        return None


class LubyGlauberKernel(ChainKernel):
    """The LubyGlauber parallel chain as a chain kernel.

    One unit = one round: every free node draws a priority, the local
    maxima form an independent set, and all selected nodes resample
    simultaneously from the pre-round snapshot.  ``serial_run`` is
    :func:`luby_glauber_sample`; ``batched_advance`` advances every chain's
    round with one batched priority comparison and one batched gather,
    serving the per-chain draws from prefix-consistent buffered streams.
    """

    name = "luby-glauber"
    unit = "rounds"

    def serial_run(self, instance, count, seed=0, initial=None, engine=None):
        return luby_glauber_sample(
            instance, count, seed=seed, initial=initial, engine=engine
        )

    def batched_advance(self, batch, count, statistic=None):
        if count < 0:
            raise ValueError("rounds must be non-negative")
        trace: Optional[List[np.ndarray]] = [] if statistic is not None else None
        streams = batch.streams()
        neighbour_index = self._neighbour_index(batch)
        for _ in range(count):
            if len(batch.free_index):
                self._round(batch, streams, neighbour_index)
            if trace is not None:
                trace.append(np.asarray(statistic(batch.codes), dtype=float))
        if trace is not None:
            return batch.stack_trace(trace)
        return None

    def _neighbour_index(self, batch) -> np.ndarray:
        """Positions (into the priority array) of each free node's free
        neighbours, padded with a sentinel column that reads a ``-inf``
        priority -- so isolated nodes are always selected, matching the
        serial all-of-empty convention.  Cached per batch."""
        state = batch.scratch(self.name)
        cached = state.get("neighbour_index")
        if cached is not None:
            return cached
        instance = batch.instance
        compiled = batch.compiled
        free_nodes = instance.free_nodes
        free_set = set(free_nodes)
        free_position = {
            variable: position
            for position, variable in enumerate(batch.free_index.tolist())
        }
        graph = instance.graph
        neighbour_positions = [
            [
                free_position[compiled.node_index[neighbour]]
                for neighbour in graph.neighbors(node)
                if neighbour in free_set
            ]
            for node in free_nodes
        ]
        width = max((len(positions) for positions in neighbour_positions), default=0) or 1
        sentinel = len(free_nodes)
        neighbour_index = np.full((len(free_nodes), width), sentinel, dtype=np.int64)
        for position, neighbours in enumerate(neighbour_positions):
            neighbour_index[position, : len(neighbours)] = neighbours
        state["neighbour_index"] = neighbour_index
        return neighbour_index

    def _round(self, batch, streams, neighbour_index) -> None:
        chains = batch.n_chains
        free_index = batch.free_index
        free_count = len(free_index)
        priorities = np.empty((chains, free_count))
        for chain, stream in enumerate(streams):
            priorities[chain] = stream.take(free_count)
        extended = np.concatenate(
            [priorities, np.full((chains, 1), -np.inf)], axis=1
        )
        selected = priorities > extended[:, neighbour_index].max(axis=2)
        counts = selected.sum(axis=1)
        # Every chain consumes exactly its selection count from its stream,
        # matching the serial rng.random(len(selected)) draw.
        points = np.concatenate(
            [streams[chain].take(int(counts[chain])) for chain in range(chains)]
        )
        rows, positions = np.nonzero(selected)
        if len(rows) == 0:
            return
        variables = free_index[positions]
        # All conditionals read the pre-round snapshot; the selected nodes
        # form an independent set per chain, so the simultaneous updates
        # below cannot interact.
        new_codes = batch.tables.sample_codes(
            batch.codes, rows, variables, points, batch.compiled
        )
        batch.codes[rows, variables] = new_codes


#: The registered kernel instances (also reachable by name through
#: :func:`repro.sampling.kernels.get_kernel`).
GLAUBER_KERNEL = register_kernel(GlauberKernel())
LUBY_GLAUBER_KERNEL = register_kernel(LubyGlauberKernel())
