"""Chain kernels: one step-dynamics definition, four execution backends.

The paper's dynamics -- single-site Glauber, Luby-style parallel rounds,
JVV-style rejection resampling, the sequential scan -- are all *step
kernels over a code matrix*: given the current state of one (or many)
chains as integer alphabet codes, advance every chain by one unit of the
dynamics.  This module defines the :class:`ChainKernel` contract that
factors the step definition out of the execution strategy:

* ``serial_run`` -- the reference implementation: advance ONE chain for
  ``count`` units and return its final configuration.  This is the
  bit-pattern the other paths must reproduce.
* ``batched_advance`` -- the vectorised implementation: advance every
  chain of a :class:`~repro.runtime.chains.ChainBatch` (a ``(chains, n)``
  code matrix) in place, bit-identical per chain to ``serial_run``.
* the **RNG-spawn contract** -- chain ``c`` of any multi-chain execution
  uses the ``c``-th ``SeedSequence`` spawned from the root seed
  (:func:`~repro.runtime.chains.chain_seed_sequences`), and consumes its
  generator with exactly the draw pattern of the serial chain (chunked
  ``random`` calls, prefix-consistent buffering).

Concrete kernels are *thin definitions* in the sampler modules --
:class:`~repro.sampling.glauber.GlauberKernel`,
:class:`~repro.sampling.glauber.LubyGlauberKernel`,
:class:`~repro.sampling.jvv.JVVKernel`,
:class:`~repro.sampling.sequential.SequentialKernel` -- registered here by
name.  Every execution backend
(``serial``/``batched``/``process``/``cluster``) reaches them through one
path, :meth:`repro.runtime.executor.Runtime.run_chains`, whose distributed
task body lives in the :data:`repro.runtime.shards.TASK_REGISTRY`; adding
a new dynamics therefore means writing one kernel class, not four
backends of plumbing.

:class:`ScanKernel` implements the shared machinery of the deterministic
scan dynamics (sequential heat-bath scan, optionally gated by a JVV-style
acceptance test), so a new scan-shaped kernel is a ~50-line subclass.
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.engine import resolve_engine
from repro.gibbs.instance import SamplingInstance

Node = Hashable
Value = Hashable

#: Chunk size for pre-drawn random numbers in the chain loops (bounds
#: memory for very long chains while amortising the per-call RNG
#: overhead).  Every kernel -- serial and batched -- draws its uniforms in
#: chunks of this size, which is what makes the per-chain streams
#: reproducible across execution strategies.
RNG_CHUNK = 8192


def sample_code(weights, point: float) -> int:
    """The alphabet code whose cumulative weight first covers ``point``."""
    cumulative = 0.0
    for code, weight in enumerate(weights):
        cumulative += weight
        if point <= cumulative:
            return code
    return len(weights) - 1


def stuck_node_error(compiled, variable: int) -> ValueError:
    """The shared 'no feasible value' failure of every single-site kernel."""
    node = compiled.nodes[int(variable)]
    return ValueError(
        f"node {node!r} has no feasible value given its neighbourhood; "
        "the single-site dynamics is not ergodic here"
    )


# ----------------------------------------------------------------------
# the kernel contract
# ----------------------------------------------------------------------
class ChainKernel(abc.ABC):
    """One step dynamics, executable serially or over a batched code matrix.

    Subclasses set :attr:`name` (the registry key) and :attr:`unit` (what
    ``count`` measures: ``"steps"``, ``"rounds"``, ...), and implement the
    two execution strategies.  The contract binding them: for every chain
    seed, ``batched_advance`` on a batch seeded with ``seeds`` leaves chain
    ``c`` in **bit-identical** state to ``serial_run(..., seed=seeds[c])``
    for the same ``count`` (matched against a single call; splitting one
    run across several calls moves the RNG chunk boundaries).
    """

    #: Registry key; also the ``kernel=`` string accepted everywhere.
    name: str = ""
    #: Human-readable unit of ``count`` (for docs and error messages).
    unit: str = "steps"

    @abc.abstractmethod
    def serial_run(
        self,
        instance: SamplingInstance,
        count: int,
        seed=0,
        initial: Optional[Dict[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> Dict[Node, Value]:
        """Advance one chain by ``count`` units; return its final configuration."""

    @abc.abstractmethod
    def batched_advance(self, batch, count: int, statistic=None):
        """Advance every chain of ``batch`` by ``count`` units, in place.

        Parameters
        ----------
        batch : repro.runtime.chains.ChainBatch
            The ``(chains, n)`` code-matrix state (codes, per-chain
            generators, gather tables, kernel scratch space).
        count : int
            Units of the dynamics per chain.
        statistic : callable, optional
            Applied to the code matrix after every unit; when given, the
            per-chain traces are returned as a ``(chains, count)`` array.

        Returns
        -------
        None or numpy.ndarray
            ``None`` without ``statistic``, else the trace array.
        """

    def packed_advance(self, packed, count: int) -> None:
        """Advance every group of a :class:`~repro.runtime.chains.PackedBatch`.

        The default advances each group's :class:`~repro.runtime.chains.ChainBatch`
        independently -- solo execution by definition, so bit-identity is
        free.  Kernels with a mask-aware vectorised step (Glauber) override
        this to advance all groups' chains through one padded
        ``(total_chains, n_max)`` code matrix, replicating each chain's
        exact solo draw pattern; the override must fall back to this
        groupwise loop whenever :meth:`PackedBatch.fusable` is false.
        """
        for group in packed.groups:
            self.batched_advance(group, count)

    def describe(self) -> str:
        """One-line description used by docs and smoke checks."""
        return f"{self.name} ({self.unit})"


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ChainKernel] = {}


def register_kernel(kernel: ChainKernel) -> ChainKernel:
    """Register a kernel instance under its :attr:`~ChainKernel.name`.

    Returns the kernel so modules can write
    ``KERNEL = register_kernel(MyKernel())``.  Re-registering a name
    replaces the previous kernel (latest definition wins), which keeps
    module reloads idempotent.
    """
    if not kernel.name:
        raise ValueError("a chain kernel needs a non-empty name")
    _REGISTRY[kernel.name] = kernel
    return kernel


def _ensure_builtin_kernels() -> None:
    """Import the sampler modules that define the built-in kernels.

    Registration happens at module import; resolving by name must not
    depend on whether the caller happened to import the defining module
    first (a cluster worker, for example, imports nothing but the task
    body).
    """
    import repro.sampling.glauber  # noqa: F401  (registers glauber, luby-glauber)
    import repro.sampling.jvv  # noqa: F401  (registers jvv)
    import repro.sampling.sequential  # noqa: F401  (registers sequential)


def registered_kernels() -> Dict[str, ChainKernel]:
    """All registered kernels by name (built-ins imported on demand)."""
    _ensure_builtin_kernels()
    return dict(_REGISTRY)


def get_kernel(name: str) -> ChainKernel:
    """Look a kernel up by name, importing the built-in definitions first."""
    _ensure_builtin_kernels()
    kernel = _REGISTRY.get(name)
    if kernel is None:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise ValueError(f"unknown chain kernel {name!r}; registered: {known}")
    return kernel


def resolve_kernel(kernel) -> ChainKernel:
    """Normalise a ``kernel=`` argument: a name or a :class:`ChainKernel`."""
    if isinstance(kernel, ChainKernel):
        return kernel
    if isinstance(kernel, str):
        return get_kernel(kernel)
    raise ValueError(f"expected a kernel name or a ChainKernel, got {kernel!r}")


# ----------------------------------------------------------------------
# shared machinery for deterministic-scan kernels
# ----------------------------------------------------------------------
class ScanKernel(ChainKernel):
    """Deterministic-scan heat-bath dynamics, optionally rejection-gated.

    One unit of the dynamics resamples the next free node of the
    deterministic scan order (``instance.free_nodes``, wrapping around)
    from its exact local conditional given the full current state.  A
    *gated* subclass additionally draws one acceptance uniform per step
    and compares it against :meth:`acceptance_probability` -- the JVV-style
    local rejection with per-chain acceptance masks; rejections raise the
    chain's failure count but the proposal is applied either way, exactly
    like pass 3 of :class:`~repro.sampling.jvv.LocalJVVSampler` (the
    sequence ``sigma_0, ..., sigma_n`` advances regardless; the flags
    decide success).

    The RNG contract per chunk of ``k`` steps: ``random(k)`` proposal
    points, then -- gated kernels only -- ``random(k)`` acceptance points.
    """

    #: Whether each step draws an acceptance uniform against
    #: :meth:`acceptance_probability`.
    gated = False

    def acceptance_probability(self, instance: SamplingInstance) -> float:
        """Per-step acceptance threshold of a gated kernel (1.0 = never reject)."""
        return 1.0

    # -- serial ---------------------------------------------------------
    def serial_run(
        self,
        instance: SamplingInstance,
        count: int,
        seed=0,
        initial: Optional[Dict[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> Dict[Node, Value]:
        configuration, _ = self.serial_scan(
            instance, count, seed=seed, initial=initial, engine=engine
        )
        return configuration

    def serial_scan(
        self,
        instance: SamplingInstance,
        count: int,
        seed=0,
        initial: Optional[Dict[Node, Value]] = None,
        engine: Optional[str] = None,
    ):
        """Run one chain and return ``(configuration, failure_count)``.

        ``failure_count`` is the number of rejected steps (always 0 for an
        ungated kernel).
        """
        from repro.sampling.glauber import (
            _compiled_state,
            _decode_state,
            greedy_feasible_configuration,
            local_conditional,
        )

        if count < 0:
            raise ValueError(f"{self.unit} must be non-negative")
        rng = np.random.default_rng(seed)
        configuration = (
            dict(initial)
            if initial is not None
            else greedy_feasible_configuration(instance, engine=engine)
        )
        free_nodes = instance.free_nodes
        if not free_nodes or count == 0:
            return configuration, 0
        acceptance = self.acceptance_probability(instance) if self.gated else None
        failures = 0
        if resolve_engine(engine) == "dict":
            # Reference backend: same scan order and draw pattern, weights
            # evaluated through the dict engine.
            alphabet = instance.distribution.alphabet
            position = 0
            remaining = count
            while remaining > 0:
                chunk = min(remaining, RNG_CHUNK)
                remaining -= chunk
                points = rng.random(chunk)
                gates = rng.random(chunk) if self.gated else None
                for step in range(chunk):
                    node = free_nodes[position]
                    position += 1
                    if position == len(free_nodes):
                        position = 0
                    conditional = local_conditional(
                        instance, configuration, node, engine="dict"
                    )
                    weights = [conditional[value] for value in alphabet]
                    configuration[node] = alphabet[
                        sample_code(weights, points[step])
                    ]
                    if self.gated and not gates[step] < acceptance:
                        failures += 1
            return configuration, failures
        compiled, conditionals, codes = _compiled_state(instance, configuration)
        tables = conditionals.tables
        free_index = [compiled.node_index[node] for node in free_nodes]
        q = compiled.q
        position = 0
        remaining = count
        while remaining > 0:
            chunk = min(remaining, RNG_CHUNK)
            remaining -= chunk
            points = rng.random(chunk)
            gates = rng.random(chunk) if self.gated else None
            for step in range(chunk):
                variable = free_index[position]
                position += 1
                if position == len(free_index):
                    position = 0
                # Inlined CompiledConditionals.weights_by_codes, exactly the
                # Glauber hot path (same gather, same product order).
                weights = None
                for flat, stride0, others, strides in tables[variable]:
                    offset = 0
                    for other, stride in zip(others, strides):
                        offset += codes[other] * stride
                    gathered = flat[offset::stride0]
                    if weights is None:
                        weights = gathered
                    else:
                        weights = [w * g for w, g in zip(weights, gathered)]
                if weights is None:
                    # A factorless free node resamples uniformly.
                    codes[variable] = min(int(points[step] * q), q - 1)
                else:
                    total = sum(weights)
                    if total <= 0.0:
                        raise stuck_node_error(compiled, variable)
                    codes[variable] = sample_code(weights, points[step] * total)
                if self.gated and not gates[step] < acceptance:
                    failures += 1
        return _decode_state(compiled, codes), failures

    # -- batched --------------------------------------------------------
    def batched_advance(self, batch, count: int, statistic=None):
        if count < 0:
            raise ValueError(f"{self.unit} must be non-negative")
        state = batch.scratch(self.name)
        if "position" not in state:
            state["position"] = 0
            state["failures"] = np.zeros(batch.n_chains, dtype=np.int64)
        free_index = batch.free_index
        trace: Optional[List[np.ndarray]] = [] if statistic is not None else None
        if len(free_index) == 0 or count == 0:
            if trace is not None:
                for _ in range(count):
                    trace.append(np.asarray(statistic(batch.codes), dtype=float))
                return batch.stack_trace(trace)
            return None
        acceptance = self.acceptance_probability(batch.instance) if self.gated else None
        chains = batch.n_chains
        codes = batch.codes
        tables = batch.tables
        q = tables.q
        factorless = tables.factorless
        chain_ids = batch.chain_ids
        failures = state["failures"]
        position = state["position"]
        remaining = count
        while remaining > 0:
            chunk = min(remaining, RNG_CHUNK)
            remaining -= chunk
            points = np.empty((chains, chunk))
            gates = np.empty((chains, chunk)) if self.gated else None
            for chain, rng in enumerate(batch.rngs):
                points[chain] = rng.random(chunk)
                if self.gated:
                    gates[chain] = rng.random(chunk)
            for step in range(chunk):
                variable = free_index[position]
                position += 1
                if position == len(free_index):
                    position = 0
                point = points[:, step]
                if factorless[variable]:
                    # Serial fast path: a factorless node resamples
                    # uniformly via truncation.
                    new_codes = np.minimum((point * q).astype(np.int64), q - 1)
                else:
                    new_codes = tables.sample_codes(
                        codes,
                        chain_ids,
                        np.full(chains, variable, dtype=np.int64),
                        point,
                        batch.compiled,
                    )
                codes[:, variable] = new_codes
                if self.gated:
                    # The per-chain acceptance mask: rejected chains raise
                    # their failure count; the proposal applies either way.
                    failures += ~(gates[:, step] < acceptance)
                if trace is not None:
                    trace.append(np.asarray(statistic(codes), dtype=float))
        state["position"] = position
        if trace is not None:
            return batch.stack_trace(trace)
        return None

    def failure_counts(self, batch) -> np.ndarray:
        """Per-chain rejected-step counts accumulated by ``batched_advance``."""
        state = batch.scratch(self.name)
        failures = state.get("failures")
        if failures is None:
            return np.zeros(batch.n_chains, dtype=np.int64)
        return failures.copy()
