"""The distributed JVV sampler (Theorem 4.2 / Proposition 4.3).

``local-JVV`` is a three-pass SLOCAL algorithm that turns approximate
inference (with multiplicative error ``1/n^3``) into *exact* sampling for
local Gibbs distributions, via a local rejection-sampling step:

* **Pass 1 (ground state).**  Scanning the nodes in the adversarial order,
  each node pins itself to a value of positive estimated marginal given the
  pins placed so far; the result is a feasible configuration ``sigma_0``.
* **Pass 2 (proposal).**  Scanning again, each node samples its value from
  the estimated marginal conditioned on the previously sampled values; the
  result ``Y`` follows a distribution ``mu_hat`` within ``e^{±1/n^2}`` of the
  target (Claim 4.5).
* **Pass 3 (local rejection).**  A sequence of feasible configurations
  ``sigma_0, sigma_1, ..., sigma_n = Y`` is built, where ``sigma_i`` agrees
  with ``Y`` on the first ``i`` nodes and differs from ``sigma_{i-1}`` only
  inside the radius-``t`` ball of the ``i``-th node.  Node ``v_i`` computes

  ``q_{v_i} = [mu_hat(sigma_{i-1}) * w(sigma_i)] / [mu_hat(sigma_i) *
  w(sigma_{i-1})] * e^{-3/n^2}``

  from information within radius ``3 t + l`` (Claim 4.7) and *accepts* with
  probability ``q_{v_i}``, otherwise it raises its locally certifiable
  failure flag.  (The paper's text says "fails if ``F'_v = 1``" while its
  Lemma 4.8 computes the success probability as the product of the ``q``'s;
  we follow the mathematics: acceptance happens with probability ``q``.)

The product of the acceptance probabilities telescopes to
``mu_hat(sigma_0) * w(Y) / (mu_hat(Y) * w(sigma_0)) * e^{-3/n}``, so
conditioned on global acceptance the output is distributed exactly according
to ``mu^tau``, and the failure probability is ``O(1/n)``.

The rejection pass is additionally exposed as a *chain kernel*
(:class:`JVVKernel`, see :mod:`repro.sampling.kernels`): with an exact
local oracle the per-node quantity ``q_{v_i}`` of equation (9) collapses to
the slack constant ``e^{-3/n^2}`` (the ``mu_hat`` ratio cancels the weight
ratio exactly -- the identity the acceptance test of
``tests/test_sampling_jvv.py`` pins down), so one unit of the kernel is:
resample the next scan node from its exact conditional (that is ``sigma_i``
adopting the proposal) and draw the acceptance gate against ``e^{-3/n^2}``,
raising the chain's failure count on rejection -- exactly the
``sigma_{i-1} -> sigma_i`` step of pass 3, iterated over the scan.  A full
scan (``n_free`` units) is one rejection pass; a chain succeeds iff no step
rejected, with success probability ``e^{-3 n_free / n^2} ~ e^{-3/n}``
(Lemma 4.8).  The batched implementation advances many chains as one
``(chains, n)`` code matrix with per-chain acceptance masks, bit-identical
per chain to :func:`jvv_rejection_sample`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.analysis.distances import sample_from
from repro.gibbs.instance import SamplingInstance
from repro.graphs.structure import ball
from repro.inference.base import InferenceAlgorithm
from repro.localmodel.network import Network
from repro.localmodel.scheduler import ScheduledRunResult, simulate_slocal_as_local
from repro.localmodel.slocal import SLocalAlgorithm, StateAccess, run_slocal_algorithm
from repro.sampling.kernels import ScanKernel, register_kernel

Node = Hashable
Value = Hashable


class JVVKernel(ScanKernel):
    """JVV-style local rejection resampling as a chain kernel.

    The deterministic-scan heat-bath step of :class:`ScanKernel`, gated by
    the pass-3 acceptance test of :class:`LocalJVVSampler` specialised to
    an exact local oracle: each step accepts with probability
    ``e^{-3/n^2}`` (equation (9) with the ``mu_hat``/weight ratios
    cancelling) and raises the chain's failure count otherwise, while the
    proposal is applied either way -- the sequence ``sigma_0, ...,
    sigma_n`` of the paper's construction advances regardless of the
    flags.  Per chunk of ``k`` steps each chain draws ``random(k)``
    proposal points then ``random(k)`` acceptance points, which is the
    contract making the batched per-chain acceptance masks bit-identical
    to the serial :func:`jvv_rejection_sample`.
    """

    name = "jvv"
    unit = "steps"
    gated = True

    def acceptance_probability(self, instance: SamplingInstance) -> float:
        """The slack constant ``e^{-3/n^2}`` of equation (9)."""
        n = max(2, instance.size)
        return math.exp(-3.0 / n ** 2)


#: The registered kernel instance (also ``kernel="jvv"`` everywhere).
JVV_KERNEL = register_kernel(JVVKernel())


def jvv_rejection_sample(
    instance: SamplingInstance,
    steps: int,
    seed=0,
    initial: Optional[Dict[Node, Value]] = None,
    engine: Optional[str] = None,
    return_failures: bool = False,
):
    """Run the serial JVV rejection chain for ``steps`` scan updates.

    The serial reference of :class:`JVVKernel`: starting from ``initial``
    (default: the greedy ground state, the pass-1 analogue), each step
    resamples the next free node of the deterministic scan order from its
    exact local conditional and draws the ``e^{-3/n^2}`` acceptance gate.
    ``steps = len(instance.free_nodes)`` is one full rejection pass.

    Parameters
    ----------
    instance, steps, seed, initial, engine
        As for :func:`repro.sampling.glauber.glauber_sample`.
    return_failures : bool
        When set, return ``(configuration, failure_count)`` instead of the
        configuration alone; a run is a JVV success iff no step rejected.
    """
    configuration, failures = JVV_KERNEL.serial_scan(
        instance, steps, seed=seed, initial=initial, engine=engine
    )
    if return_failures:
        return configuration, failures
    return configuration


def jvv_chain_stats(
    instance: SamplingInstance,
    steps: int,
    n_chains: Optional[int] = None,
    seed=0,
    seeds=None,
    initial: Optional[Dict[Node, Value]] = None,
    runtime=None,
):
    """Final states *and* per-chain rejection counts of independent JVV chains.

    The failure-count sibling of ``Runtime.run_chains("jvv", ...)``, for
    consumers (E4's rejection-law rows, E12's jvv-kernel row) that need the
    acceptance masks alongside the states.  A serial runtime runs the
    per-seed serial reference loop; the process and cluster runtimes
    distribute batched blocks with the ``chain_block`` payload's
    ``stats=True`` flag, which carries the per-chain failure counts back
    over the pipe/socket alongside the configurations; any other runtime
    advances one in-process :class:`~repro.runtime.chains.ChainBatch` and
    reads the accumulated masks directly.  States and counts are identical
    across runtimes under the spawned-seed convention.

    Returns
    -------
    (list of dict, list of int)
        Per-chain final configurations and rejected-step counts, in seed
        order.
    """
    from repro.runtime import resolve_runtime
    from repro.runtime.chains import ChainBatch, chain_seed_sequences
    from repro.runtime.shards import run_chain_blocks

    resolved = resolve_runtime(runtime)
    if seeds is None:
        seeds = chain_seed_sequences(
            seed, n_chains if n_chains is not None else resolved.n_chains
        )
    else:
        seeds = list(seeds)
    if resolved.is_serial:
        pairs = [
            jvv_rejection_sample(
                instance, steps, seed=chain_seed, initial=initial, return_failures=True
            )
            for chain_seed in seeds
        ]
        return [state for state, _ in pairs], [count for _, count in pairs]
    if resolved.is_process:
        states, counts = run_chain_blocks(
            instance,
            JVV_KERNEL.name,
            steps,
            seeds,
            initial=initial,
            n_workers=resolved.n_workers,
            stats=True,
        )
        return states, list(counts)
    if resolved.is_cluster:
        states, counts = resolved.cluster_client().chain_samples(
            instance, JVV_KERNEL.name, steps, seeds, initial=initial, stats=True
        )
        return states, list(counts)
    batch = ChainBatch(instance, seeds=seeds, initial=initial)
    batch.advance(JVV_KERNEL, steps)
    return batch.configurations(), JVV_KERNEL.failure_counts(batch).tolist()


class LocalJVVSampler(SLocalAlgorithm):
    """The three-pass local-JVV SLOCAL algorithm."""

    passes = 3

    def __init__(
        self,
        instance: SamplingInstance,
        inference: InferenceAlgorithm,
        inference_error: Optional[float] = None,
        max_rejection_candidates: int = 4096,
    ) -> None:
        self.instance = instance
        self.inference = inference
        n = max(2, instance.size)
        #: Multiplicative error the inference engine is asked for (1/n^3 in
        #: Proposition 4.3).
        self.inference_error = inference_error if inference_error is not None else 1.0 / n ** 3
        self.max_rejection_candidates = max_rejection_candidates
        self._step_counter = 0

    # ------------------------------------------------------------------
    def base_radius(self, network: Network) -> int:
        """The inference engine's radius ``t`` at the requested accuracy."""
        return self.inference.locality(self.instance, self.inference_error)

    def locality(self, network: Network) -> int:
        """``3 t + l`` -- the radius Claim 4.7 charges for the rejection pass."""
        return 3 * self.base_radius(network) + self.instance.distribution.locality()

    def initial_state(self, node: Node, network: Network) -> dict:
        return {}

    # ------------------------------------------------------------------
    def _visible_values(self, access: StateAccess, key: str) -> Dict[Node, Value]:
        values: Dict[Node, Value] = {}
        for other in access.visible_nodes:
            state = access.read(other)
            if key in state:
                values[other] = state[key]
        return values

    def _conditioned(self, assignment: Dict[Node, Value]) -> SamplingInstance:
        free_assignment = {
            node: value
            for node, value in assignment.items()
            if node not in self.instance.pinning
        }
        return self.instance.conditioned(free_assignment)

    # ------------------------------------------------------------------
    def process(
        self,
        pass_index: int,
        node: Node,
        access: StateAccess,
        rng: np.random.Generator,
        network: Network,
    ) -> None:
        if pass_index == 0:
            self._process_ground(node, access)
        elif pass_index == 1:
            self._process_proposal(node, access, rng)
        else:
            self._process_rejection(node, access, rng, network)

    # -- pass 1: ground state -------------------------------------------
    def _process_ground(self, node: Node, access: StateAccess) -> None:
        instance = self.instance
        step = self._step_counter
        self._step_counter += 1
        access.write(node, "step", step)
        if node in instance.pinning:
            access.write(node, "ground", instance.pinning[node])
            return
        assigned = self._visible_values(access, "ground")
        assigned.pop(node, None)
        conditioned = self._conditioned(assigned)
        marginal = self.inference.marginal(conditioned, node, self.inference_error)
        positive = {value: p for value, p in marginal.items() if p > 0.0}
        if not positive:
            raise RuntimeError(
                f"the inference engine reported an all-zero marginal at {node!r}; "
                "cannot build a ground state"
            )
        choice = max(sorted(positive, key=repr), key=lambda v: positive[v])
        access.write(node, "ground", choice)

    # -- pass 2: proposal --------------------------------------------------
    def _process_proposal(self, node: Node, access: StateAccess, rng) -> None:
        instance = self.instance
        if node in instance.pinning:
            access.write(node, "sample", instance.pinning[node])
            return
        assigned = self._visible_values(access, "sample")
        assigned.pop(node, None)
        conditioned = self._conditioned(assigned)
        marginal = self.inference.marginal(conditioned, node, self.inference_error)
        access.write(node, "sample", sample_from(marginal, rng))

    # -- pass 3: local rejection ------------------------------------------
    def _ball_feasible(
        self,
        candidate: Dict[Node, Value],
        context: Dict[Node, Value],
        check_nodes,
    ) -> bool:
        """Whether all factors contained in ``check_nodes`` accept the configuration.

        ``candidate`` overrides ``context`` inside the update ball; factors
        whose scope is not fully assigned are skipped (they are unchanged
        outside the ball and were positive for the previous configuration).
        """
        distribution = self.instance.distribution
        merged = dict(context)
        merged.update(candidate)
        node_set = set(check_nodes)
        for factor in distribution.factors_within(node_set):
            if not set(factor.scope) <= set(merged):
                continue
            if factor.evaluate(merged) == 0.0:
                return False
        return True

    def _process_rejection(self, node: Node, access: StateAccess, rng, network: Network) -> None:
        instance = self.instance
        distribution = instance.distribution
        graph = instance.graph
        t = self.base_radius(network)
        ell = distribution.locality()
        my_state = access.read(node)
        my_step = my_state["step"]

        # Current configuration sigma_{i-1} and proposal Y on the visible ball.
        visible = access.visible_nodes
        current: Dict[Node, Value] = {}
        proposal: Dict[Node, Value] = {}
        steps: Dict[Node, int] = {}
        for other in visible:
            state = access.read(other)
            current[other] = state.get("current", state["ground"])
            proposal[other] = state["sample"]
            steps[other] = state["step"]

        update_ball = ball(graph, node, t) & visible
        check_ball = ball(graph, node, t + ell) & visible

        # Build sigma_i: agree with Y on nodes already processed in this pass
        # (step <= my_step), keep the pinning, and adjust the remaining free
        # nodes of the update ball if needed to restore feasibility.
        fixed: Dict[Node, Value] = {}
        adjustable: List[Node] = []
        for other in sorted(update_ball, key=repr):
            if other in instance.pinning:
                fixed[other] = instance.pinning[other]
            elif steps[other] <= my_step:
                fixed[other] = proposal[other]
            else:
                adjustable.append(other)

        candidate = dict(fixed)
        for other in adjustable:
            candidate[other] = current[other]
        context = {other: current[other] for other in check_ball if other not in update_ball}

        if not self._ball_feasible(candidate, context, check_ball):
            candidate = self._search_feasible_update(
                fixed, adjustable, context, check_ball
            )
            if candidate is None:
                # Claim 4.6 guarantees existence when the inference error is
                # small enough; with a coarse engine we fail locally instead.
                access.write(node, "output", proposal[node])
                access.write(node, "failed", True)
                for other in update_ball:
                    access.write(other, "current", current[other])
                return

        sigma_previous = dict(current)
        sigma_next = dict(current)
        sigma_next.update(candidate)

        acceptance = self._acceptance_probability(
            node, sigma_previous, sigma_next, steps, my_step, check_ball, visible, t
        )

        accepted = bool(rng.random() < acceptance)
        for other, value in sigma_next.items():
            if other in update_ball:
                access.write(other, "current", value)
        access.write(node, "output", proposal[node])
        access.write(node, "failed", not accepted)
        access.write(node, "acceptance", acceptance)

    def _search_feasible_update(
        self,
        fixed: Dict[Node, Value],
        adjustable: Sequence[Node],
        context: Dict[Node, Value],
        check_ball,
    ) -> Optional[Dict[Node, Value]]:
        """Enumerate assignments of the adjustable nodes until one is feasible."""
        alphabet = self.instance.distribution.alphabet
        count = 0
        for values in itertools.product(alphabet, repeat=len(adjustable)):
            count += 1
            if count > self.max_rejection_candidates:
                return None
            candidate = dict(fixed)
            candidate.update(zip(adjustable, values))
            if self._ball_feasible(candidate, context, check_ball):
                return candidate
        return None

    def _acceptance_probability(
        self,
        node: Node,
        sigma_previous: Dict[Node, Value],
        sigma_next: Dict[Node, Value],
        steps: Dict[Node, int],
        my_step: int,
        check_ball,
        visible,
        t: int,
    ) -> float:
        """The quantity ``q_{v_i}`` of equation (9), computed locally."""
        instance = self.instance
        distribution = instance.distribution
        n = max(2, instance.size)

        # Weight ratio w(sigma_i) / w(sigma_{i-1}) over the factors inside the
        # (t + l)-ball -- all other factors see identical configurations.
        weight_ratio = 1.0
        for factor in distribution.factors_within(set(check_ball)):
            if not set(factor.scope) <= set(sigma_next):
                continue
            new_weight = factor.evaluate(sigma_next)
            old_weight = factor.evaluate(sigma_previous)
            if old_weight <= 0.0:
                return 0.0
            weight_ratio *= new_weight / old_weight

        # Estimated-distribution ratio mu_hat(sigma_{i-1}) / mu_hat(sigma_i).
        # For a genuinely t-local inference engine only nodes within distance
        # 2t of v_i contribute a non-trivial factor (equation (11)); we sum
        # over every visible node so that the telescoping identity also holds
        # exactly for non-local oracles such as ExactInference, which the
        # correctness tests use.
        mu_ratio = 1.0
        influence = set(visible)
        for other in sorted(influence, key=lambda u: steps[u]):
            if other in instance.pinning:
                continue
            if sigma_previous.get(other) is None or sigma_next.get(other) is None:
                continue
            prefix_previous = {
                u: sigma_previous[u]
                for u in visible
                if steps[u] < steps[other] and u in sigma_previous
            }
            prefix_next = {
                u: sigma_next[u]
                for u in visible
                if steps[u] < steps[other] and u in sigma_next
            }
            old_marginal = self.inference.marginal(
                self._conditioned(prefix_previous), other, self.inference_error
            )
            new_marginal = self.inference.marginal(
                self._conditioned(prefix_next), other, self.inference_error
            )
            numerator = old_marginal.get(sigma_previous[other], 0.0)
            denominator = new_marginal.get(sigma_next[other], 0.0)
            if denominator <= 0.0:
                return 0.0
            mu_ratio *= numerator / denominator

        acceptance = mu_ratio * weight_ratio * math.exp(-3.0 / n ** 2)
        return min(1.0, max(0.0, acceptance))


@dataclass
class ExactSampleResult:
    """A sample produced by the local-JVV sampler."""

    configuration: Dict[Node, Value]
    failures: Dict[Node, bool]
    rounds: int
    ordering: Sequence[Node]
    details: Dict[str, object]

    @property
    def success(self) -> bool:
        """True when every node accepted (no local rejection, no scheduling failure)."""
        return not any(self.failures.values())

    @property
    def failure_count(self) -> int:
        """Number of nodes that raised their failure flag."""
        return sum(1 for failed in self.failures.values() if failed)


def sample_exact_slocal(
    instance: SamplingInstance,
    inference: InferenceAlgorithm,
    seed: int = 0,
    ordering: Optional[Sequence[Node]] = None,
    inference_error: Optional[float] = None,
) -> ExactSampleResult:
    """One run of the local-JVV sampler in the SLOCAL model."""
    algorithm = LocalJVVSampler(instance, inference, inference_error=inference_error)
    network = Network(instance.graph, seed=seed)
    result = run_slocal_algorithm(algorithm, network, ordering)
    return ExactSampleResult(
        configuration={node: result.outputs[node] for node in network.nodes},
        failures=result.failures,
        rounds=result.locality,
        ordering=result.ordering,
        details={"mode": "slocal", "inference": inference.name()},
    )


def sample_exact_local(
    instance: SamplingInstance,
    inference: InferenceAlgorithm,
    seed: int = 0,
    inference_error: Optional[float] = None,
) -> ExactSampleResult:
    """One run of the local-JVV sampler simulated in the LOCAL model (Lemma 3.1)."""
    algorithm = LocalJVVSampler(instance, inference, inference_error=inference_error)
    network = Network(instance.graph, seed=seed)
    result: ScheduledRunResult = simulate_slocal_as_local(algorithm, network, seed=seed)
    return ExactSampleResult(
        configuration={node: result.outputs[node] for node in network.nodes},
        failures=result.failures,
        rounds=result.rounds,
        ordering=result.ordering,
        details={"mode": "local", "inference": inference.name(), **result.details},
    )
