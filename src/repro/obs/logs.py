"""The ``repro.*`` structured logging hierarchy.

Every module logs through :func:`get_logger`, which anchors names under
the ``repro`` root logger.  Import is inert: the only side effect is a
``NullHandler`` on the root (standard library practice — it silences the
``logging.lastResort`` stderr fallback without installing any real
handler, and records still propagate so ``pytest`` ``caplog`` works).

:func:`configure` opts a process in: it installs one structured handler
on the ``repro`` root whose formatter renders ``event key=value`` lines
from the ``fields`` mapping attached by :func:`log_event`.  It is
idempotent and reversible (:func:`reset`), so the obs-off guarantee —
no handlers beyond the NullHandler, nothing written anywhere — holds
for processes that never call it.
"""

from __future__ import annotations

import logging
from typing import IO, Optional

__all__ = ["get_logger", "log_event", "configure", "reset", "ROOT_NAME"]

ROOT_NAME = "repro"

_root = logging.getLogger(ROOT_NAME)
_root.addHandler(logging.NullHandler())

#: The handler installed by :func:`configure`, tracked for idempotency.
_installed_handler: Optional[logging.Handler] = None


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("cluster.worker")`` and
    ``get_logger("repro.cluster.worker")`` name the same logger.
    """
    if name != ROOT_NAME and not name.startswith(ROOT_NAME + "."):
        name = f"{ROOT_NAME}.{name}"
    return logging.getLogger(name)


def log_event(logger: logging.Logger, level: int, event: str, **fields) -> None:
    """Emit one structured record: an event name plus key=value fields.

    The fields ride on the record as ``record.fields`` (for structured
    consumers and tests) and are rendered into the message by the
    handler installed by :func:`configure`.
    """
    if not logger.isEnabledFor(level):
        return
    if fields:
        rendered = " ".join(f"{key}={fields[key]}" for key in sorted(fields))
        message = f"{event} {rendered}"
    else:
        message = event
    logger.log(level, message, extra={"fields": fields, "event": event})


class _StructuredFormatter(logging.Formatter):
    """``time level logger: event key=value ...`` lines."""

    default_format = "%(asctime)s %(levelname)s %(name)s: %(message)s"

    def __init__(self) -> None:
        super().__init__(self.default_format, datefmt="%H:%M:%S")


def configure(level: int = logging.INFO, stream: Optional[IO[str]] = None) -> logging.Handler:
    """Install (or re-target) the single structured handler on ``repro``.

    Returns the handler so callers (tests, the CLI) can flush or detach
    it.  Calling again replaces the previous handler rather than
    stacking duplicates.
    """
    global _installed_handler
    reset()
    handler = logging.StreamHandler(stream) if stream is not None else logging.StreamHandler()
    handler.setFormatter(_StructuredFormatter())
    handler.setLevel(level)
    _root.addHandler(handler)
    if _root.level == logging.NOTSET or _root.level > level:
        _root.setLevel(level)
    _installed_handler = handler
    return handler


def reset() -> None:
    """Remove the handler installed by :func:`configure`, if any."""
    global _installed_handler
    if _installed_handler is not None:
        _root.removeHandler(_installed_handler)
        _installed_handler = None
        _root.setLevel(logging.NOTSET)


def installed_handler() -> Optional[logging.Handler]:
    """The handler :func:`configure` installed, or ``None`` (obs-off)."""
    return _installed_handler
