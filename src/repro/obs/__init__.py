"""repro.obs — metrics, span tracing, and structured logging.

One module-global :class:`Observability` handle gates everything.  When
no handle is installed (the default), the subsystem is inert: hot paths
pay one module-attribute read plus a ``None`` check, ``obs.span`` hands
back a shared no-op context manager, no metric objects exist, and the
only logging side effect anywhere is a ``NullHandler`` on the ``repro``
root logger.

Usage::

    from repro import obs

    handle = obs.enable()                 # metrics + tracing on
    with obs.span("compile_ball", center=3):
        ...
    handle.metrics.counter("engine.ball_cache.compiles").inc()
    obs.export_chrome("trace.json")       # chrome://tracing / Perfetto
    obs.disable()

Instrumented call sites in the engine/runtime/cluster follow the
guarded pattern::

    _o = obs.active()
    if _o is not None:
        _o.metrics.counter("...").inc()

Trace contexts propagate across process pools (via the ``InstanceSpec``
pool initializer) and across the cluster wire (an ``_obs`` field inside
the pickled, HMAC-covered TASK payload; results return worker events the
coordinator absorbs), so spans from every process stitch into one
timeline under one trace id.  Tracing never touches NumPy RNG state:
results are bit-identical with tracing on or off.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import logs
from repro.obs.logs import get_logger, log_event
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    NULL_SPAN,
    TraceContext,
    TraceRecorder,
    chrome_trace,
    summarize,
    validate_event,
    validate_events,
)

__all__ = [
    "Observability",
    "enable",
    "install",
    "disable",
    "active",
    "span",
    "instant",
    "events",
    "snapshot",
    "wire_context",
    "absorb_events",
    "drain_events",
    "record_remote",
    "arm_remote",
    "export_jsonl",
    "export_chrome",
    "get_logger",
    "log_event",
    "TraceContext",
    "TraceRecorder",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace",
    "summarize",
    "validate_event",
    "validate_events",
]


class Observability:
    """A bundle of one metrics registry and (optionally) one tracer."""

    __slots__ = ("metrics", "tracer", "log_handler")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[TraceRecorder] = None,
        log_handler=None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.log_handler = log_handler

    def span(self, name: str, **attrs):
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, **attrs)

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {"metrics": self.metrics.snapshot()}
        if self.tracer is not None:
            out["trace"] = {
                "trace_id": self.tracer.trace_id,
                "events": len(self.tracer.events()),
                "dropped": self.tracer.dropped,
            }
        return out


#: The installed handle; ``None`` means observability is off everywhere.
_ACTIVE: Optional[Observability] = None


def enable(
    tracing: bool = True,
    ring: int = 65536,
    log_level: Optional[int] = None,
    proc: str = "main",
) -> Observability:
    """Install (replacing any previous) the process-wide handle.

    Parameters
    ----------
    tracing:
        Record spans/events into a ring buffer of ``ring`` entries.
        Metrics are always on for an enabled handle.
    log_level:
        When given, also install the structured log handler at this
        level (see :func:`repro.obs.logs.configure`).  Left ``None``,
        logging configuration is untouched.
    proc:
        Process label stamped on trace events ("main", "cluster-worker",
        ...).
    """
    global _ACTIVE
    tracer = TraceRecorder(ring=ring, proc=proc) if tracing else None
    handler = logs.configure(log_level) if log_level is not None else None
    _ACTIVE = Observability(tracer=tracer, log_handler=handler)
    return _ACTIVE


def install(handle: Observability) -> Observability:
    """Install an existing handle as the process-wide one."""
    global _ACTIVE
    _ACTIVE = handle
    return handle


def disable() -> None:
    """Remove the handle; obs goes back to fully inert."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE.log_handler is not None:
        logs.reset()
    _ACTIVE = None


def active() -> Optional[Observability]:
    """The installed handle, or ``None`` when observability is off."""
    return _ACTIVE


# -- convenience wrappers (all no-ops when off) -------------------------


def span(name: str, **attrs):
    """A span context manager; the shared no-op when tracing is off."""
    handle = _ACTIVE
    if handle is None or handle.tracer is None:
        return NULL_SPAN
    return handle.tracer.span(name, **attrs)


def instant(name: str, **attrs) -> None:
    """Record a point event; silently dropped when tracing is off."""
    handle = _ACTIVE
    if handle is not None and handle.tracer is not None:
        handle.tracer.instant(name, **attrs)


def events() -> List[dict]:
    """Buffered trace events (empty when tracing is off)."""
    handle = _ACTIVE
    if handle is None or handle.tracer is None:
        return []
    return handle.tracer.events()


def snapshot() -> Dict[str, object]:
    """Metrics + trace summary for the active handle (``{}`` when off)."""
    handle = _ACTIVE
    if handle is None:
        return {}
    return handle.snapshot()


def wire_context() -> Optional[Dict[str, object]]:
    """The current trace context as a wire dict, or ``None`` (tracing off).

    This is what rides on TASK frames and process-pool initargs.  It is
    a plain versioned dict so old peers that don't know the field ignore
    it, and it travels inside the pickled payload, so when cluster
    authentication is on it is covered by the frame HMAC.
    """
    handle = _ACTIVE
    if handle is None or handle.tracer is None:
        return None
    return handle.tracer.current_context().to_wire()


def absorb_events(remote_events) -> int:
    """Merge events recorded by another process into the active tracer."""
    handle = _ACTIVE
    if handle is None or handle.tracer is None or not remote_events:
        return 0
    return handle.tracer.absorb(remote_events)


def drain_events() -> List[dict]:
    """Pop all buffered events (used by pool workers shipping results)."""
    handle = _ACTIVE
    if handle is None or handle.tracer is None:
        return []
    out = handle.tracer.events()
    handle.tracer.clear()
    return out


def arm_remote(wire_ctx: object, proc: str = "pool-worker") -> Optional[Observability]:
    """Install a handle continuing ``wire_ctx`` in *this* process.

    Called from process-pool initializers in worker processes.  A
    malformed/foreign-version context (or ``None``) leaves the process
    untouched and returns ``None`` — the versioned-wire contract.
    """
    global _ACTIVE
    ctx = TraceContext.from_wire(wire_ctx)
    if ctx is None:
        return None
    _ACTIVE = Observability(tracer=TraceRecorder(parent=ctx, proc=proc))
    return _ACTIVE


def record_remote(
    wire_ctx: object,
    thunk: Callable[[], object],
    name: str = "worker.task",
    proc: str = "cluster-worker",
    **attrs,
) -> Tuple[object, Optional[List[dict]]]:
    """Run ``thunk`` under a span continuing ``wire_ctx``; ship the events.

    Returns ``(result, events)`` where ``events`` is ``None`` when the
    context is absent/unknown (legacy peer — caller must then keep the
    legacy result shape).  The temporary handle is installed as the
    process-wide one for the duration, so nested instrumentation (ball
    compiles, chain advances) lands in the shipped events too.
    """
    global _ACTIVE
    ctx = TraceContext.from_wire(wire_ctx)
    if ctx is None:
        return thunk(), None
    saved = _ACTIVE
    handle = Observability(tracer=TraceRecorder(parent=ctx, proc=proc))
    _ACTIVE = handle
    try:
        with handle.tracer.span(name, **attrs):
            result = thunk()
    finally:
        _ACTIVE = saved
    return result, handle.tracer.events()


def export_jsonl(path: str) -> int:
    """Write the active tracer's events as JSON lines."""
    handle = _ACTIVE
    if handle is None or handle.tracer is None:
        raise RuntimeError("observability is not enabled; nothing to export")
    return handle.tracer.export_jsonl(path)


def export_chrome(path: str) -> int:
    """Write the active tracer's events as Chrome trace_event JSON."""
    handle = _ACTIVE
    if handle is None or handle.tracer is None:
        raise RuntimeError("observability is not enabled; nothing to export")
    return handle.tracer.export_chrome(path)
