"""Span-based tracing with a ring buffer and JSONL / Chrome exporters.

A :class:`TraceRecorder` collects *events* — plain JSON-safe dicts — into
a bounded ``collections.deque``.  Spans are recorded with context
managers (``with recorder.span("compile_ball", center=3): ...``) and
point occurrences with :meth:`TraceRecorder.instant`.  Every event
carries a ``trace`` id shared by the whole run plus ``span``/``parent``
ids, so events gathered on other processes or other machines (shipped
back as dicts and merged with :meth:`TraceRecorder.absorb`) stitch into
one timeline.

Determinism contract: ids come from :func:`os.urandom` and timestamps
from :func:`time.time`/:func:`time.perf_counter` — tracing never touches
NumPy RNG state, so traced runs are bit-identical to untraced runs.

Wall-clock timestamps (``ts``) are epoch seconds, comparable across
processes on one host; durations (``dur``) come from the monotonic
performance counter.  The Chrome exporter emits ``trace_event`` JSON
loadable in ``chrome://tracing`` / Perfetto, with one process row per
originating pid.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "TraceContext",
    "TraceRecorder",
    "new_id",
    "validate_event",
    "validate_events",
    "chrome_trace",
    "summarize",
    "EVENT_FIELDS",
]

#: Event schema: required field name -> accepted types.  ``parent`` may be
#: ``None`` (a root span); everything else is mandatory and typed.  The CI
#: trace smoke validates exported traces against exactly this table.
EVENT_FIELDS = {
    "name": str,
    "cat": str,
    "trace": str,
    "span": str,
    "parent": (str, type(None)),
    "ts": float,
    "dur": float,
    "pid": int,
    "tid": int,
    "proc": str,
    "attrs": dict,
}

#: Wire-format version for trace contexts shipped across process/cluster
#: boundaries.  Receivers ignore contexts with an unknown version, so the
#: field can evolve without breaking old peers.
WIRE_VERSION = 1


def new_id() -> str:
    """A 16-hex-digit random id (os.urandom — never the sampling RNG)."""
    return os.urandom(8).hex()


class TraceContext:
    """A ``(trace_id, span_id)`` pair identifying a position in a trace.

    Instances cross process and cluster boundaries as small versioned
    dicts (:meth:`to_wire` / :meth:`from_wire`); remote recorders adopt
    the trace id and parent their spans under ``span_id`` so the pieces
    reassemble into one timeline.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext(trace_id={self.trace_id!r}, span_id={self.span_id!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def to_wire(self) -> Dict[str, object]:
        """A pickle/JSON-safe dict shipped on TASK frames and pool initargs."""
        return {"v": WIRE_VERSION, "trace": self.trace_id, "span": self.span_id}

    @staticmethod
    def from_wire(payload: object) -> Optional["TraceContext"]:
        """Decode a wire dict; ``None`` for anything malformed or from the future."""
        if not isinstance(payload, dict) or payload.get("v") != WIRE_VERSION:
            return None
        trace_id = payload.get("trace")
        span_id = payload.get("span")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return TraceContext(trace_id, span_id)


class _Span:
    """Context manager recording one ``ph:X``-style duration event."""

    __slots__ = ("_recorder", "name", "cat", "attrs", "span_id", "parent_id", "_ts", "_t0")

    def __init__(self, recorder: "TraceRecorder", name: str, cat: str, attrs: dict) -> None:
        self._recorder = recorder
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.span_id = new_id()
        self.parent_id: Optional[str] = None
        self._ts = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        recorder = self._recorder
        self.parent_id = recorder._current_span_id()
        recorder._push(self.span_id)
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        recorder = self._recorder
        recorder._pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        recorder._append(
            {
                "name": self.name,
                "cat": self.cat,
                "trace": recorder.trace_id,
                "span": self.span_id,
                "parent": self.parent_id,
                "ts": self._ts,
                "dur": duration,
                "pid": recorder.pid,
                "tid": threading.get_ident() & 0xFFFFFFFF,
                "proc": recorder.proc,
                "attrs": self.attrs,
            }
        )


class _NullSpan:
    """The shared no-op returned by ``obs.span`` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Bounded in-memory event buffer with span bookkeeping.

    Parameters
    ----------
    ring:
        Maximum events retained; older events are dropped FIFO.
    parent:
        Optional :class:`TraceContext` this recorder continues (used by
        worker processes): the trace id is adopted and spans with no
        local parent attach under ``parent.span_id``.
    proc:
        Human-readable label for the originating process ("coordinator",
        "cluster-worker", "pool-worker", ...), shown as the Chrome
        process name.
    """

    __slots__ = ("trace_id", "root_span_id", "proc", "pid", "_events", "_stack", "_dropped")

    def __init__(
        self,
        ring: int = 65536,
        parent: Optional[TraceContext] = None,
        proc: str = "main",
    ) -> None:
        if parent is not None:
            self.trace_id = parent.trace_id
            self.root_span_id = parent.span_id
        else:
            self.trace_id = new_id()
            self.root_span_id = new_id()
        self.proc = proc
        self.pid = os.getpid()
        self._events: deque = deque(maxlen=ring)
        self._stack = threading.local()
        self._dropped = 0

    # -- span stack ---------------------------------------------------

    def _push(self, span_id: str) -> None:
        stack = getattr(self._stack, "ids", None)
        if stack is None:
            stack = self._stack.ids = []
        stack.append(span_id)

    def _pop(self) -> None:
        stack = getattr(self._stack, "ids", None)
        if stack:
            stack.pop()

    def _current_span_id(self) -> str:
        stack = getattr(self._stack, "ids", None)
        if stack:
            return stack[-1]
        return self.root_span_id

    def current_context(self) -> TraceContext:
        """The context a child process/worker should continue under."""
        return TraceContext(self.trace_id, self._current_span_id())

    # -- recording ----------------------------------------------------

    def _append(self, event: dict) -> None:
        if len(self._events) == self._events.maxlen:
            self._dropped += 1
        self._events.append(event)

    def span(self, name: str, cat: str = "span", **attrs) -> _Span:
        """A context manager recording a duration event on exit."""
        return _Span(self, name, cat, attrs)

    def instant(self, name: str, cat: str = "event", **attrs) -> None:
        """Record a zero-duration point event (dispatch, evict, ...)."""
        self._append(
            {
                "name": name,
                "cat": cat,
                "trace": self.trace_id,
                "span": new_id(),
                "parent": self._current_span_id(),
                "ts": time.time(),
                "dur": 0.0,
                "pid": self.pid,
                "tid": threading.get_ident() & 0xFFFFFFFF,
                "proc": self.proc,
                "attrs": attrs,
            }
        )

    def absorb(self, events: Iterable[dict]) -> int:
        """Merge events recorded elsewhere (worker processes/machines).

        Non-dict entries are skipped defensively — remote peers may be
        older or newer.  Returns the number of events absorbed.
        """
        absorbed = 0
        for event in events:
            if isinstance(event, dict) and "name" in event:
                self._append(event)
                absorbed += 1
        return absorbed

    def events(self) -> List[dict]:
        """A list copy of the buffered events (oldest first)."""
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted because the ring buffer was full."""
        return self._dropped

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0

    # -- export -------------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per line; returns the event count."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)

    def chrome_trace(self) -> Dict[str, object]:
        """The Chrome ``trace_event`` view of the buffer."""
        return chrome_trace(self.events())

    def export_chrome(self, path: str) -> int:
        """Write a ``chrome://tracing`` / Perfetto JSON file."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace(events), handle, sort_keys=True)
        return len(events)


# -- module-level helpers (also used on already-exported event lists) ---


def validate_event(event: object) -> None:
    """Raise ``ValueError`` unless ``event`` matches :data:`EVENT_FIELDS`."""
    if not isinstance(event, dict):
        raise ValueError(f"trace event is not a dict: {type(event).__name__}")
    for field, types in EVENT_FIELDS.items():
        if field not in event:
            raise ValueError(f"trace event missing field {field!r}: {sorted(event)}")
        value = event[field]
        if field in ("ts", "dur") and isinstance(value, int):
            value = float(value)
        if not isinstance(value, types):
            raise ValueError(
                f"trace event field {field!r} has type {type(event[field]).__name__}"
            )
    if event["dur"] < 0:
        raise ValueError("trace event has negative duration")


def validate_events(events: Sequence[object]) -> int:
    """Validate a batch; returns the count so callers can assert non-empty."""
    for event in events:
        validate_event(event)
    return len(events)


def chrome_trace(events: Sequence[dict]) -> Dict[str, object]:
    """Convert event dicts to the Chrome ``trace_event`` JSON format."""
    trace_events: List[dict] = []
    seen_procs: Dict[int, str] = {}
    for event in events:
        pid = event["pid"]
        if pid not in seen_procs:
            seen_procs[pid] = event.get("proc", str(pid))
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{seen_procs[pid]} (pid {pid})"},
                }
            )
        record = {
            "name": event["name"],
            "cat": event.get("cat", "span"),
            "pid": pid,
            "tid": event.get("tid", 0),
            "ts": event["ts"] * 1e6,
            "args": dict(event.get("attrs", {})),
        }
        record["args"]["trace"] = event["trace"]
        record["args"]["span"] = event["span"]
        if event.get("parent"):
            record["args"]["parent"] = event["parent"]
        if event.get("dur", 0.0) > 0.0:
            record["ph"] = "X"
            record["dur"] = event["dur"] * 1e6
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def summarize(events: Sequence[dict]) -> Dict[str, object]:
    """Aggregate events per span name (the ``repro-trace`` CLI view)."""
    by_name: Dict[str, Dict[str, float]] = {}
    traces = set()
    pids = set()
    for event in events:
        traces.add(event.get("trace"))
        pids.add(event.get("pid"))
        row = by_name.setdefault(
            event["name"], {"count": 0, "total": 0.0, "max": 0.0}
        )
        row["count"] += 1
        duration = float(event.get("dur", 0.0))
        row["total"] += duration
        if duration > row["max"]:
            row["max"] = duration
    for row in by_name.values():
        row["mean"] = row["total"] / row["count"] if row["count"] else 0.0
    return {
        "events": len(events),
        "traces": sorted(t for t in traces if t),
        "pids": sorted(p for p in pids if p is not None),
        "spans": dict(sorted(by_name.items())),
    }
