"""Process-local metrics: counters, gauges, and histograms.

The registry is deliberately tiny.  The design constraint (ISSUE 7) is a
lock-free fast path with near-zero overhead: metric objects are plain
``__slots__`` holders mutated with single bytecode-level operations that
the GIL serialises, and the registry lookup is one dict ``get`` — the
creation lock is only taken on first registration of a name.  When the
observability layer is disabled (`repro.obs.active()` is ``None``) no
metric object exists at all, so instrumented call sites pay exactly one
module-attribute read and a ``None`` check.

Histograms use fixed power-of-two bucket boundaries over seconds-scale
values (the common case here is latencies: heartbeat RTT, chunk walltime)
so ``observe`` is an integer ``bisect`` with no allocation.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default histogram boundaries (seconds): 1 us .. ~65 s in powers of four.
DEFAULT_BUCKETS = tuple(1e-6 * 4**i for i in range(13))


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (queue depth, live workers, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """A fixed-boundary histogram with count/total/min/max summaries."""

    __slots__ = ("name", "boundaries", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.boundaries = tuple(boundaries)
        self.buckets = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.buckets[bisect_right(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, Union[int, float, List[int]]]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total": self.total,
            "mean": mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": list(self.buckets),
            "boundaries": list(self.boundaries),
        }


_Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name -> metric mapping with lock-free reads of existing metrics.

    ``counter``/``gauge``/``histogram`` return the existing instance when
    the name is already registered (one dict ``get``); the lock guards
    only first-time creation, so steady-state instrumentation never
    contends.
    """

    __slots__ = ("_metrics", "_lock")

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory) -> _Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory(name)
                self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        metric = self._get_or_create(name, Counter)
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a Counter")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get_or_create(name, Gauge)
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a Gauge")
        return metric

    def histogram(self, name: str, boundaries: Optional[Sequence[float]] = None) -> Histogram:
        if boundaries is None:
            metric = self._get_or_create(name, Histogram)
        else:
            metric = self._get_or_create(name, lambda n: Histogram(n, boundaries))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a Histogram")
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe ``{name: value}`` view of every registered metric."""
        return {name: metric.snapshot() for name, metric in sorted(self._metrics.items())}

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
