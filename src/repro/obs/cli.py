"""``repro-trace`` — summarise an exported trace file.

Accepts either exporter format (JSON-lines event dicts from
``obs.export_jsonl`` or a Chrome ``trace_event`` JSON object from
``obs.export_chrome``) and prints a per-span table plus trace/process
counts.  ``--validate`` additionally checks every event against the
schema in :data:`repro.obs.trace.EVENT_FIELDS` and exits non-zero on
the first violation — the CI trace smoke runs exactly this.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.trace import summarize, validate_events

__all__ = ["main", "load_events"]


def _events_from_chrome(document: dict) -> List[dict]:
    """Reconstruct event dicts from a Chrome trace_event document."""
    events: List[dict] = []
    for record in document.get("traceEvents", []):
        if record.get("ph") == "M":
            continue
        args = dict(record.get("args", {}))
        trace = args.pop("trace", "")
        span = args.pop("span", "")
        parent = args.pop("parent", None)
        events.append(
            {
                "name": record.get("name", ""),
                "cat": record.get("cat", "span"),
                "trace": trace,
                "span": span,
                "parent": parent,
                "ts": float(record.get("ts", 0.0)) / 1e6,
                "dur": float(record.get("dur", 0.0)) / 1e6,
                "pid": int(record.get("pid", 0)),
                "tid": int(record.get("tid", 0)),
                "proc": str(args.pop("proc", record.get("pid", ""))),
                "attrs": args,
            }
        )
    return events


def load_events(path: str) -> List[dict]:
    """Load events from a JSONL or Chrome-format trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None
        if isinstance(document, dict) and "traceEvents" in document:
            return _events_from_chrome(document)
    events = []
    for line_number, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise SystemExit(f"{path}:{line_number}: not valid JSON: {error}")
    return events


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:8.3f}s "
    return f"{value * 1e3:8.3f}ms"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarise a repro.obs trace file (JSONL or Chrome trace_event JSON).",
    )
    parser.add_argument("trace", help="path to the exported trace file")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="validate every event against the repro.obs event schema",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the summary as JSON instead of a table",
    )
    options = parser.parse_args(argv)

    trace_events = load_events(options.trace)
    if options.validate:
        try:
            validate_events(trace_events)
        except ValueError as error:
            print(f"repro-trace: schema violation: {error}", file=sys.stderr)
            return 1

    summary = summarize(trace_events)
    if options.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    traces = summary["traces"]
    print(
        f"{summary['events']} events · {len(traces)} trace(s) · "
        f"{len(summary['pids'])} process(es)"
    )
    for trace_id in traces:
        print(f"  trace {trace_id}")
    spans = summary["spans"]
    if spans:
        width = max(len(name) for name in spans)
        print(f"{'span':<{width}}  {'count':>7}  {'total':>10}  {'mean':>10}  {'max':>10}")
        for name, row in spans.items():
            print(
                f"{name:<{width}}  {row['count']:>7}  "
                f"{_format_seconds(row['total'])}  {_format_seconds(row['mean'])}  "
                f"{_format_seconds(row['max'])}"
            )
    if options.validate:
        print("schema OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
