"""``python -m repro.obs`` — alias for the ``repro-trace`` CLI."""

from repro.obs.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
