"""Empirical strong-spatial-mixing measurements.

Definition 5.1: a class of distributions has SSM with rate ``delta_n(t)``
when for every node ``v`` and every pair of feasible boundary configurations
``sigma, tau`` that differ only on a set ``D`` at distance at least ``t``
from ``v``, the conditional marginals at ``v`` satisfy
``d_TV(mu^sigma_v, mu^tau_v) <= delta_n(t)``.

:func:`boundary_influence` measures the inner maximum for one node and one
boundary set by enumerating (or sampling) feasible boundary configurations
and comparing the exact conditional marginals; :func:`ssm_profile` sweeps the
distance and returns the decay curve that the experiments fit.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.distances import multiplicative_error, total_variation
from repro.gibbs.distribution import GibbsDistribution
from repro.gibbs.pinning import Pinning
from repro.graphs.structure import sphere

Node = Hashable
Value = Hashable


def _feasible_boundary_configurations(
    distribution: GibbsDistribution,
    boundary: Sequence[Node],
    base_pinning: Pinning,
    max_configs: Optional[int],
    seed: int,
    enumeration_limit: int = 1024,
    engine: Optional[str] = None,
) -> List[Dict[Node, Value]]:
    """Feasible configurations on the boundary set, possibly subsampled.

    Small boundaries are enumerated exhaustively; for larger boundaries
    (where ``q^{|boundary|}`` exceeds ``enumeration_limit``) random candidate
    configurations are drawn instead, plus the two constant configurations,
    which for hard-constrained models are the natural extremal boundaries.
    """
    alphabet = distribution.alphabet
    total = len(alphabet) ** len(boundary)
    rng = np.random.default_rng(seed)
    if total <= enumeration_limit:
        candidates = [
            dict(zip(boundary, values))
            for values in itertools.product(alphabet, repeat=len(boundary))
        ]
    else:
        budget = 8 * max_configs if max_configs is not None else 256
        candidates = [{node: value for node in boundary} for value in alphabet]
        for _ in range(budget):
            candidates.append(
                {node: alphabet[int(rng.integers(0, len(alphabet)))] for node in boundary}
            )
    feasible: List[Dict[Node, Value]] = []
    seen = set()
    for assignment in candidates:
        key = tuple(sorted(assignment.items(), key=lambda kv: repr(kv[0])))
        if key in seen:
            continue
        seen.add(key)
        try:
            combined = base_pinning.union(assignment)
        except ValueError:
            continue
        if distribution.is_feasible(combined, engine=engine):
            feasible.append(assignment)
    if max_configs is not None and len(feasible) > max_configs:
        indices = rng.choice(len(feasible), size=max_configs, replace=False)
        feasible = [feasible[int(i)] for i in indices]
    return feasible


def boundary_influence(
    distribution: GibbsDistribution,
    center: Node,
    boundary: Iterable[Node],
    base_pinning: Optional[Dict[Node, Value]] = None,
    max_configs: Optional[int] = 32,
    seed: int = 0,
    engine: Optional[str] = None,
) -> Tuple[float, float]:
    """Worst-case influence of the boundary on the centre's marginal.

    Returns ``(tv, mult)``: the maximum total-variation distance and the
    maximum multiplicative error between the centre's conditional marginals
    over all pairs of feasible boundary configurations.  This is the inner
    maximum of Definition 5.1 (and of its multiplicative-error variant from
    Corollary 5.2).  All boundary configurations share one pinned domain, so
    the compiled backend (default ``engine``) reuses a single cached
    contraction schedule across the whole enumeration.
    """
    boundary_nodes = sorted(set(boundary), key=repr)
    if center in boundary_nodes:
        raise ValueError("the centre cannot be part of the boundary")
    pinning = Pinning(base_pinning or {})
    configurations = _feasible_boundary_configurations(
        distribution, boundary_nodes, pinning, max_configs, seed, engine=engine
    )
    if len(configurations) < 2:
        return 0.0, 0.0
    marginals = [
        distribution.marginal(center, pinning.union(assignment), engine=engine)
        for assignment in configurations
    ]
    worst_tv = 0.0
    worst_mult = 0.0
    for i, first in enumerate(marginals):
        for second in marginals[i + 1:]:
            worst_tv = max(worst_tv, total_variation(first, second))
            worst_mult = max(worst_mult, multiplicative_error(first, second))
    return worst_tv, worst_mult


def ssm_profile(
    distribution: GibbsDistribution,
    center: Node,
    radii: Sequence[int],
    base_pinning: Optional[Dict[Node, Value]] = None,
    max_configs: Optional[int] = 32,
    seed: int = 0,
    engine: Optional[str] = None,
) -> List[Dict[str, float]]:
    """The decay-of-correlation curve at a node.

    For each radius ``t`` the boundary is the sphere at distance exactly
    ``t`` from the centre; the returned rows contain the worst-case
    total-variation and multiplicative influences, ready for
    :func:`repro.spatialmixing.decay.estimate_decay_rate`.
    """
    rows: List[Dict[str, float]] = []
    for radius in radii:
        boundary = sphere(distribution.graph, center, radius)
        if not boundary:
            continue
        tv, mult = boundary_influence(
            distribution,
            center,
            boundary,
            base_pinning=base_pinning,
            max_configs=max_configs,
            seed=seed + radius,
            engine=engine,
        )
        rows.append({"radius": float(radius), "tv": tv, "multiplicative": mult})
    return rows
