"""The computational phase transition for distributed sampling.

The paper's headline application: for the hardcore model with fugacity below
the uniqueness threshold ``lambda_c(Delta)`` exact sampling takes
``O(log^3 n)`` rounds, whereas above the threshold the long-range correlation
established in Feng--Sun--Yin (PODC 2017) forces ``Omega(diam)`` rounds.
The two functions here measure both sides of that transition on concrete
instances:

* :func:`locality_required` -- how large a ball a node must inspect before a
  ball-local (Theorem 5.1-style) inference achieves a target accuracy; in the
  uniqueness regime this stays logarithmic, past the threshold it grows with
  the diameter;
* :func:`long_range_correlation` -- the influence of a boundary condition at
  distance ``d`` on a far-away node's marginal, the quantity whose failure to
  decay is the essence of the lower bound.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from repro.analysis.distances import total_variation
from repro.gibbs.instance import SamplingInstance
from repro.graphs.structure import sphere
from repro.inference.ssm_inference import padded_ball_marginal
from repro.spatialmixing.ssm import boundary_influence

Node = Hashable
Value = Hashable


def locality_required(
    instance: SamplingInstance,
    node: Node,
    error: float,
    max_radius: Optional[int] = None,
    engine: Optional[str] = None,
    runtime=None,
) -> int:
    """Smallest radius at which ball-local inference reaches the target accuracy.

    Runs the Theorem 5.1 ball computation at increasing radii and compares
    against the exact marginal; returns the first radius whose
    total-variation error is at most ``error``.  If no radius up to
    ``max_radius`` (default: the number of nodes) suffices, ``max_radius + 1``
    is returned, signalling "essentially the whole graph".

    Parameters
    ----------
    instance, node, error, max_radius, engine
        As described above; ``engine`` selects the evaluation backend.
    runtime : None, str or Runtime, optional
        Execution backend (see :mod:`repro.runtime`).  A process or cluster
        runtime runs the sweep *overlapped*: the per-radius ball
        computations are submitted to the workers (OS processes or TCP
        cluster workers) up front and consumed as they complete, so the
        radius-``r`` accuracy measurement happens while the radius-``r + 1``
        balls are still compiling.  On the first radius within tolerance
        the still-pending tasks are cancelled.  The returned radius is
        identical to the serial sweep (worker marginals are bit-identical
        to :func:`padded_ball_marginal`).
    """
    if error <= 0:
        raise ValueError("error must be positive")
    truth = instance.distribution.marginal(node, instance.pinning, engine=engine)
    limit = instance.size if max_radius is None else max_radius
    from repro.engine import resolve_engine
    from repro.runtime import resolve_runtime

    resolved = resolve_runtime(runtime)
    if (
        (resolved.is_process or resolved.is_cluster)
        and limit > 0
        and resolve_engine(engine) == "compiled"
    ):
        return _locality_required_overlapped(
            instance, node, error, truth, limit, resolved
        )
    for radius in range(0, limit + 1):
        estimate = padded_ball_marginal(instance, node, radius, engine=engine)
        if total_variation(estimate, truth) <= error:
            return radius
    return limit + 1


def _locality_required_overlapped(
    instance: SamplingInstance,
    node: Node,
    error: float,
    truth: Dict[Value, float],
    limit: int,
    runtime,
) -> int:
    """The streaming radius sweep behind ``locality_required(runtime=...)``.

    Radii are submitted speculatively in *waves* of ``2 * n_workers`` (one
    task per chunk, so every worker immediately owns a radius) and results
    arrive in completion order; the in-order walk below measures radius
    ``r`` the moment its marginal lands, while larger radii of the wave
    keep compiling in the workers.  Waving bounds the speculation: without
    it, an unbounded sweep (``max_radius=None``) would enqueue one
    near-whole-graph elimination per radius up to ``instance.size``, and
    eliminations a few radii past the answer can dwarf the answer's own
    cost.  Closing the stream on success cancels the wave's pending tasks.

    The tasks go through :meth:`Runtime.stream_ball_marginal_tasks`, so the
    same sweep runs on the process pool or on TCP cluster workers.
    """
    wave = 2 * max(1, runtime.n_workers)
    estimates: Dict[int, Dict[Value, float]] = {}
    radius = 0
    for start in range(0, limit + 1, wave):
        tasks = [
            (node, wave_radius)
            for wave_radius in range(start, min(start + wave, limit + 1))
        ]
        stream = runtime.stream_ball_marginal_tasks(instance, tasks, chunk_size=1)
        try:
            for (_, completed_radius), marginal in stream:
                estimates[completed_radius] = marginal
                while radius in estimates:
                    if total_variation(estimates.pop(radius), truth) <= error:
                        return radius
                    radius += 1
        finally:
            stream.close()
    return limit + 1


def long_range_correlation(
    instance: SamplingInstance,
    node: Node,
    distance: int,
    max_configs: Optional[int] = 32,
    seed: int = 0,
    engine: Optional[str] = None,
) -> float:
    """Influence (in total variation) of the sphere at the given distance on ``node``.

    In the uniqueness regime this decays exponentially with the distance; in
    the non-uniqueness regime it stays bounded away from zero even at
    distance ``Theta(diam)``, which is the long-range correlation behind the
    ``Omega(diam)`` sampling lower bound.
    """
    boundary = sphere(instance.graph, node, distance)
    if not boundary:
        return 0.0
    tv, _ = boundary_influence(
        instance.distribution,
        node,
        boundary,
        base_pinning=instance.pinning.as_dict(),
        max_configs=max_configs,
        seed=seed,
        engine=engine,
    )
    return tv


def locality_profile(
    instances: Sequence[SamplingInstance],
    node_picker,
    error: float,
    max_radius: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Locality required versus instance size, for a family of instances.

    ``node_picker(instance)`` selects the probe node (typically a most
    central one).  The returned rows feed the phase-transition benchmark.
    """
    rows: List[Dict[str, float]] = []
    for instance in instances:
        node = node_picker(instance)
        radius = locality_required(instance, node, error, max_radius=max_radius)
        rows.append(
            {
                "size": float(instance.size),
                "radius": float(radius),
            }
        )
    return rows
