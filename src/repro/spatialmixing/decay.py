"""Fitting exponential decay rates to spatial-mixing profiles."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.fitting import fit_exponential_decay


def estimate_decay_rate(
    profile: Sequence[Dict[str, float]], key: str = "tv", floor: float = 1e-12
) -> float:
    """The exponential decay rate ``alpha`` fitted to an SSM profile.

    ``profile`` is the output of :func:`repro.spatialmixing.ssm.ssm_profile`;
    ``key`` selects the total-variation (``"tv"``) or multiplicative
    (``"multiplicative"``) column.  Rows whose influence is exactly zero (the
    decay outran the numerical resolution) are kept, clamped to ``floor``, so
    they still pull the fitted rate down.
    """
    usable = [row for row in profile if key in row]
    if len(usable) < 2:
        raise ValueError("need at least two profile rows to fit a decay rate")
    distances: List[float] = [row["radius"] for row in usable]
    errors: List[float] = [max(row[key], 0.0) for row in usable]
    alpha, _ = fit_exponential_decay(distances, errors, floor=floor)
    return min(max(alpha, 0.0), 1.5)
