"""Measuring decay of correlation (strong spatial mixing) empirically.

Theorem 5.1 ties the local complexity of inference and sampling to strong
spatial mixing (Definition 5.1).  This package measures the relevant
quantities on concrete instances:

* :func:`~repro.spatialmixing.ssm.ssm_profile` -- worst-case influence of a
  boundary disagreement on a node's marginal, as a function of the distance
  (in total-variation and in multiplicative error, cf. Corollary 5.2);
* :func:`~repro.spatialmixing.decay.estimate_decay_rate` -- exponential decay
  rate fitted to such a profile;
* :func:`~repro.spatialmixing.phase_transition.locality_required` -- the
  radius a ball-local inference algorithm needs for a target accuracy, the
  quantity that jumps from ``O(log n)`` to ``Omega(diam)`` across the
  uniqueness threshold (the computational phase transition).
"""

from repro.spatialmixing.ssm import boundary_influence, ssm_profile
from repro.spatialmixing.decay import estimate_decay_rate
from repro.spatialmixing.phase_transition import (
    locality_required,
    long_range_correlation,
)

__all__ = [
    "boundary_influence",
    "ssm_profile",
    "estimate_decay_rate",
    "locality_required",
    "long_range_correlation",
]
