"""Batched chain execution: many independent chains as one code matrix.

A :class:`ChainBatch` holds ``n_chains`` independent Glauber / LubyGlauber
chains of the same instance as a ``(chains, n)`` integer code matrix and
advances *all* of them per step with a handful of vectorised NumPy gathers
into the precompiled per-node factor tables -- one batched conditional
computation instead of a Python loop per chain.  This amortises the
interpreter overhead of the serial chain across the batch, which is where
E6/E7/E12-style experiments spend their time.

Determinism contract
--------------------

Every chain owns its own :class:`numpy.random.Generator`.  The per-chain
draw pattern reproduces the serial samplers of
:mod:`repro.sampling.glauber` exactly:

* Glauber draws ``integers(0, free_count, size=chunk)`` then
  ``random(chunk)`` per RNG chunk, with the serial chunk sizes;
* LubyGlauber draws ``random(n_free)`` priorities then
  ``random(n_selected)`` update points per round.  These are served from a
  per-chain buffer, which is safe because NumPy generators are
  *prefix-consistent*: one large ``random(k)`` call yields the same stream
  as any sequence of smaller calls.

All floating-point reductions (factor products, cumulative weights, totals)
run in the same order as the serial inner loop, so chain ``c`` of a batch is
**bit-identical** to the serial chain run with ``seed=seeds[c]`` for the same
number of steps/rounds (matched against a single ``glauber_steps`` /
``luby_rounds`` call; splitting one serial run across several
``glauber_steps`` calls changes the chunk boundaries and hence the stream).
The default seeding convention spawns per-chain ``SeedSequence`` streams from
one root seed (:func:`chain_seed_sequences`), the standard way to get
statistically independent chains from a single seed.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Union

import numpy as np

from repro.engine import resolve_engine
from repro.gibbs.instance import SamplingInstance
from repro.sampling.glauber import _RNG_CHUNK, greedy_feasible_configuration

Node = Hashable
Value = Hashable

Seed = Union[int, np.random.SeedSequence]


def chain_seed_sequences(seed: Seed, n_chains: int) -> List[np.random.SeedSequence]:
    """Per-chain seed sequences spawned from one root seed.

    Chain ``c`` of a batch seeded this way is bit-identical to the serial
    chain run with ``seed=chain_seed_sequences(seed, n)[c]`` (the serial
    samplers accept ``SeedSequence`` seeds directly).

    Parameters
    ----------
    seed : int or numpy.random.SeedSequence
        Root seed for the batch.
    n_chains : int
        Number of chains to seed.

    Returns
    -------
    list of numpy.random.SeedSequence
        ``n_chains`` statistically independent spawned streams.
    """
    if n_chains < 1:
        raise ValueError("n_chains must be at least 1")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return list(root.spawn(n_chains))


class _Stream:
    """Buffered uniform draws from one chain's generator.

    ``take(k)`` returns the next ``k`` doubles of the stream.  Buffering
    changes the call pattern but not the values (prefix-consistency of
    ``Generator.random``), so the buffered chain matches the serial chain's
    unbuffered draws bit for bit.
    """

    __slots__ = ("rng", "_buffer", "_cursor")

    _BLOCK = 4096

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self._buffer = np.empty(0)
        self._cursor = 0

    def take(self, count: int) -> np.ndarray:
        end = self._cursor + count
        if end > len(self._buffer):
            tail = self._buffer[self._cursor :]
            fresh = self.rng.random(max(self._BLOCK, count - len(tail)))
            self._buffer = np.concatenate([tail, fresh])
            self._cursor = 0
            end = count
        out = self._buffer[self._cursor : end]
        self._cursor = end
        return out


class _BatchedTables:
    """Padded per-node gather tables for whole-batch conditional updates.

    Flattens the per-node factor entries of
    :class:`~repro.engine.conditionals.CompiledConditionals` into rectangular
    arrays: entry ``j`` of node ``v`` contributes the weight table at
    ``pool[base[v, j] + a * stride0[v, j]]`` for alphabet code ``a``, with the
    offset determined by the neighbour codes at ``other[v, j, :]`` (strides
    ``ostride[v, j, :]``).  Missing entries point at an all-ones table (pool
    offset 0, stride 1, zero neighbour strides), so a single
    ``multiply.reduce`` over the entry axis reproduces the serial per-factor
    product exactly -- the padding multiplies by 1.0 *after* the real
    entries, which leaves the float result bit-identical.
    """

    __slots__ = ("q", "pool", "base", "stride0", "other", "ostride", "factorless", "aq")

    def __init__(self, compiled) -> None:
        tables = compiled.conditionals.tables
        q = compiled.q
        self.q = q
        n = len(compiled.nodes)
        max_entries = max((len(entries) for entries in tables), default=0) or 1
        max_others = (
            max(
                (len(entry[2]) for entries in tables for entry in entries),
                default=0,
            )
            or 1
        )
        pool: List[float] = [1.0] * q  # the all-ones padding table at offset 0
        base = np.zeros((n, max_entries), dtype=np.int64)
        stride0 = np.ones((n, max_entries), dtype=np.int64)
        other = np.zeros((n, max_entries, max_others), dtype=np.int64)
        ostride = np.zeros((n, max_entries, max_others), dtype=np.int64)
        for variable, entries in enumerate(tables):
            for j, (flat, entry_stride0, others, strides) in enumerate(entries):
                base[variable, j] = len(pool)
                pool.extend(flat)
                stride0[variable, j] = entry_stride0
                for k, (other_node, stride) in enumerate(zip(others, strides)):
                    other[variable, j, k] = other_node
                    ostride[variable, j, k] = stride
        self.pool = np.asarray(pool, dtype=np.float64)
        self.base = base
        self.stride0 = stride0
        self.other = other
        self.ostride = ostride
        self.factorless = np.array([len(entries) == 0 for entries in tables], dtype=bool)
        self.aq = np.arange(q)

    def weights(
        self, codes: np.ndarray, rows: np.ndarray, variables: np.ndarray
    ) -> np.ndarray:
        """Unnormalised conditional weights, one length-``q`` row per pair.

        ``rows[i]`` selects the chain (a row of ``codes``) and
        ``variables[i]`` the node being resampled; the result row ``i`` equals
        the serial ``weights_by_codes(variables[i], codes[rows[i]])``.
        """
        base = self.base[variables]  # (M, F)
        stride0 = self.stride0[variables]  # (M, F)
        other = self.other[variables]  # (M, F, K)
        ostride = self.ostride[variables]  # (M, F, K)
        neighbour_codes = codes[rows[:, None, None], other]
        offsets = base + (neighbour_codes * ostride).sum(axis=2)
        indices = offsets[:, :, None] + self.aq * stride0[:, :, None]
        return np.multiply.reduce(self.pool[indices], axis=1)


class ChainBatch:
    """A batch of independent chains over one instance, as a code matrix.

    Parameters
    ----------
    instance:
        The sampling instance all chains target.
    n_chains:
        Number of chains (ignored when ``seeds`` is given explicitly).
    seed, seeds:
        Either a root ``seed`` from which per-chain streams are spawned
        (:func:`chain_seed_sequences`), or an explicit ``seeds`` sequence --
        one entry per chain, each anything ``numpy.random.default_rng``
        accepts.  Explicit seeds make chain ``c`` bit-identical to the serial
        sampler called with ``seed=seeds[c]``.
    initial:
        Optional shared initial configuration (default: the deterministic
        greedy feasible configuration, exactly like the serial samplers).
    engine:
        Must resolve to the compiled engine; the batched runner *is* a
        compiled-engine execution strategy.
    """

    def __init__(
        self,
        instance: SamplingInstance,
        n_chains: Optional[int] = None,
        seed: Seed = 0,
        seeds: Optional[Sequence] = None,
        initial: Optional[Dict[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> None:
        if resolve_engine(engine) != "compiled":
            raise ValueError(
                "the batched chain runner requires the compiled engine; "
                'pass engine=None or engine="compiled"'
            )
        if seeds is None:
            if n_chains is None:
                raise ValueError("pass n_chains (with a root seed) or explicit seeds")
            seeds = chain_seed_sequences(seed, n_chains)
        else:
            seeds = list(seeds)
            if n_chains is not None and n_chains != len(seeds):
                raise ValueError("n_chains disagrees with the number of explicit seeds")
        if not seeds:
            raise ValueError("a chain batch needs at least one chain")
        self.instance = instance
        self.seeds = seeds
        self.n_chains = len(seeds)
        compiled = instance.distribution.compiled_engine()
        self.compiled = compiled
        self.tables = _BatchedTables(compiled)
        configuration = (
            dict(initial)
            if initial is not None
            else greedy_feasible_configuration(instance, engine=engine)
        )
        start = np.array(
            [compiled.symbol_index[configuration[node]] for node in compiled.nodes],
            dtype=np.int64,
        )
        #: The ``(chains, n)`` state matrix of alphabet codes.
        self.codes = np.tile(start, (self.n_chains, 1))
        self.rngs = [np.random.default_rng(chain_seed) for chain_seed in seeds]
        self._streams: Optional[List[_Stream]] = None
        self._kind: Optional[str] = None
        free_nodes = instance.free_nodes
        self._free_index = np.array(
            [compiled.node_index[node] for node in free_nodes], dtype=np.int64
        )
        self._chain_ids = np.arange(self.n_chains)
        self._any_factorless = bool(
            len(self._free_index) and np.any(self.tables.factorless[self._free_index])
        )
        # LubyGlauber selection structure: for each free node, the positions
        # (into the priority array) of its free neighbours, padded with a
        # sentinel column that reads a -inf priority (so isolated nodes are
        # always selected, matching the serial all-of-empty convention).
        free_set = set(free_nodes)
        free_position = {
            variable: position for position, variable in enumerate(self._free_index.tolist())
        }
        graph = instance.graph
        neighbour_positions = [
            [
                free_position[compiled.node_index[neighbour]]
                for neighbour in graph.neighbors(node)
                if neighbour in free_set
            ]
            for node in free_nodes
        ]
        width = max((len(positions) for positions in neighbour_positions), default=0) or 1
        sentinel = len(free_nodes)
        self._neighbour_index = np.full((len(free_nodes), width), sentinel, dtype=np.int64)
        for position, neighbours in enumerate(neighbour_positions):
            self._neighbour_index[position, : len(neighbours)] = neighbours

    # ------------------------------------------------------------------
    def _claim_kind(self, kind: str) -> None:
        """One batch runs one chain kind.

        Glauber and LubyGlauber consume the per-chain streams with different
        draw patterns; interleaving them on the same generators would yield
        chains that correspond to no serial execution, silently voiding the
        bit-identity contract.  Fail loudly instead.
        """
        if self._kind is None:
            self._kind = kind
        elif self._kind != kind:
            raise RuntimeError(
                f"this ChainBatch already ran {self._kind} updates; create a "
                f"fresh batch for {kind} updates (the per-chain RNG streams "
                "are not interchangeable between chain kinds)"
            )

    def glauber_steps(self, steps: int) -> "ChainBatch":
        """Advance every chain by ``steps`` single-site Glauber updates.

        Parameters
        ----------
        steps : int
            Number of single-site updates per chain.

        Returns
        -------
        ChainBatch
            ``self``, for chaining.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        self._claim_kind("glauber")
        free_count = len(self._free_index)
        if free_count == 0 or steps == 0:
            return self
        chains = self.n_chains
        tables = self.tables
        q = tables.q
        chain_ids = self._chain_ids
        codes = self.codes
        factorless = tables.factorless
        remaining = steps
        while remaining > 0:
            chunk = min(remaining, _RNG_CHUNK)
            remaining -= chunk
            choices = np.empty((chains, chunk), dtype=np.int64)
            points = np.empty((chains, chunk))
            for chain, rng in enumerate(self.rngs):
                choices[chain] = rng.integers(0, free_count, size=chunk)
                points[chain] = rng.random(chunk)
            variables = self._free_index[choices]
            for step in range(chunk):
                chosen = variables[:, step]
                point = points[:, step]
                weights = tables.weights(codes, chain_ids, chosen)
                cumulative = np.cumsum(weights, axis=1)
                totals = cumulative[:, -1]
                if not np.all(totals > 0.0):
                    # Padded (factorless) rows total exactly q, so a
                    # non-positive total is a genuinely stuck node.
                    self._raise_stuck(chosen, totals)
                new_codes = np.minimum(
                    np.sum(cumulative < (point * totals)[:, None], axis=1), q - 1
                )
                if self._any_factorless:
                    # Replicate the serial fast path for factorless nodes
                    # (uniform resample via truncation, not cumulative search).
                    uniform = np.minimum((point * q).astype(np.int64), q - 1)
                    new_codes = np.where(factorless[chosen], uniform, new_codes)
                codes[chain_ids, chosen] = new_codes
        return self

    def luby_rounds(
        self,
        rounds: int,
        statistic: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        """Advance every chain by ``rounds`` LubyGlauber rounds.

        Parameters
        ----------
        rounds : int
            Number of LubyGlauber rounds per chain.
        statistic : callable, optional
            Applied to the ``(chains, n)`` code matrix after every round.

        Returns
        -------
        ChainBatch or numpy.ndarray
            Without ``statistic``, the batch itself (for chaining); with it,
            the per-chain traces as a ``(chains, rounds)`` array (the input
            of the convergence diagnostics in
            :mod:`repro.analysis.convergence`).
        """
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self._claim_kind("luby-glauber")
        trace: Optional[List[np.ndarray]] = [] if statistic is not None else None
        streams = self._luby_streams()
        for _ in range(rounds):
            if len(self._free_index):
                self._luby_round(streams)
            if trace is not None:
                trace.append(np.asarray(statistic(self.codes), dtype=float))
        if trace is not None:
            if not trace:
                return np.empty((self.n_chains, 0))
            return np.stack(trace, axis=1)
        return self

    # ------------------------------------------------------------------
    def _luby_streams(self) -> List[_Stream]:
        if self._streams is None:
            self._streams = [_Stream(rng) for rng in self.rngs]
        return self._streams

    def _luby_round(self, streams: List[_Stream]) -> None:
        chains = self.n_chains
        free_count = len(self._free_index)
        priorities = np.empty((chains, free_count))
        for chain, stream in enumerate(streams):
            priorities[chain] = stream.take(free_count)
        extended = np.concatenate(
            [priorities, np.full((chains, 1), -np.inf)], axis=1
        )
        selected = priorities > extended[:, self._neighbour_index].max(axis=2)
        counts = selected.sum(axis=1)
        # Every chain consumes exactly its selection count from its stream,
        # matching the serial rng.random(len(selected)) draw.
        points = np.concatenate(
            [streams[chain].take(int(counts[chain])) for chain in range(chains)]
        )
        rows, positions = np.nonzero(selected)
        if len(rows) == 0:
            return
        variables = self._free_index[positions]
        # All conditionals read the pre-round snapshot; the selected nodes
        # form an independent set per chain, so the simultaneous updates
        # below cannot interact.
        weights = self.tables.weights(self.codes, rows, variables)
        cumulative = np.cumsum(weights, axis=1)
        totals = cumulative[:, -1]
        if not np.all(totals > 0.0):
            self._raise_stuck(variables, totals)
        new_codes = np.minimum(
            np.sum(cumulative < (points * totals)[:, None], axis=1),
            self.tables.q - 1,
        )
        self.codes[rows, variables] = new_codes

    def _raise_stuck(self, variables: np.ndarray, totals: np.ndarray) -> None:
        stuck = int(np.flatnonzero(totals <= 0.0)[0])
        node = self.compiled.nodes[int(variables[stuck])]
        raise ValueError(
            f"node {node!r} has no feasible value given its neighbourhood; "
            "the single-site dynamics is not ergodic here"
        )

    # ------------------------------------------------------------------
    def configurations(self) -> List[Dict[Node, Value]]:
        """The current state of every chain, decoded to configurations.

        Returns
        -------
        list of dict
            One ``{node: value}`` configuration per chain, in chain order.
        """
        alphabet = self.compiled.alphabet
        nodes = self.compiled.nodes
        return [
            {node: alphabet[code] for node, code in zip(nodes, row)}
            for row in self.codes.tolist()
        ]


def batched_glauber_sample(
    instance: SamplingInstance,
    steps: int,
    n_chains: Optional[int] = None,
    seed: Seed = 0,
    seeds: Optional[Sequence] = None,
    initial: Optional[Dict[Node, Value]] = None,
    engine: Optional[str] = None,
) -> List[Dict[Node, Value]]:
    """Run a batch of Glauber chains and return the per-chain final states.

    Entry ``c`` is bit-identical to
    ``glauber_sample(instance, steps, seed=seeds[c], initial=initial)``.

    Parameters
    ----------
    instance, steps, n_chains, seed, seeds, initial, engine
        As for :class:`ChainBatch`; ``steps`` is the per-chain update count.

    Returns
    -------
    list of dict
        Final configurations, one per chain.
    """
    batch = ChainBatch(
        instance, n_chains=n_chains, seed=seed, seeds=seeds, initial=initial, engine=engine
    )
    batch.glauber_steps(steps)
    return batch.configurations()


def batched_luby_glauber_sample(
    instance: SamplingInstance,
    rounds: int,
    n_chains: Optional[int] = None,
    seed: Seed = 0,
    seeds: Optional[Sequence] = None,
    initial: Optional[Dict[Node, Value]] = None,
    engine: Optional[str] = None,
) -> List[Dict[Node, Value]]:
    """Run a batch of LubyGlauber chains and return the per-chain final states.

    Entry ``c`` is bit-identical to
    ``luby_glauber_sample(instance, rounds, seed=seeds[c], initial=initial)``.

    Parameters
    ----------
    instance, rounds, n_chains, seed, seeds, initial, engine
        As for :class:`ChainBatch`; ``rounds`` is the per-chain round count.

    Returns
    -------
    list of dict
        Final configurations, one per chain.
    """
    batch = ChainBatch(
        instance, n_chains=n_chains, seed=seed, seeds=seeds, initial=initial, engine=engine
    )
    batch.luby_rounds(rounds)
    return batch.configurations()
