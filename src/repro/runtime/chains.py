"""Batched chain execution: many independent chains as one code matrix.

A :class:`ChainBatch` holds ``n_chains`` independent chains of the same
instance as a ``(chains, n)`` integer code matrix and advances *all* of
them per step with a handful of vectorised NumPy gathers into the
precompiled per-node factor tables -- one batched conditional computation
instead of a Python loop per chain.  This amortises the interpreter
overhead of the serial chain across the batch, which is where
E6/E7/E12-style experiments spend their time.

The *dynamics* advanced by a batch is a :class:`~repro.sampling.kernels.ChainKernel`
(Glauber, LubyGlauber, JVV rejection, sequential scan, or any registered
kernel): the batch owns the shared execution state (code matrix, per-chain
generators and buffered streams, padded gather tables, kernel scratch
space) and :meth:`ChainBatch.advance` hands it to the kernel's
``batched_advance``.  The historical :meth:`ChainBatch.glauber_steps` /
:meth:`ChainBatch.luby_rounds` methods are thin wrappers over the
corresponding kernels.

Determinism contract
--------------------

Every chain owns its own :class:`numpy.random.Generator`.  The per-chain
draw pattern reproduces the serial samplers exactly:

* Glauber draws ``integers(0, free_count, size=chunk)`` then
  ``random(chunk)`` per RNG chunk, with the serial chunk sizes;
* LubyGlauber draws ``random(n_free)`` priorities then
  ``random(n_selected)`` update points per round.  These are served from a
  per-chain buffer, which is safe because NumPy generators are
  *prefix-consistent*: one large ``random(k)`` call yields the same stream
  as any sequence of smaller calls;
* the scan kernels (JVV, sequential) draw ``random(chunk)`` proposal
  points (then ``random(chunk)`` acceptance points for gated kernels) per
  chunk.

All floating-point reductions (factor products, cumulative weights, totals)
run in the same order as the serial inner loop, so chain ``c`` of a batch is
**bit-identical** to the serial chain run with ``seed=seeds[c]`` for the same
number of steps/rounds (matched against a single ``advance`` call; splitting
one serial run across several calls changes the chunk boundaries and hence
the stream).  The default seeding convention spawns per-chain
``SeedSequence`` streams from one root seed (:func:`chain_seed_sequences`),
the standard way to get statistically independent chains from a single seed.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.engine import resolve_engine
from repro.gibbs.instance import SamplingInstance
from repro.sampling.glauber import greedy_feasible_configuration
from repro.sampling.kernels import ChainKernel, resolve_kernel, stuck_node_error

Node = Hashable
Value = Hashable

Seed = Union[int, np.random.SeedSequence]

#: Histogram boundaries for chain throughput (steps/second): decades 1..1e9.
_THROUGHPUT_BUCKETS = tuple(10.0**i for i in range(10))


def chain_seed_sequences(seed: Seed, n_chains: int) -> List[np.random.SeedSequence]:
    """Per-chain seed sequences spawned from one root seed.

    Chain ``c`` of a batch seeded this way is bit-identical to the serial
    chain run with ``seed=chain_seed_sequences(seed, n)[c]`` (the serial
    samplers accept ``SeedSequence`` seeds directly).

    Parameters
    ----------
    seed : int or numpy.random.SeedSequence
        Root seed for the batch.
    n_chains : int
        Number of chains to seed.

    Returns
    -------
    list of numpy.random.SeedSequence
        ``n_chains`` statistically independent spawned streams.
    """
    if n_chains < 1:
        raise ValueError("n_chains must be at least 1")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return list(root.spawn(n_chains))


class _Stream:
    """Buffered uniform draws from one chain's generator.

    ``take(k)`` returns the next ``k`` doubles of the stream.  Buffering
    changes the call pattern but not the values (prefix-consistency of
    ``Generator.random``), so the buffered chain matches the serial chain's
    unbuffered draws bit for bit.
    """

    __slots__ = ("rng", "_buffer", "_cursor")

    _BLOCK = 4096

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self._buffer = np.empty(0)
        self._cursor = 0

    def take(self, count: int) -> np.ndarray:
        end = self._cursor + count
        if end > len(self._buffer):
            tail = self._buffer[self._cursor :]
            fresh = self.rng.random(max(self._BLOCK, count - len(tail)))
            self._buffer = np.concatenate([tail, fresh])
            self._cursor = 0
            end = count
        out = self._buffer[self._cursor : end]
        self._cursor = end
        return out


class _BatchedTables:
    """Padded per-node gather tables for whole-batch conditional updates.

    Flattens the per-node factor entries of
    :class:`~repro.engine.conditionals.CompiledConditionals` into rectangular
    arrays: entry ``j`` of node ``v`` contributes the weight table at
    ``pool[base[v, j] + a * stride0[v, j]]`` for alphabet code ``a``, with the
    offset determined by the neighbour codes at ``other[v, j, :]`` (strides
    ``ostride[v, j, :]``).  Missing entries point at an all-ones table (pool
    offset 0, stride 1, zero neighbour strides), so a single
    ``multiply.reduce`` over the entry axis reproduces the serial per-factor
    product exactly -- the padding multiplies by 1.0 *after* the real
    entries, which leaves the float result bit-identical.
    """

    __slots__ = ("q", "pool", "base", "stride0", "other", "ostride", "factorless", "aq")

    def __init__(self, compiled) -> None:
        tables = compiled.conditionals.tables
        q = compiled.q
        self.q = q
        n = len(compiled.nodes)
        max_entries = max((len(entries) for entries in tables), default=0) or 1
        max_others = (
            max(
                (len(entry[2]) for entries in tables for entry in entries),
                default=0,
            )
            or 1
        )
        pool: List[float] = [1.0] * q  # the all-ones padding table at offset 0
        base = np.zeros((n, max_entries), dtype=np.int64)
        stride0 = np.ones((n, max_entries), dtype=np.int64)
        other = np.zeros((n, max_entries, max_others), dtype=np.int64)
        ostride = np.zeros((n, max_entries, max_others), dtype=np.int64)
        for variable, entries in enumerate(tables):
            for j, (flat, entry_stride0, others, strides) in enumerate(entries):
                base[variable, j] = len(pool)
                pool.extend(flat)
                stride0[variable, j] = entry_stride0
                for k, (other_node, stride) in enumerate(zip(others, strides)):
                    other[variable, j, k] = other_node
                    ostride[variable, j, k] = stride
        self.pool = np.asarray(pool, dtype=np.float64)
        self.base = base
        self.stride0 = stride0
        self.other = other
        self.ostride = ostride
        self.factorless = np.array([len(entries) == 0 for entries in tables], dtype=bool)
        self.aq = np.arange(q)

    def weights(
        self, codes: np.ndarray, rows: np.ndarray, variables: np.ndarray
    ) -> np.ndarray:
        """Unnormalised conditional weights, one length-``q`` row per pair.

        ``rows[i]`` selects the chain (a row of ``codes``) and
        ``variables[i]`` the node being resampled; the result row ``i`` equals
        the serial ``weights_by_codes(variables[i], codes[rows[i]])``.
        """
        base = self.base[variables]  # (M, F)
        stride0 = self.stride0[variables]  # (M, F)
        other = self.other[variables]  # (M, F, K)
        ostride = self.ostride[variables]  # (M, F, K)
        neighbour_codes = codes[rows[:, None, None], other]
        offsets = base + (neighbour_codes * ostride).sum(axis=2)
        indices = offsets[:, :, None] + self.aq * stride0[:, :, None]
        return np.multiply.reduce(self.pool[indices], axis=1)

    def sample_codes(
        self,
        codes: np.ndarray,
        rows: np.ndarray,
        variables: np.ndarray,
        points: np.ndarray,
        compiled,
    ) -> np.ndarray:
        """Batched heat-bath resample: the new code for each (row, variable).

        THE bit-identity-critical inner loop, shared by every kernel's
        batched step (Glauber, LubyGlauber rounds, the scan kernels):
        gather the conditional weights, cumulative-sum them in serial
        order, and pick the first code whose cumulative weight covers
        ``points[i] * total`` -- the strict ``<`` comparison and the
        ``q - 1`` clamp reproduce the serial :func:`sample_code` exactly.
        A non-positive total raises the shared stuck-node error (padded
        factorless rows total exactly ``q``, so they can never trip it;
        callers that need the serial factorless *fast path* -- uniform
        resample via truncation -- handle it before or after this call).
        """
        weights = self.weights(codes, rows, variables)
        cumulative = np.cumsum(weights, axis=1)
        totals = cumulative[:, -1]
        if not np.all(totals > 0.0):
            stuck = int(np.flatnonzero(totals <= 0.0)[0])
            raise stuck_node_error(compiled, variables[stuck])
        return np.minimum(
            np.sum(cumulative < (points * totals)[:, None], axis=1), self.q - 1
        )


class ChainBatch:
    """A batch of independent chains over one instance, as a code matrix.

    The batch is the kernel-agnostic execution state; the dynamics comes
    from the :class:`~repro.sampling.kernels.ChainKernel` handed to
    :meth:`advance` (one batch runs one kernel for its lifetime -- the
    per-chain RNG streams are not interchangeable between dynamics).

    Parameters
    ----------
    instance:
        The sampling instance all chains target.
    n_chains:
        Number of chains (ignored when ``seeds`` is given explicitly).
    seed, seeds:
        Either a root ``seed`` from which per-chain streams are spawned
        (:func:`chain_seed_sequences`), or an explicit ``seeds`` sequence --
        one entry per chain, each anything ``numpy.random.default_rng``
        accepts.  Explicit seeds make chain ``c`` bit-identical to the serial
        sampler called with ``seed=seeds[c]``.
    initial:
        Optional shared initial configuration (default: the deterministic
        greedy feasible configuration, exactly like the serial samplers).
    initial_codes:
        Optional ``(chains, n)`` integer code matrix giving each chain its
        *own* starting state (the resume path of :class:`ChainState`);
        mutually exclusive with ``initial``.
    engine:
        Must resolve to the compiled engine; the batched runner *is* a
        compiled-engine execution strategy.
    """

    def __init__(
        self,
        instance: SamplingInstance,
        n_chains: Optional[int] = None,
        seed: Seed = 0,
        seeds: Optional[Sequence] = None,
        initial: Optional[Dict[Node, Value]] = None,
        engine: Optional[str] = None,
        initial_codes: Optional[np.ndarray] = None,
    ) -> None:
        if resolve_engine(engine) != "compiled":
            raise ValueError(
                "the batched chain runner requires the compiled engine; "
                'pass engine=None or engine="compiled"'
            )
        if seeds is None:
            if n_chains is None:
                raise ValueError("pass n_chains (with a root seed) or explicit seeds")
            seeds = chain_seed_sequences(seed, n_chains)
        else:
            seeds = list(seeds)
            if n_chains is not None and n_chains != len(seeds):
                raise ValueError("n_chains disagrees with the number of explicit seeds")
        if not seeds:
            raise ValueError("a chain batch needs at least one chain")
        self.instance = instance
        self.seeds = seeds
        self.n_chains = len(seeds)
        compiled = instance.distribution.compiled_engine()
        self.compiled = compiled
        self.tables = _BatchedTables(compiled)
        if initial_codes is not None:
            if initial is not None:
                raise ValueError("pass initial or initial_codes, not both")
            initial_codes = np.asarray(initial_codes, dtype=np.int64)
            if initial_codes.shape != (self.n_chains, len(compiled.nodes)):
                raise ValueError(
                    f"initial_codes has shape {initial_codes.shape}, expected "
                    f"{(self.n_chains, len(compiled.nodes))}"
                )
            #: The ``(chains, n)`` state matrix of alphabet codes.
            self.codes = initial_codes.copy()
        else:
            configuration = (
                dict(initial)
                if initial is not None
                else greedy_feasible_configuration(instance, engine=engine)
            )
            start = np.array(
                [compiled.symbol_index[configuration[node]] for node in compiled.nodes],
                dtype=np.int64,
            )
            self.codes = np.tile(start, (self.n_chains, 1))
        self.rngs = [np.random.default_rng(chain_seed) for chain_seed in seeds]
        self._streams: Optional[List[_Stream]] = None
        self._kind: Optional[str] = None
        self._scratch: Dict[str, dict] = {}
        #: Integer ids of the free nodes, in ``instance.free_nodes`` order.
        self.free_index = np.array(
            [compiled.node_index[node] for node in instance.free_nodes], dtype=np.int64
        )
        #: ``arange(n_chains)``, the row selector of whole-batch gathers.
        self.chain_ids = np.arange(self.n_chains)
        #: Whether any free node has no factor (kernels replicate the serial
        #: uniform-resample fast path for those).
        self.any_factorless = bool(
            len(self.free_index) and np.any(self.tables.factorless[self.free_index])
        )

    # ------------------------------------------------------------------
    def scratch(self, kernel_name: str) -> dict:
        """Kernel-private persistent state (scan positions, masks, caches)."""
        return self._scratch.setdefault(kernel_name, {})

    def streams(self) -> List[_Stream]:
        """Per-chain prefix-consistent buffered streams (created on first use)."""
        if self._streams is None:
            self._streams = [_Stream(rng) for rng in self.rngs]
        return self._streams

    def stack_trace(self, trace: List[np.ndarray]) -> np.ndarray:
        """Stack per-unit statistic snapshots into a ``(chains, units)`` array."""
        if not trace:
            return np.empty((self.n_chains, 0))
        return np.stack(trace, axis=1)

    def _claim_kind(self, kind: str) -> None:
        """One batch runs one chain kernel.

        Different kernels consume the per-chain streams with different
        draw patterns; interleaving them on the same generators would yield
        chains that correspond to no serial execution, silently voiding the
        bit-identity contract.  Fail loudly instead.
        """
        if self._kind is None:
            self._kind = kind
        elif self._kind != kind:
            raise RuntimeError(
                f"this ChainBatch already ran {self._kind} updates; create a "
                f"fresh batch for {kind} updates (the per-chain RNG streams "
                "are not interchangeable between chain kernels)"
            )

    # ------------------------------------------------------------------
    def advance(self, kernel, count: int, statistic=None):
        """Advance every chain by ``count`` units of ``kernel``.

        Parameters
        ----------
        kernel : str or ChainKernel
            The dynamics (a registered kernel name or instance).  A batch
            is claimed by the first kernel it runs; mixing kernels raises.
        count : int
            Units (steps/rounds) per chain.
        statistic : callable, optional
            Applied to the ``(chains, n)`` code matrix after every unit;
            when given, the per-chain traces are returned as a
            ``(chains, count)`` array (the input of the convergence
            diagnostics in :mod:`repro.analysis.convergence`).

        Returns
        -------
        ChainBatch or numpy.ndarray
            ``self`` (for chaining) without ``statistic``, else the trace.
        """
        resolved: ChainKernel = resolve_kernel(kernel)
        self._claim_kind(resolved.name)
        handle = obs.active()
        if handle is None:
            trace = resolved.batched_advance(self, count, statistic=statistic)
        else:
            chains = self.codes.shape[0]
            with handle.span(
                "chains.advance", kernel=resolved.name, chains=chains, count=count
            ):
                started = time.perf_counter()
                trace = resolved.batched_advance(self, count, statistic=statistic)
                elapsed = time.perf_counter() - started
            if elapsed > 0.0:
                handle.metrics.histogram(
                    "runtime.chains.steps_per_second", _THROUGHPUT_BUCKETS
                ).observe(chains * count / elapsed)
        if statistic is not None:
            return trace
        return self

    def glauber_steps(self, steps: int) -> "ChainBatch":
        """Advance every chain by ``steps`` single-site Glauber updates."""
        return self.advance("glauber", steps)

    def luby_rounds(self, rounds: int, statistic=None):
        """Advance every chain by ``rounds`` LubyGlauber rounds.

        With ``statistic`` the per-round traces come back as a
        ``(chains, rounds)`` array; without it the batch itself (for
        chaining).
        """
        return self.advance("luby-glauber", rounds, statistic=statistic)

    # ------------------------------------------------------------------
    def retarget(self, instance: SamplingInstance) -> "ChainBatch":
        """Rebind these chains to a reweighted twin of their instance.

        Persistent contrastive divergence keeps one set of chains alive
        while the model's factor *weights* move every gradient step.  The
        structure (nodes, alphabet, free set) is fixed, so the live chain
        state transfers verbatim: the returned batch targets ``instance``,
        rebuilds the weight-dependent gather tables, and *adopts* this
        batch's code matrix, per-chain generators, buffered streams and
        kernel scratch by reference -- continuing the exact RNG streams, so
        resuming on the twin is bit-identical to having run on it all along.
        The old batch must not be advanced afterwards.
        """
        compiled = instance.distribution.compiled_engine()
        if (
            compiled.nodes != self.compiled.nodes
            or compiled.alphabet != self.compiled.alphabet
        ):
            raise ValueError(
                "retarget requires an instance with identical nodes and alphabet"
            )
        twin = ChainBatch(instance, seeds=self.seeds, initial_codes=self.codes)
        if not np.array_equal(twin.free_index, self.free_index):
            raise ValueError("retarget requires an instance with the same free nodes")
        twin.rngs = self.rngs
        twin._streams = self._streams
        twin._scratch = self._scratch
        twin._kind = self._kind
        return twin

    # ------------------------------------------------------------------
    def configurations(self) -> List[Dict[Node, Value]]:
        """The current state of every chain, decoded to configurations.

        Returns
        -------
        list of dict
            One ``{node: value}`` configuration per chain, in chain order.
        """
        alphabet = self.compiled.alphabet
        nodes = self.compiled.nodes
        return [
            {node: alphabet[code] for node, code in zip(nodes, row)}
            for row in self.codes.tolist()
        ]


#: Histogram boundaries for pack efficiency (used cells / padded cells).
_PACK_EFFICIENCY_BUCKETS = tuple(i / 10.0 for i in range(1, 11))


class _PackedLayout:
    """The fused execution layout of a :class:`PackedBatch` (cached).

    Precomputes everything a mask-aware kernel step needs to advance all
    groups' chains as one padded ``(total_chains, n_max)`` code matrix:

    * merged gather tables -- the per-group :class:`_BatchedTables` pools
      concatenated with rebased offsets, node axes stacked so the *global*
      variable id ``node_offset[g] + local_id`` selects group ``g``'s
      table row.  Neighbour columns (``other``) stay **column-local**:
      each packed row belongs to exactly one group whose variables occupy
      columns ``[0, n_g)``, so a row's gathers never cross into padding.
      Per-group padding entries multiply by 1.0 after the real entries,
      exactly like solo padding, keeping float products bit-identical.
    * per-chain group ids, node offsets, free counts and a padded
      ``free_lookup`` (the local column of each group's ``j``-th free
      node), so per-chain draws replicate each solo batch's RNG calls.
    * ``nodes`` -- the concatenated node labels, letting the shared
      stuck-node error name the right node from a global variable id.

    Requires every group to share one alphabet size ``q`` (kernels fall
    back to groupwise advance otherwise).
    """

    __slots__ = (
        "tables",
        "nodes",
        "node_offsets",
        "chain_group",
        "chain_node_offset",
        "free_counts",
        "free_lookup",
        "rngs",
        "any_factorless",
        "total_chains",
        "n_max",
        "row_offsets",
    )

    def __init__(self, groups: Sequence["ChainBatch"]) -> None:
        qs = {group.tables.q for group in groups}
        if len(qs) != 1:
            raise ValueError("a fused packed layout requires one alphabet size")
        q = qs.pop()
        tables_list = [group.tables for group in groups]
        max_entries = max(t.base.shape[1] for t in tables_list)
        max_others = max(t.other.shape[2] for t in tables_list)
        pools: List[np.ndarray] = []
        bases: List[np.ndarray] = []
        stride0s: List[np.ndarray] = []
        others: List[np.ndarray] = []
        ostrides: List[np.ndarray] = []
        factorless: List[np.ndarray] = []
        pool_offset = 0
        for t in tables_list:
            n, entries = t.base.shape
            base = np.full((n, max_entries), pool_offset, dtype=np.int64)
            base[:, :entries] = t.base + pool_offset
            stride0 = np.ones((n, max_entries), dtype=np.int64)
            stride0[:, :entries] = t.stride0
            other = np.zeros((n, max_entries, max_others), dtype=np.int64)
            other[:, :entries, : t.other.shape[2]] = t.other
            ostride = np.zeros((n, max_entries, max_others), dtype=np.int64)
            ostride[:, :entries, : t.ostride.shape[2]] = t.ostride
            pools.append(t.pool)
            bases.append(base)
            stride0s.append(stride0)
            others.append(other)
            ostrides.append(ostride)
            factorless.append(t.factorless)
            pool_offset += len(t.pool)
        merged = _BatchedTables.__new__(_BatchedTables)
        merged.q = q
        merged.pool = np.concatenate(pools)
        merged.base = np.concatenate(bases, axis=0)
        merged.stride0 = np.concatenate(stride0s, axis=0)
        merged.other = np.concatenate(others, axis=0)
        merged.ostride = np.concatenate(ostrides, axis=0)
        merged.factorless = np.concatenate(factorless)
        merged.aq = np.arange(q)
        self.tables = merged
        self.nodes = tuple(
            node for group in groups for node in group.compiled.nodes
        )
        sizes = [len(group.compiled.nodes) for group in groups]
        self.node_offsets = np.cumsum([0] + sizes[:-1]).astype(np.int64)
        self.n_max = max(sizes)
        counts = [group.n_chains for group in groups]
        self.total_chains = sum(counts)
        self.row_offsets = np.cumsum([0] + counts[:-1]).astype(np.int64)
        self.chain_group = np.repeat(np.arange(len(groups)), counts)
        self.chain_node_offset = self.node_offsets[self.chain_group]
        group_free = np.array(
            [len(group.free_index) for group in groups], dtype=np.int64
        )
        self.free_counts = group_free[self.chain_group]
        max_free = int(group_free.max()) if len(group_free) else 0
        free_lookup = np.zeros((self.total_chains, max(1, max_free)), dtype=np.int64)
        for g, group in enumerate(groups):
            rows = slice(self.row_offsets[g], self.row_offsets[g] + counts[g])
            free_lookup[rows, : len(group.free_index)] = group.free_index
        self.free_lookup = free_lookup
        self.rngs = [rng for group in groups for rng in group.rngs]
        self.any_factorless = any(group.any_factorless for group in groups)


class PackedBatch:
    """Many small instances (possibly different models) as one padded matrix.

    The million-user serving shape: concurrent requests target *different*
    registered models, each a small instance with a handful of chains.
    Advancing them one :class:`ChainBatch` at a time pays the per-step
    Python overhead once **per model**; a ``PackedBatch`` packs all groups
    into one ``(total_chains, n_max)`` code matrix -- rows left-aligned,
    group ``g``'s variables in columns ``[0, n_g)``, per-instance column
    masks implied by the layout -- so mask-aware kernels
    (:meth:`~repro.sampling.kernels.ChainKernel.packed_advance`) pay it
    once per **step** across every model.

    Determinism contract: group ``g`` seeded with ``seeds_g`` leaves its
    chains bit-identical to a solo ``ChainBatch(instance_g,
    seeds=seeds_g)`` advanced the same ``count`` -- the fused step
    replicates each chain's exact solo draw pattern (same per-chain
    ``integers``/``random`` calls, same float product order thanks to
    all-ones padding), and kernels without a fused step fall back to
    advancing each group independently, which is solo execution by
    definition.  Same per-request seed contract as the serving coalescer.

    Parameters
    ----------
    requests:
        One entry per group: a ``(instance, seeds)`` pair, an
        ``(instance, seeds, initial)`` triple, or a ready
        :class:`ChainBatch`.
    engine:
        Must resolve to the compiled engine (as for :class:`ChainBatch`).
    """

    def __init__(self, requests: Sequence, engine: Optional[str] = None) -> None:
        groups: List[ChainBatch] = []
        for request in requests:
            if isinstance(request, ChainBatch):
                groups.append(request)
            else:
                instance, seeds, *rest = request
                initial = rest[0] if rest else None
                groups.append(
                    ChainBatch(instance, seeds=seeds, initial=initial, engine=engine)
                )
        if not groups:
            raise ValueError("a packed batch needs at least one group")
        self.groups = groups
        self._layout: Optional[_PackedLayout] = None

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def total_chains(self) -> int:
        return sum(group.n_chains for group in self.groups)

    @property
    def n_max(self) -> int:
        return max(len(group.compiled.nodes) for group in self.groups)

    def pack_efficiency(self) -> float:
        """Used cells / padded cells of the ``(total_chains, n_max)`` matrix."""
        used = sum(
            group.n_chains * len(group.compiled.nodes) for group in self.groups
        )
        return used / float(self.total_chains * self.n_max)

    def fusable(self) -> bool:
        """Whether a single fused kernel step can cover every group.

        Requires one shared alphabet size (the padded gather tables merge
        along the node axis) and at least one free node per group (a group
        with nothing to resample draws nothing, which no uniform fused
        draw pattern can replicate).  Non-fusable packs still run -- group
        by group.
        """
        qs = {group.tables.q for group in self.groups}
        return len(qs) == 1 and all(
            len(group.free_index) > 0 for group in self.groups
        )

    def layout(self) -> _PackedLayout:
        """The cached fused layout (build on first use; requires fusable)."""
        if self._layout is None:
            self._layout = _PackedLayout(self.groups)
        return self._layout

    # ------------------------------------------------------------------
    def gather_codes(self) -> np.ndarray:
        """Assemble the padded ``(total_chains, n_max)`` code matrix.

        Padding cells (columns ``>= n_g`` of group ``g``'s rows) are zero;
        they are never read -- neighbour gathers are column-local -- and
        never written.
        """
        layout = self.layout()
        codes = np.zeros((layout.total_chains, layout.n_max), dtype=np.int64)
        for g, group in enumerate(self.groups):
            rows = slice(
                layout.row_offsets[g], layout.row_offsets[g] + group.n_chains
            )
            codes[rows, : group.codes.shape[1]] = group.codes
        return codes

    def scatter_codes(self, codes: np.ndarray) -> None:
        """Write the packed matrix back into each group's own code matrix."""
        layout = self.layout()
        for g, group in enumerate(self.groups):
            rows = slice(
                layout.row_offsets[g], layout.row_offsets[g] + group.n_chains
            )
            group.codes[...] = codes[rows, : group.codes.shape[1]]

    # ------------------------------------------------------------------
    def advance(self, kernel, count: int) -> "PackedBatch":
        """Advance every chain of every group by ``count`` units of ``kernel``.

        Dispatches to the kernel's
        :meth:`~repro.sampling.kernels.ChainKernel.packed_advance` -- the
        fused mask-aware step where the kernel defines one and the pack is
        fusable, the groupwise solo loop otherwise.  Either way each
        group's chains end bit-identical to its solo batch.
        """
        resolved: ChainKernel = resolve_kernel(kernel)
        for group in self.groups:
            group._claim_kind(resolved.name)
        handle = obs.active()
        if handle is None:
            resolved.packed_advance(self, count)
            return self
        with handle.span(
            "chains.packed_advance",
            kernel=resolved.name,
            groups=self.n_groups,
            chains=self.total_chains,
            count=count,
        ):
            started = time.perf_counter()
            resolved.packed_advance(self, count)
            elapsed = time.perf_counter() - started
        handle.metrics.histogram(
            "runtime.chains.pack_efficiency", _PACK_EFFICIENCY_BUCKETS
        ).observe(self.pack_efficiency())
        if elapsed > 0.0:
            handle.metrics.histogram(
                "runtime.chains.steps_per_second", _THROUGHPUT_BUCKETS
            ).observe(self.total_chains * count / elapsed)
        return self

    def configurations(self) -> List[List[Dict[Node, Value]]]:
        """Per-group lists of decoded chain states, in request order."""
        return [group.configurations() for group in self.groups]


class ChainState:
    """Resumable per-chain execution state across ``run_chains`` calls.

    Returned by :meth:`repro.runtime.executor.Runtime.run_chains` with
    ``return_state=True`` and accepted back via ``state=``: the final code
    matrix, the per-chain generators (with their buffered stream positions)
    and the kernel scratch all persist, so a later segment continues the
    *same* chains -- the resume path persistent contrastive divergence needs.

    Determinism contract: for a fixed segmentation, the serial and batched
    backends produce bit-identical chains (a one-chain batched advance
    replays the serial draw pattern exactly).  Splitting a run into
    *different* segments changes the RNG chunk boundaries, so
    ``advance(30); advance(30)`` is a valid chain but not bit-equal to a
    single ``advance(60)`` -- the same caveat the serial samplers document.

    The state may be resumed against a *reweighted* twin of its instance
    (same nodes/alphabet/free set, new factor weights): each segment
    retargets its batches when the instance's compiled engine has moved
    (see :meth:`ChainBatch.retarget`).
    """

    __slots__ = ("kernel_name", "batches", "layout", "units")

    def __init__(
        self, kernel_name: str, batches: List[ChainBatch], layout: str = "batched"
    ) -> None:
        self.kernel_name = kernel_name
        self.batches = batches
        #: ``"batched"`` (all chains in one batch) or ``"serial"`` (one
        #: single-chain batch per chain).
        self.layout = layout
        #: Total units (steps/rounds) advanced through this state so far.
        self.units = 0

    @property
    def n_chains(self) -> int:
        return sum(batch.n_chains for batch in self.batches)

    @property
    def seeds(self) -> List:
        """Per-chain seeds, in chain order."""
        return [seed for batch in self.batches for seed in batch.seeds]

    @property
    def codes(self) -> np.ndarray:
        """The current ``(chains, n)`` code matrix (a fresh copy)."""
        return np.concatenate([batch.codes for batch in self.batches], axis=0).copy()

    def advance(self, kernel, instance: SamplingInstance, count: int) -> List[Dict[Node, Value]]:
        """Advance every chain by ``count`` units against ``instance``.

        ``instance`` may be the original instance or a reweighted twin
        (batches are retargeted on the fly); the kernel must match the one
        that created the state.  Returns the per-chain final configurations.
        """
        resolved: ChainKernel = resolve_kernel(kernel)
        if resolved.name != self.kernel_name:
            raise ValueError(
                f"this ChainState ran {self.kernel_name!r} chains; "
                f"cannot resume it with kernel {resolved.name!r}"
            )
        compiled = instance.distribution.compiled_engine()
        for i, batch in enumerate(self.batches):
            if batch.compiled is not compiled:
                self.batches[i] = batch.retarget(instance)
        for batch in self.batches:
            batch.advance(resolved, count)
        self.units += count
        return self.configurations()

    def configurations(self) -> List[Dict[Node, Value]]:
        """The current state of every chain, in chain order."""
        states: List[Dict[Node, Value]] = []
        for batch in self.batches:
            states.extend(batch.configurations())
        return states

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChainState(kernel={self.kernel_name!r}, chains={self.n_chains}, "
            f"batches={len(self.batches)}, units={self.units})"
        )


def make_chain_state(
    kernel,
    instance: SamplingInstance,
    seeds: Sequence,
    initial: Optional[Dict[Node, Value]] = None,
    initial_codes: Optional[np.ndarray] = None,
    layout: str = "batched",
    engine: Optional[str] = None,
) -> ChainState:
    """Build a fresh :class:`ChainState` without advancing any chain.

    Parameters
    ----------
    kernel : str or ChainKernel
        The dynamics the state will run (fixed for its lifetime).
    instance, seeds, initial, engine
        As for :class:`ChainBatch`; one chain per entry of ``seeds``.
    initial_codes : numpy.ndarray, optional
        A ``(chains, n)`` code matrix giving each chain its own start
        (e.g. data configurations for persistent CD).
    layout : str
        ``"batched"`` advances all chains as one code matrix;
        ``"serial"`` keeps one single-chain batch per chain (the serial
        backend's layout -- bit-identical to batched per chain for the
        same segmentation, kept for conformance testing).
    """
    resolved: ChainKernel = resolve_kernel(kernel)
    seeds = list(seeds)
    if layout == "batched":
        batches = [
            ChainBatch(
                instance,
                seeds=seeds,
                initial=initial,
                initial_codes=initial_codes,
                engine=engine,
            )
        ]
    elif layout == "serial":
        batches = [
            ChainBatch(
                instance,
                seeds=[chain_seed],
                initial=initial,
                initial_codes=(
                    None if initial_codes is None else initial_codes[chain : chain + 1]
                ),
                engine=engine,
            )
            for chain, chain_seed in enumerate(seeds)
        ]
    else:
        raise ValueError(f"unknown ChainState layout {layout!r}")
    return ChainState(resolved.name, batches, layout=layout)


def batched_kernel_sample(
    kernel,
    instance: SamplingInstance,
    count: int,
    n_chains: Optional[int] = None,
    seed: Seed = 0,
    seeds: Optional[Sequence] = None,
    initial: Optional[Dict[Node, Value]] = None,
    engine: Optional[str] = None,
) -> List[Dict[Node, Value]]:
    """Run a batch of chains of one kernel; return the per-chain final states.

    The single batched entry point behind
    :meth:`repro.runtime.executor.Runtime.run_chains` (and the cluster
    workers' chain blocks): entry ``c`` is bit-identical to
    ``kernel.serial_run(instance, count, seed=seeds[c], initial=initial)``.

    Parameters
    ----------
    kernel : str or ChainKernel
        The dynamics to advance.
    instance, count, n_chains, seed, seeds, initial, engine
        As for :class:`ChainBatch`; ``count`` is the per-chain unit count.

    Returns
    -------
    list of dict
        Final configurations, one per chain.
    """
    batch = ChainBatch(
        instance, n_chains=n_chains, seed=seed, seeds=seeds, initial=initial, engine=engine
    )
    batch.advance(kernel, count)
    return batch.configurations()


def batched_glauber_sample(
    instance: SamplingInstance,
    steps: int,
    n_chains: Optional[int] = None,
    seed: Seed = 0,
    seeds: Optional[Sequence] = None,
    initial: Optional[Dict[Node, Value]] = None,
    engine: Optional[str] = None,
) -> List[Dict[Node, Value]]:
    """Run a batch of Glauber chains and return the per-chain final states.

    Entry ``c`` is bit-identical to
    ``glauber_sample(instance, steps, seed=seeds[c], initial=initial)``.
    Equivalent to ``batched_kernel_sample("glauber", ...)``.
    """
    return batched_kernel_sample(
        "glauber",
        instance,
        steps,
        n_chains=n_chains,
        seed=seed,
        seeds=seeds,
        initial=initial,
        engine=engine,
    )


def batched_luby_glauber_sample(
    instance: SamplingInstance,
    rounds: int,
    n_chains: Optional[int] = None,
    seed: Seed = 0,
    seeds: Optional[Sequence] = None,
    initial: Optional[Dict[Node, Value]] = None,
    engine: Optional[str] = None,
) -> List[Dict[Node, Value]]:
    """Run a batch of LubyGlauber chains and return the per-chain final states.

    Entry ``c`` is bit-identical to
    ``luby_glauber_sample(instance, rounds, seed=seeds[c], initial=initial)``.
    Equivalent to ``batched_kernel_sample("luby-glauber", ...)``.
    """
    return batched_kernel_sample(
        "luby-glauber",
        instance,
        rounds,
        n_chains=n_chains,
        seed=seed,
        seeds=seeds,
        initial=initial,
        engine=engine,
    )
