"""Process-sharded execution of per-node LOCAL computations.

The paper's Theorem 5.1 inference algorithm is embarrassingly parallel
across nodes: each node compiles a ball around itself, greedily extends the
pinning onto the boundary shell, and eliminates the ball restriction.  This
module fans that per-node work out across OS processes:

* :class:`InstanceSpec` -- a picklable snapshot of a sampling instance
  (integer adjacency, dense factor arrays, pinning, locality).  The model
  factories build :class:`~repro.gibbs.factors.Factor` objects around
  closures, which do not pickle; the spec instead carries the
  already-materialised dense tables of the compiled engine, which is exactly
  the data the ball computations run on.
* :func:`shard_compiled_balls` / :func:`shard_padded_ball_marginals` --
  shard ``(center, radius)`` tasks over a process pool.  Workers return
  compiled balls (:class:`~repro.engine.compiled.CompiledGibbs` pickles) and
  marginals; the parent merges the compiled balls and memoised boundary
  extensions back into the distribution's
  :class:`~repro.engine.cache.BallCache`, so subsequent serial queries hit
  the warmed cache.
* :func:`process_map` -- a generic fork-based map used by the
  :class:`~repro.runtime.executor.Runtime` facade for coarse-grained task
  parallelism.  The fork start method lets workers inherit the mapped
  function (and anything it closes over) without pickling; only items and
  results cross the pipe.

Worker computations replay the exact serial code paths on equal compiled
inputs, so sharded results are bit-identical to the serial ones and merging
them into the parent cache is transparent.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.compiled import CompiledGibbs
from repro.gibbs.instance import SamplingInstance

Node = Hashable
Value = Hashable
BallKey = Tuple[Node, int]


class InstanceSpec:
    """A picklable snapshot of a sampling instance for process workers.

    Carries the compiled full instance (node order, alphabet, integer factor
    scopes, dense weight arrays), the integer adjacency structure, the
    pinning and the factor locality -- everything the per-node ball
    computations of E5/E8 read, and nothing that closes over Python
    callables.  Ball compilations are memoised so a worker's results can be
    shipped back wholesale and adopted by the parent cache.
    """

    __slots__ = (
        "nodes",
        "alphabet",
        "scopes",
        "arrays",
        "adjacency",
        "pinning",
        "locality",
        "_node_index",
        "_ball_memo",
        "_extras",
    )

    def __init__(
        self,
        nodes: Sequence[Node],
        alphabet: Sequence[Value],
        scopes: Sequence[Tuple[int, ...]],
        arrays: Sequence[np.ndarray],
        adjacency: Sequence[Tuple[int, ...]],
        pinning: Dict[Node, Value],
        locality: int,
    ) -> None:
        self.nodes = tuple(nodes)
        self.alphabet = tuple(alphabet)
        self.scopes = tuple(tuple(scope) for scope in scopes)
        self.arrays = tuple(arrays)
        self.adjacency = tuple(tuple(neighbours) for neighbours in adjacency)
        self.pinning = dict(pinning)
        self.locality = int(locality)
        self._node_index: Optional[Dict[Node, int]] = None
        self._ball_memo: Dict[BallKey, CompiledGibbs] = {}
        self._extras: Dict = {}

    @classmethod
    def from_instance(cls, instance: SamplingInstance) -> "InstanceSpec":
        """Snapshot an instance (dense tables come from the compiled engine)."""
        distribution = instance.distribution
        compiled = distribution.compiled_engine()
        node_index = compiled.node_index
        adjacency = tuple(
            tuple(sorted(node_index[neighbour] for neighbour in distribution.graph.neighbors(node)))
            for node in compiled.nodes
        )
        return cls(
            nodes=compiled.nodes,
            alphabet=compiled.alphabet,
            scopes=compiled.scopes,
            arrays=compiled.arrays,
            adjacency=adjacency,
            pinning=instance.pinning.as_dict(),
            locality=distribution.locality(),
        )

    # ------------------------------------------------------------------
    @property
    def node_index(self) -> Dict[Node, int]:
        if self._node_index is None:
            self._node_index = {node: i for i, node in enumerate(self.nodes)}
        return self._node_index

    def ball_variables(self, center_variable: int, radius: int) -> frozenset:
        """Variable ids of ``B_radius(center)`` by BFS on the adjacency."""
        seen = {center_variable}
        frontier = [center_variable]
        for _ in range(radius):
            if not frontier:
                break
            next_frontier: List[int] = []
            for variable in frontier:
                for neighbour in self.adjacency[variable]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return frozenset(seen)

    def compile_ball(self, center: Node, radius: int) -> CompiledGibbs:
        """The compiled restriction to ``B_radius(center)`` (memoised).

        Node order (``repr``-sorted) and factor order (instance factor
        order) match :meth:`repro.engine.cache.BallCache.compiled_ball`
        exactly, so worker results merge transparently into the parent
        cache.
        """
        key = (center, radius)
        compiled = self._ball_memo.get(key)
        if compiled is None:
            variables = self.ball_variables(self.node_index[center], radius)
            labels = sorted((self.nodes[v] for v in variables), key=repr)
            label_index = {node: i for i, node in enumerate(labels)}
            scopes: List[Tuple[int, ...]] = []
            arrays: List[np.ndarray] = []
            for scope, array in zip(self.scopes, self.arrays):
                if all(variable in variables for variable in scope):
                    scopes.append(tuple(label_index[self.nodes[v]] for v in scope))
                    arrays.append(array)
            compiled = CompiledGibbs(labels, self.alphabet, scopes, arrays)
            self._ball_memo[key] = compiled
        return compiled

    # ------------------------------------------------------------------
    def padded_ball_marginal(self, center: Node, radius: int) -> Dict[Value, float]:
        """The Theorem 5.1 marginal at ``center`` for the given radius.

        Worker-side mirror of
        :func:`repro.inference.ssm_inference.padded_ball_marginal`: gather
        ``B_{radius + 2l}``, greedily extend the pinning over the shell
        between ``radius`` and ``radius + l`` (first feasible alphabet value
        per ``repr``-sorted shell node, exactly the reference rule), and
        return the exact conditional marginal of the padded ball.
        """
        locality = self.locality
        center_variable = self.node_index[center]
        context_ball = self.compile_ball(center, radius + 2 * locality)
        padded_variables = self.ball_variables(center_variable, radius + locality)
        inner_variables = self.ball_variables(center_variable, radius)
        padded_nodes = {self.nodes[v] for v in padded_variables}
        inner_nodes = {self.nodes[v] for v in inner_variables}
        shell = [
            node
            for node in padded_nodes
            if node not in inner_nodes and node not in self.pinning
        ]
        context_pinning = frozenset(
            (node, value)
            for node, value in self.pinning.items()
            if node in context_ball.node_index
        )
        extras_key = ("boundary-extension", center, radius, context_pinning)
        boundary = self._extras.get(extras_key)
        if boundary is None:
            boundary = self._greedy_boundary_extension(context_ball, shell)
            self._extras[extras_key] = boundary
        pinning = {
            node: value for node, value in self.pinning.items() if node in padded_nodes
        }
        pinning.update(boundary)
        if center in pinning:
            return {
                value: (1.0 if value == pinning[center] else 0.0)
                for value in self.alphabet
            }
        padded_ball = self.compile_ball(center, radius + locality)
        restricted = {
            node: value
            for node, value in pinning.items()
            if node in padded_ball.node_index
        }
        return padded_ball.marginal(center, restricted)

    def _greedy_boundary_extension(
        self, context_ball: CompiledGibbs, shell: Iterable[Node]
    ) -> Dict[Node, Value]:
        """Greedy locally-feasible extension on the compiled context ball.

        ``weights_partial`` only consults factors whose scope is fully
        assigned, which is precisely the reference rule (factors inside both
        the context and the assigned set).
        """
        codes = [-1] * len(context_ball.nodes)
        symbol_index = context_ball.symbol_index
        for node, value in self.pinning.items():
            variable = context_ball.node_index.get(node)
            if variable is not None:
                code = symbol_index.get(value)
                if code is not None:
                    codes[variable] = code
        conditionals = context_ball.conditionals
        boundary: Dict[Node, Value] = {}
        for node in sorted(shell, key=repr):
            variable = context_ball.node_index[node]
            if codes[variable] >= 0:
                continue
            weights = conditionals.weights_partial(variable, codes)
            chosen = next(
                (code for code, weight in enumerate(weights) if weight > 0.0), None
            )
            if chosen is None:
                raise RuntimeError(
                    "could not extend the pinning onto the boundary shell; "
                    "the distribution does not appear to be locally admissible"
                )
            codes[variable] = chosen
            boundary[node] = self.alphabet[chosen]
        return boundary


# ----------------------------------------------------------------------
# worker entry points (must be importable at module top level)
# ----------------------------------------------------------------------
def _compile_ball_shard(
    spec: InstanceSpec, tasks: Sequence[BallKey]
) -> Dict[BallKey, CompiledGibbs]:
    return {key: spec.compile_ball(*key) for key in tasks}


def _ball_marginal_shard(spec: InstanceSpec, tasks: Sequence[BallKey]):
    marginals = {key: spec.padded_ball_marginal(*key) for key in tasks}
    # Only ship the padded balls back: the serial replay queries
    # compiled_ball(center, radius + locality), while the context balls the
    # greedy extension used stay worker-local (the parent never compiles
    # them, so adopting them would just bloat the pipe and the cache).
    wanted = {(center, radius + spec.locality) for center, radius in tasks}
    balls = {key: ball for key, ball in spec._ball_memo.items() if key in wanted}
    return marginals, balls, dict(spec._extras)


def _split_shards(tasks: Sequence, n_workers: int) -> List[List]:
    shards: List[List] = [[] for _ in range(max(1, n_workers))]
    for index, task in enumerate(tasks):
        shards[index % len(shards)].append(task)
    return [shard for shard in shards if shard]


# ----------------------------------------------------------------------
# parent-side sharding API
# ----------------------------------------------------------------------
def shard_compiled_balls(
    instance: SamplingInstance,
    tasks: Sequence[BallKey],
    n_workers: int = 2,
) -> Dict[BallKey, CompiledGibbs]:
    """Compile ``(center, radius)`` balls across a process pool.

    The compiled balls are merged into the distribution's
    :class:`~repro.engine.cache.BallCache` (so subsequent serial queries are
    cache hits) and returned.
    """
    tasks = list(dict.fromkeys(tasks))
    if not tasks:
        return {}
    spec = InstanceSpec.from_instance(instance)
    merged: Dict[BallKey, CompiledGibbs] = {}
    shards = _split_shards(tasks, n_workers)
    if len(shards) == 1:
        merged.update(_compile_ball_shard(spec, shards[0]))
    else:
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            for result in pool.map(_compile_ball_shard, [spec] * len(shards), shards):
                merged.update(result)
    instance.distribution.ball_cache().adopt(balls=merged)
    return merged


def shard_padded_ball_marginals(
    instance: SamplingInstance,
    centers: Sequence[Node],
    radius: int,
    n_workers: int = 2,
) -> Dict[Node, Dict[Value, float]]:
    """Theorem 5.1 marginals at many centers, sharded across processes.

    Every worker compiles the balls of its shard of centers and computes the
    padded-ball marginals; the parent merges the workers' compiled balls and
    boundary extensions back into the distribution's cache and returns the
    per-center marginals.  Results are bit-identical to the serial
    :func:`repro.inference.ssm_inference.padded_ball_marginal` loop.
    """
    centers = list(centers)
    if not centers:
        return {}
    spec = InstanceSpec.from_instance(instance)
    tasks = [(center, radius) for center in centers]
    marginals: Dict[Node, Dict[Value, float]] = {}
    balls: Dict[BallKey, CompiledGibbs] = {}
    extras: Dict = {}
    shards = _split_shards(tasks, n_workers)
    if len(shards) == 1:
        shard_results = [_ball_marginal_shard(spec, shards[0])]
    else:
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            shard_results = list(
                pool.map(_ball_marginal_shard, [spec] * len(shards), shards)
            )
    for shard_marginals, shard_balls, shard_extras in shard_results:
        for (center, _), marginal in shard_marginals.items():
            marginals[center] = marginal
        balls.update(shard_balls)
        extras.update(shard_extras)
    instance.distribution.ball_cache().adopt(balls=balls, extras=extras)
    return marginals


# ----------------------------------------------------------------------
# generic fork-based map
# ----------------------------------------------------------------------
_FORK_TASK: Optional[Callable] = None


def _invoke_fork_task(item):
    return _FORK_TASK(item)


def process_map(
    function: Callable,
    items: Iterable,
    n_workers: int = 2,
    fallback_serial: bool = True,
) -> List:
    """Map ``function`` over ``items`` in a pool of forked processes.

    The fork start method lets workers inherit ``function`` -- including
    closures over unpicklable model objects -- from the parent's address
    space; only the items and results round-trip through pickle.  On
    platforms without fork (or with a single item) the map degrades to a
    serial loop when ``fallback_serial`` is set.
    """
    items = list(items)
    if not items:
        return []
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = None
    if context is None or len(items) == 1:
        if context is None and not fallback_serial:
            raise RuntimeError("process_map requires the fork start method")
        return [function(item) for item in items]
    global _FORK_TASK
    previous = _FORK_TASK
    _FORK_TASK = function
    try:
        with context.Pool(processes=max(1, n_workers)) as pool:
            return pool.map(_invoke_fork_task, items)
    finally:
        _FORK_TASK = previous
