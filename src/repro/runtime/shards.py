"""Process-sharded execution of per-node LOCAL computations.

The paper's Theorem 5.1 inference algorithm is embarrassingly parallel
across nodes: each node compiles a ball around itself, greedily extends the
pinning onto the boundary shell, and eliminates the ball restriction.  This
module fans that per-node work out across OS processes:

* :class:`InstanceSpec` -- a picklable snapshot of a sampling instance
  (integer adjacency, dense factor arrays, pinning, locality).  The model
  factories build :class:`~repro.gibbs.factors.Factor` objects around
  closures, which do not pickle; the spec instead carries the
  already-materialised dense tables of the compiled engine, which is exactly
  the data the ball computations run on.
* :func:`stream_ball_marginal_tasks` / :func:`stream_padded_ball_marginals`
  / :func:`stream_compiled_balls` -- the *streaming* executor: tasks are
  chunked onto a ``ProcessPoolExecutor`` (``submit`` + ``as_completed``, no
  barrier), the :class:`InstanceSpec` crosses the pipe exactly once per
  worker via the pool initializer, and every chunk's results -- compiled
  balls, memoised boundary extensions and capped per-pinning marginal-memo
  deltas -- are merged into the parent's
  :class:`~repro.engine.cache.BallCache` (:meth:`~repro.engine.cache.BallCache.adopt`)
  and yielded the moment the chunk lands.  Consumers overlap parent-side
  work with in-flight shards, mirroring the barrier-free LOCAL model.
* :func:`shard_compiled_balls` / :func:`shard_padded_ball_marginals` --
  barrier wrappers that drain the streams into dicts (the historical API).
* :func:`process_map` / :func:`process_map_unordered` -- generic fork-based
  maps used by the :class:`~repro.runtime.executor.Runtime` facade for
  coarse-grained task parallelism.  The fork start method lets workers
  inherit the mapped function (and anything it closes over) without
  pickling; only items and results cross the pipe.

Worker computations replay the exact serial code paths on equal compiled
inputs, so sharded results are bit-identical to the serial ones and merging
them into the parent cache is transparent regardless of arrival order.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import obs
from repro.engine.compiled import CompiledGibbs
from repro.gibbs.instance import SamplingInstance

Node = Hashable
Value = Hashable
BallKey = Tuple[Node, int]


class InstanceSpec:
    """A picklable snapshot of a sampling instance for process workers.

    Carries the compiled full instance (node order, alphabet, integer factor
    scopes, dense weight arrays), the integer adjacency structure, the
    pinning and the factor locality -- everything the per-node ball
    computations of E5/E8 read, and nothing that closes over Python
    callables.  Ball compilations are memoised so a worker's results can be
    shipped back wholesale and adopted by the parent cache.
    """

    __slots__ = (
        "nodes",
        "alphabet",
        "scopes",
        "arrays",
        "adjacency",
        "pinning",
        "locality",
        "_node_index",
        "_ball_memo",
        "_extras",
        "_instance",
    )

    def __init__(
        self,
        nodes: Sequence[Node],
        alphabet: Sequence[Value],
        scopes: Sequence[Tuple[int, ...]],
        arrays: Sequence[np.ndarray],
        adjacency: Sequence[Tuple[int, ...]],
        pinning: Dict[Node, Value],
        locality: int,
    ) -> None:
        self.nodes = tuple(nodes)
        self.alphabet = tuple(alphabet)
        self.scopes = tuple(tuple(scope) for scope in scopes)
        self.arrays = tuple(arrays)
        self.adjacency = tuple(tuple(neighbours) for neighbours in adjacency)
        self.pinning = dict(pinning)
        self.locality = int(locality)
        self._node_index: Optional[Dict[Node, int]] = None
        self._ball_memo: Dict[BallKey, CompiledGibbs] = {}
        self._extras: Dict = {}
        self._instance: Optional[SamplingInstance] = None

    # The reconstructed instance closes over Python callables (table-backed
    # factors), so it must never travel; derived indexes are rebuilt lazily.
    _UNPICKLED_SLOTS = ("_node_index", "_instance")

    def __getstate__(self):
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in self._UNPICKLED_SLOTS
        }

    def __setstate__(self, state) -> None:
        for slot in self.__slots__:
            setattr(self, slot, state.get(slot))
        self._node_index = None
        self._instance = None
        if self._ball_memo is None:
            self._ball_memo = {}
        if self._extras is None:
            self._extras = {}

    @classmethod
    def from_instance(cls, instance: SamplingInstance) -> "InstanceSpec":
        """Snapshot an instance (dense tables come from the compiled engine).

        Parameters
        ----------
        instance : SamplingInstance
            The conditioned instance to snapshot.

        Returns
        -------
        InstanceSpec
            A picklable spec replaying the instance's ball computations.
        """
        distribution = instance.distribution
        compiled = distribution.compiled_engine()
        node_index = compiled.node_index
        adjacency = tuple(
            tuple(sorted(node_index[neighbour] for neighbour in distribution.graph.neighbors(node)))
            for node in compiled.nodes
        )
        return cls(
            nodes=compiled.nodes,
            alphabet=compiled.alphabet,
            scopes=compiled.scopes,
            arrays=compiled.arrays,
            adjacency=adjacency,
            pinning=instance.pinning.as_dict(),
            locality=distribution.locality(),
        )

    # ------------------------------------------------------------------
    @property
    def node_index(self) -> Dict[Node, int]:
        if self._node_index is None:
            self._node_index = {node: i for i, node in enumerate(self.nodes)}
        return self._node_index

    def ball_variables(self, center_variable: int, radius: int) -> frozenset:
        """Variable ids of ``B_radius(center)`` by BFS on the adjacency.

        Parameters
        ----------
        center_variable : int
            Integer id of the ball center.
        radius : int
            Ball radius in graph distance.

        Returns
        -------
        frozenset of int
            Ids of every variable within ``radius`` of the center.
        """
        seen = {center_variable}
        frontier = [center_variable]
        for _ in range(radius):
            if not frontier:
                break
            next_frontier: List[int] = []
            for variable in frontier:
                for neighbour in self.adjacency[variable]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return frozenset(seen)

    def compile_ball(self, center: Node, radius: int) -> CompiledGibbs:
        """The compiled restriction to ``B_radius(center)`` (memoised).

        Node order (``repr``-sorted) and factor order (instance factor
        order) match :meth:`repro.engine.cache.BallCache.compiled_ball`
        exactly, so worker results merge transparently into the parent
        cache.
        """
        key = (center, radius)
        compiled = self._ball_memo.get(key)
        if compiled is None:
            variables = self.ball_variables(self.node_index[center], radius)
            labels = sorted((self.nodes[v] for v in variables), key=repr)
            label_index = {node: i for i, node in enumerate(labels)}
            scopes: List[Tuple[int, ...]] = []
            arrays: List[np.ndarray] = []
            for scope, array in zip(self.scopes, self.arrays):
                if all(variable in variables for variable in scope):
                    scopes.append(tuple(label_index[self.nodes[v]] for v in scope))
                    arrays.append(array)
            compiled = CompiledGibbs(labels, self.alphabet, scopes, arrays)
            self._ball_memo[key] = compiled
        return compiled

    def to_instance(self) -> SamplingInstance:
        """Reconstruct a fully functional :class:`SamplingInstance` (memoised).

        The inverse of :meth:`from_instance`, up to model metadata: the
        graph is rebuilt from the integer adjacency, each factor becomes a
        table-backed lookup into its dense weight array, and the compiled
        engine is installed *directly from the spec's arrays* -- so every
        compiled-engine computation on the reconstruction (batched chain
        matrices included) is bit-identical to the original instance.
        This is what lets a cluster worker run chain blocks from nothing
        but the shipped spec.
        """
        if self._instance is not None:
            return self._instance
        import networkx as nx

        from repro.gibbs.distribution import GibbsDistribution
        from repro.gibbs.factors import Factor

        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        for variable, neighbours in enumerate(self.adjacency):
            for neighbour in neighbours:
                if neighbour > variable:
                    graph.add_edge(self.nodes[variable], self.nodes[neighbour])
        symbol_index = {value: code for code, value in enumerate(self.alphabet)}
        factors = []
        for scope, array in zip(self.scopes, self.arrays):
            scope_nodes = tuple(self.nodes[variable] for variable in scope)

            def lookup(*values, _array=array):
                return float(_array[tuple(symbol_index[value] for value in values)])

            factors.append(Factor(scope_nodes, lookup, name="spec-factor"))
        distribution = GibbsDistribution(
            graph, self.alphabet, factors, name="spec-reconstruction"
        )
        # Install the compiled engine straight from the shipped arrays: the
        # node order of `from_instance` is the distribution's deterministic
        # order, so this is exactly what `compiled_engine()` would rebuild,
        # without re-evaluating a single factor.
        distribution._compiled = CompiledGibbs(
            self.nodes, self.alphabet, self.scopes, self.arrays
        )
        self._instance = SamplingInstance(distribution, self.pinning)
        return self._instance

    # ------------------------------------------------------------------
    def padded_ball_marginal(self, center: Node, radius: int) -> Dict[Value, float]:
        """The Theorem 5.1 marginal at ``center`` for the given radius.

        Worker-side mirror of
        :func:`repro.inference.ssm_inference.padded_ball_marginal`: gather
        ``B_{radius + 2l}``, greedily extend the pinning over the shell
        between ``radius`` and ``radius + l`` (first feasible alphabet value
        per ``repr``-sorted shell node, exactly the reference rule), and
        return the exact conditional marginal of the padded ball.
        """
        locality = self.locality
        center_variable = self.node_index[center]
        context_ball = self.compile_ball(center, radius + 2 * locality)
        padded_variables = self.ball_variables(center_variable, radius + locality)
        inner_variables = self.ball_variables(center_variable, radius)
        padded_nodes = {self.nodes[v] for v in padded_variables}
        inner_nodes = {self.nodes[v] for v in inner_variables}
        shell = [
            node
            for node in padded_nodes
            if node not in inner_nodes and node not in self.pinning
        ]
        context_pinning = frozenset(
            (node, value)
            for node, value in self.pinning.items()
            if node in context_ball.node_index
        )
        extras_key = ("boundary-extension", center, radius, context_pinning)
        boundary = self._extras.get(extras_key)
        if boundary is None:
            boundary = self._greedy_boundary_extension(context_ball, shell)
            self._extras[extras_key] = boundary
        pinning = {
            node: value for node, value in self.pinning.items() if node in padded_nodes
        }
        pinning.update(boundary)
        if center in pinning:
            return {
                value: (1.0 if value == pinning[center] else 0.0)
                for value in self.alphabet
            }
        padded_ball = self.compile_ball(center, radius + locality)
        restricted = {
            node: value
            for node, value in pinning.items()
            if node in padded_ball.node_index
        }
        return padded_ball.marginal(center, restricted)

    def _greedy_boundary_extension(
        self, context_ball: CompiledGibbs, shell: Iterable[Node]
    ) -> Dict[Node, Value]:
        """Greedy locally-feasible extension on the compiled context ball.

        ``weights_partial`` only consults factors whose scope is fully
        assigned, which is precisely the reference rule (factors inside both
        the context and the assigned set).
        """
        codes = [-1] * len(context_ball.nodes)
        symbol_index = context_ball.symbol_index
        for node, value in self.pinning.items():
            variable = context_ball.node_index.get(node)
            if variable is not None:
                code = symbol_index.get(value)
                if code is not None:
                    codes[variable] = code
        conditionals = context_ball.conditionals
        boundary: Dict[Node, Value] = {}
        for node in sorted(shell, key=repr):
            variable = context_ball.node_index[node]
            if codes[variable] >= 0:
                continue
            weights = conditionals.weights_partial(variable, codes)
            chosen = next(
                (code for code, weight in enumerate(weights) if weight > 0.0), None
            )
            if chosen is None:
                raise RuntimeError(
                    "could not extend the pinning onto the boundary shell; "
                    "the distribution does not appear to be locally admissible"
                )
            codes[variable] = chosen
            boundary[node] = self.alphabet[chosen]
        return boundary


# ----------------------------------------------------------------------
# transport: how the spec (and chain-result matrices) cross the pipe
# ----------------------------------------------------------------------
#: Accepted values of the ``transport=`` knob threaded down from
#: :class:`~repro.runtime.executor.Runtime`.
TRANSPORTS = ("pickle", "shm")


class _ShmSpec:
    """Wire form of an :class:`InstanceSpec` with its arrays in shared memory.

    Pickles as the spec's light state (nodes, alphabet, scopes, adjacency,
    pinning, locality) plus one ``(name, dtype, shape, offset)`` descriptor
    per dense factor array; :meth:`restore` rebuilds the spec worker-side
    with zero-copy read-only views into the owner's segment.  The owner
    keeps the backing :class:`~repro.runtime.shm.SharedArrayPack` alive for
    the lifetime of the pool and unlinks it afterwards.
    """

    __slots__ = ("state", "descriptors")

    def __init__(self, state: Dict, descriptors: Tuple) -> None:
        self.state = state
        self.descriptors = descriptors

    def __getstate__(self):
        return (self.state, self.descriptors)

    def __setstate__(self, wire) -> None:
        self.state, self.descriptors = wire

    def restore(self) -> InstanceSpec:
        from repro.runtime import shm

        spec = InstanceSpec.__new__(InstanceSpec)
        spec.__setstate__(self.state)
        spec.arrays = tuple(
            shm.attach_array(descriptor) for descriptor in self.descriptors
        )
        return spec


def _spec_wire(spec: InstanceSpec, transport: str):
    """The pool-initializer payload for ``spec`` under ``transport``.

    Returns ``(payload, pack)``: with ``transport="shm"`` (and shared memory
    actually available) the payload is a :class:`_ShmSpec` whose dense
    arrays live in ``pack``; otherwise the spec itself travels by pickle and
    ``pack`` is None.  The caller owns ``pack`` and must release it once the
    pool is done.
    """
    if transport == "shm":
        from repro.runtime import shm

        pack = shm.pack_arrays(spec.arrays, label="instance-spec")
        if pack is not None:
            state = spec.__getstate__()
            state.pop("arrays")
            # Workers rebuild ball memos locally; never ship the parent's.
            state["_ball_memo"] = {}
            state["_extras"] = {}
            return _ShmSpec(state, pack.descriptors), pack
    return spec, None


# ----------------------------------------------------------------------
# worker entry points (must be importable at module top level)
# ----------------------------------------------------------------------
#: The spec installed once per worker process by the pool initializer, so a
#: worker that serves many chunks deserialises the instance exactly once and
#: keeps its ball memo warm across chunks.
_WORKER_SPEC: Optional[InstanceSpec] = None

#: The task registry: every spec-bound task body that a distributed backend
#: can execute, by kind.  One body per kind, shared by *all* backends: the
#: process pool submits these functions directly, the cluster worker looks
#: them up by the kind carried in the ``TASK`` frame, and the in-process
#: fallbacks call them with an explicit spec -- so a result is bit-identical
#: no matter where it ran.  Bodies take ``(args, spec)`` where ``args`` is
#: the picklable task payload and ``spec`` the connection/pool-level
#: :class:`InstanceSpec`.
TASK_REGISTRY: Dict[str, Callable] = {}


def register_task(kind: str) -> Callable:
    """Decorator: register a ``(args, spec) -> result`` task body by kind."""

    def decorate(body: Callable) -> Callable:
        TASK_REGISTRY[kind] = body
        return body

    return decorate

#: Default cap on the per-ball marginal-memo delta a worker ships back.
MEMO_DELTA_CAP = 64


def _install_worker_spec(spec: InstanceSpec, obs_ctx=None) -> None:
    """Pool initializer: pin the shared :class:`InstanceSpec` in this worker.

    ``spec`` is either the pickled :class:`InstanceSpec` itself or -- under
    ``transport="shm"`` -- a :class:`_ShmSpec` of descriptors, restored here
    into a spec whose dense arrays are zero-copy views of the owner's
    shared-memory segment.

    ``obs_ctx`` is the parent's trace context as a versioned wire dict
    (``None`` when tracing is off): when present, the worker process arms
    a recorder continuing the parent's trace, so spans recorded by chunk
    bodies stitch into the parent timeline (shipped back by
    :func:`_traced_chunk`).  Unknown/foreign contexts are ignored.
    """
    global _WORKER_SPEC
    if isinstance(spec, _ShmSpec):
        spec = spec.restore()
    _WORKER_SPEC = spec
    if obs_ctx is not None:
        obs.arm_remote(obs_ctx, proc="pool-worker")


def _traced_chunk(body: Callable, chunk, extra_args: tuple):
    """Pool-worker wrapper shipping trace events alongside a chunk result.

    Only submitted when the parent is tracing (so untraced runs keep the
    exact legacy submission path); returns ``(payload, events)`` with the
    worker's buffered events drained per chunk.
    """
    with obs.span("shards.chunk", kind=getattr(body, "__name__", str(body)), tasks=len(chunk)):
        payload = body(chunk, *extra_args)
    return payload, obs.drain_events()


def _compile_ball_chunk(
    tasks: Sequence[BallKey], spec: Optional[InstanceSpec] = None
) -> Dict[BallKey, CompiledGibbs]:
    """Worker body: compile one chunk of ``(center, radius)`` balls.

    ``spec`` defaults to the worker-global installed by the pool
    initializer; the in-process fallback path passes it explicitly.
    """
    spec = _WORKER_SPEC if spec is None else spec
    return {key: spec.compile_ball(*key) for key in tasks}


def _ball_marginal_chunk(
    tasks: Sequence[BallKey],
    memo_cap: Optional[int],
    spec: Optional[InstanceSpec] = None,
):
    """Worker body: padded-ball marginals for one chunk of tasks.

    Returns ``(marginals, balls, extras, memos)``.  Only the artefacts of
    *this* chunk are shipped: the padded balls the parent's serial replay
    queries (``compiled_ball(center, radius + locality)``; the context balls
    the greedy extension used stay worker-local), the chunk's boundary
    extensions, and a ``memo_cap``-capped export of each shipped ball's
    per-pinning marginal memo.  The spec defaults to the worker-global of
    :func:`_install_worker_spec` and persists across chunks of the same
    worker, so nothing already shipped by an earlier chunk is resent; the
    in-process fallback path passes its spec explicitly.
    """
    spec = _WORKER_SPEC if spec is None else spec
    marginals = {key: spec.padded_ball_marginal(*key) for key in tasks}
    wanted = {(center, radius + spec.locality) for center, radius in tasks}
    balls = {key: ball for key, ball in spec._ball_memo.items() if key in wanted}
    memos = {
        key: memo
        for key, ball in balls.items()
        if (memo := ball.export_marginal_memo(cap=memo_cap))
    }
    chunk_keys = {(center, radius) for center, radius in tasks}
    extras = {
        key: value
        for key, value in spec._extras.items()
        if (key[1], key[2]) in chunk_keys
    }
    return marginals, balls, extras, memos


@register_task("ball_marginals")
def _ball_marginals_task(args: Dict, spec: Optional[InstanceSpec] = None):
    """Registered body: Theorem 5.1 marginals for one chunk of ball tasks."""
    return _ball_marginal_chunk(args["tasks"], args["memo_cap"], spec=spec)


@register_task("compile_balls")
def _compile_balls_task(args: Dict, spec: Optional[InstanceSpec] = None):
    """Registered body: compile one chunk of ``(center, radius)`` balls."""
    return _compile_ball_chunk(args["tasks"], spec=spec)


#: Legacy chain-block kind names (the pre-kernel wire format) -> kernel names.
_LEGACY_CHAIN_KINDS = {"glauber": "glauber", "luby": "luby-glauber"}
#: Reverse view: kernel name -> the legacy alias a previous-release worker
#: understands (the coordinator ships both fields for these kernels).
_LEGACY_ALIAS_BY_KERNEL = {name: alias for alias, name in _LEGACY_CHAIN_KINDS.items()}


def _chain_block_kernel(args: Dict) -> str:
    """The kernel name of a chain-block payload (legacy ``kind`` accepted)."""
    kernel = args.get("kernel")
    if kernel is None:
        kernel = _LEGACY_CHAIN_KINDS.get(args.get("kind"))
    if kernel is None:
        raise ValueError(f"chain block names no kernel: {args!r}")
    return kernel


@register_task("chain_block")
def _chain_block_task(args: Dict, spec: Optional[InstanceSpec] = None):
    """Registered body: advance one block of chains of one kernel.

    ``args`` carries ``{"kernel", "count", "seeds", "initial"}`` (plus the
    transport-level ``spec_id``); the block runs as a batched code matrix
    on the instance reconstructed from the spec
    (:meth:`InstanceSpec.to_instance`), so entry ``c`` of the result is
    bit-identical to the kernel's serial chain run with ``seed=seeds[c]``
    -- the contract that makes chain blocks freely movable between the
    process pool, cluster workers and the in-process fallback.

    An optional ``"stats": True`` flag switches the return value to
    ``(configurations, counts)`` where ``counts[c]`` is chain ``c``'s
    accumulated failure count (gated kernels report rejected proposals via
    :meth:`~repro.sampling.kernels.ScanKernel.failure_counts`; ungated
    kernels report zeros).  This is how JVV rejection statistics (the E4
    rejection-law rows, E12's jvv-kernel row) ride the existing block wire
    format across the process and cluster backends.

    An optional ``"out": (descriptor, row_offset)`` entry -- set by the
    parent under ``transport="shm"`` -- switches the result channel: the
    block's final ``(chains, n)`` code matrix is written straight into the
    parent-owned shared segment at ``row_offset`` (no pickling of result
    configurations), and the return value shrinks to ``None`` (or
    ``(None, counts)`` with stats).  The codes written are exactly
    ``ChainBatch.codes``, so the parent's decode replays
    :meth:`~repro.runtime.chains.ChainBatch.configurations` bit for bit.
    """
    from repro.runtime.chains import ChainBatch, batched_kernel_sample
    from repro.sampling.kernels import get_kernel

    spec = _WORKER_SPEC if spec is None else spec
    kernel = get_kernel(_chain_block_kernel(args))
    out = args.get("out")
    if out is None and not args.get("stats"):
        return batched_kernel_sample(
            kernel,
            spec.to_instance(),
            args["count"],
            seeds=args["seeds"],
            initial=args.get("initial"),
        )
    batch = ChainBatch(
        spec.to_instance(), seeds=args["seeds"], initial=args.get("initial")
    )
    batch.advance(kernel, args["count"])
    counts: Optional[List[int]] = None
    if args.get("stats"):
        counter = getattr(kernel, "failure_counts", None)
        counts = (
            counter(batch).tolist()
            if counter is not None
            else [0] * batch.n_chains
        )
    if out is not None:
        from repro.runtime import shm

        descriptor, row_offset = out
        matrix = shm.attach_array(descriptor, writable=True)
        matrix[row_offset : row_offset + batch.n_chains] = batch.codes
        return None if counts is None else (None, counts)
    return batch.configurations(), counts


def run_chain_blocks(
    instance: SamplingInstance,
    kernel_name: str,
    count: int,
    seeds: Sequence,
    initial=None,
    n_workers: int = 2,
    stats: bool = False,
    transport: str = "pickle",
) -> List[Dict[Node, Value]]:
    """Run independent chains as batched blocks over a process pool.

    The process-backend leg of the unified chain path
    (:meth:`repro.runtime.executor.Runtime.run_chains`): the seed list is
    split into one contiguous block per worker, each block executes the
    registered ``chain_block`` task body on a pool worker (the
    :class:`InstanceSpec` crosses the pipe once per worker via the pool
    initializer), and the per-block results concatenate back in seed
    order.  With one block or one worker the body runs in-process -- same
    body, same results.

    ``transport="shm"`` moves the two bulk payloads out of pickle: the
    spec's dense factor arrays ship as shared-memory descriptors
    (:class:`_ShmSpec`) and each block writes its final code matrix into
    one parent-owned ``(len(seeds), n)`` shared segment, decoded here with
    the exact :meth:`~repro.runtime.chains.ChainBatch.configurations` rule
    -- results are bit-identical to the pickle transport.  When shared
    memory is unavailable the call silently degrades to pickle; the parent
    unlinks both segments before returning.

    Returns
    -------
    list of dict
        Final configurations, one per seed, bit-identical to the kernel's
        serial chains.  With ``stats=True``: ``(configurations, counts)``,
        where ``counts`` are the per-chain failure counts of gated kernels
        (zeros for ungated ones) -- the same payload flag the cluster
        coordinator ships, so rejection statistics distribute identically
        on both multi-host backends.
    """
    seeds = list(seeds)
    if not seeds:
        return ([], []) if stats else []
    spec = InstanceSpec.from_instance(instance)
    # One contiguous block per worker (same split the cluster coordinator
    # uses for its chain blocks).
    blocks = _chunk_tasks(
        seeds, 1, chunk_size=-(-len(seeds) // max(1, n_workers))
    )

    def payload(block: List, out=None) -> Dict:
        body = {
            "kernel": kernel_name,
            "count": count,
            "seeds": block,
            "initial": dict(initial) if initial is not None else None,
        }
        if stats:
            body["stats"] = True
        if out is not None:
            body["out"] = out
        return body

    def merge(results, counts, block_result) -> None:
        if stats:
            block_configs, block_counts = block_result
            if block_configs is not None:
                results.extend(block_configs)
            counts.extend(block_counts)
        elif block_result is not None:
            results.extend(block_result)

    results: List[Dict[Node, Value]] = []
    counts: List[int] = []
    if len(blocks) <= 1 or n_workers <= 1:
        for block in blocks:
            with obs.span(
                "shards.chain_block", kernel=kernel_name, chains=len(block),
                mode="inprocess",
            ):
                merge(results, counts, _chain_block_task(payload(block), spec=spec))
        return (results, counts) if stats else results
    ctx = obs.wire_context()
    wire_spec, spec_pack = _spec_wire(spec, transport)
    out_pack = None
    if spec_pack is not None:
        from repro.runtime import shm

        out_pack = shm.pack_arrays(
            [np.zeros((len(seeds), len(spec.nodes)), dtype=np.int64)],
            label="chain-codes",
        )
    offsets = np.cumsum([0] + [len(block) for block in blocks[:-1]]).tolist()
    try:
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(blocks)),
            initializer=_install_worker_spec,
            initargs=(wire_spec, ctx),
        ) as pool:
            payloads = [
                payload(
                    block,
                    out=(
                        (out_pack.descriptors[0], offset)
                        if out_pack is not None
                        else None
                    ),
                )
                for block, offset in zip(blocks, offsets)
            ]
            if ctx is None:
                futures = [
                    pool.submit(_chain_block_task, body) for body in payloads
                ]
            else:
                futures = [
                    pool.submit(_traced_chunk, _chain_block_task, body, ())
                    for body in payloads
                ]
            try:
                for future in futures:  # block order == seed order
                    block_result = future.result()
                    if ctx is not None:
                        block_result, events = block_result
                        obs.absorb_events(events)
                    merge(results, counts, block_result)
            finally:
                for future in futures:
                    future.cancel()
        if out_pack is not None:
            # Decode the shared code matrix with the exact
            # ChainBatch.configurations() rule (spec.nodes/alphabet are the
            # compiled engine's, so this is bit-identical to pickled results).
            alphabet = spec.alphabet
            nodes = spec.nodes
            results = [
                {node: alphabet[code] for node, code in zip(nodes, row)}
                for row in out_pack.view(0).tolist()
            ]
        return (results, counts) if stats else results
    finally:
        if spec_pack is not None:
            spec_pack.release()
        if out_pack is not None:
            out_pack.release()


def _chunk_tasks(
    tasks: Sequence, n_workers: int, chunk_size: Optional[int] = None
) -> List[List]:
    """Split tasks into contiguous chunks sized for streaming.

    The default aims at roughly four chunks per worker -- small enough that
    the first result lands early and stragglers stay balanced, large enough
    to amortise the per-chunk submit/pickle round trip.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if chunk_size is None:
        chunk_size = max(1, -(-len(tasks) // (4 * max(1, n_workers))))
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    return [tasks[i : i + chunk_size] for i in range(0, len(tasks), chunk_size)]


def _stream_chunks(spec, chunks, body, extra_args, n_workers, transport="pickle"):
    """Drive chunks through a futures pool, yielding payloads as they land.

    ``body(chunk, *extra_args, spec=...)`` is a module-level chunk body
    from this file; with a pool it is submitted directly (the worker-global
    spec applies), in-process it is called with the explicit spec.  The
    spec crosses the pipe exactly once per worker via the pool initializer
    -- as descriptors into one shared-memory segment under
    ``transport="shm"`` (falling back to pickle when shared memory is
    unavailable; the segment is unlinked when the stream finishes).
    A failed chunk -- worker exception, broken pool, or the in-process
    fallback raising -- surfaces as a ``RuntimeError`` naming the chunk
    instead of a hang; pending chunks are cancelled both on failure and
    when the consumer abandons the generator early.

    When tracing is on, the parent's trace context rides the initializer
    and chunks are submitted through :func:`_traced_chunk`, so worker-side
    spans come back with each payload and are absorbed here; queue depth
    and chunk counts land in the metrics registry.  With obs off the
    submission path is exactly the legacy one.
    """
    handle = obs.active()
    if len(chunks) <= 1 or n_workers <= 1:
        for chunk in chunks:
            try:
                with obs.span("shards.chunk", kind=getattr(body, "__name__", str(body)),
                              tasks=len(chunk), mode="inprocess"):
                    payload = body(chunk, *extra_args, spec=spec)
            except Exception as error:
                raise RuntimeError(
                    f"ball shard failed on chunk {chunk!r}: {error}"
                ) from error
            yield payload
        return
    ctx = obs.wire_context()
    pending_gauge = (
        handle.metrics.gauge("runtime.shards.pending") if handle is not None else None
    )
    wire_spec, spec_pack = _spec_wire(spec, transport)
    try:
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(chunks)),
            initializer=_install_worker_spec,
            initargs=(wire_spec, ctx),
        ) as pool:
            if ctx is None:
                futures = {pool.submit(body, chunk, *extra_args): chunk for chunk in chunks}
            else:
                futures = {
                    pool.submit(_traced_chunk, body, chunk, extra_args): chunk
                    for chunk in chunks
                }
            if pending_gauge is not None:
                pending_gauge.set(len(futures))
            try:
                for future in as_completed(futures):
                    try:
                        payload = future.result()
                    except Exception as error:
                        chunk = futures[future]
                        raise RuntimeError(
                            f"ball shard failed on chunk {chunk!r}: {error}"
                        ) from error
                    if ctx is not None:
                        payload, events = payload
                        obs.absorb_events(events)
                    if handle is not None:
                        handle.metrics.counter("runtime.shards.chunks").inc()
                        if pending_gauge is not None:
                            pending_gauge.add(-1)
                    yield payload
            finally:
                for future in futures:
                    future.cancel()
    finally:
        if spec_pack is not None:
            spec_pack.release()


# ----------------------------------------------------------------------
# parent-side streaming API
# ----------------------------------------------------------------------
def stream_ball_marginal_tasks(
    instance: SamplingInstance,
    tasks: Sequence[BallKey],
    n_workers: int = 2,
    chunk_size: Optional[int] = None,
    memo_cap: Optional[int] = MEMO_DELTA_CAP,
    transport: str = "pickle",
) -> Iterator[Tuple[BallKey, Dict[Value, float]]]:
    """Stream Theorem 5.1 marginals for heterogeneous ``(center, radius)`` tasks.

    The barrier-free core of the process backend: tasks are chunked, the
    chunks run on a ``ProcessPoolExecutor`` (the picklable
    :class:`InstanceSpec` is shipped once per worker via the pool
    initializer), and each chunk's results are yielded -- and merged into the
    parent's :class:`~repro.engine.cache.BallCache` via
    :meth:`~repro.engine.cache.BallCache.adopt` -- the moment the chunk
    completes, in *completion* order.  The parent can therefore consume
    radius-``r`` results while radius-``r + 1`` balls are still compiling in
    the workers, which is exactly the overlap of the paper's barrier-free
    LOCAL model.

    Parameters
    ----------
    instance : SamplingInstance
        The instance whose distribution owns the target ball cache.
    tasks : sequence of (node, int)
        ``(center, radius)`` pairs; radii may differ between tasks.
    n_workers : int
        Process-pool width; with one worker (or one chunk) the stream runs
        in-process with no pool, bit-identically.
    chunk_size : int, optional
        Tasks per submitted chunk (default: about four chunks per worker).
    memo_cap : int, optional
        Per-ball cap on the marginal-memo delta shipped back (``None``
        ships every entry, ``0`` disables memo deltas).
    transport : str
        ``"pickle"`` (default) ships the spec by value; ``"shm"`` ships its
        dense arrays as shared-memory descriptors (pickle fallback when
        unavailable).

    Yields
    ------
    ((node, int), dict)
        ``((center, radius), marginal)`` pairs in completion order.

    Raises
    ------
    RuntimeError
        When a worker chunk fails, naming the chunk and chaining the worker
        exception; remaining chunks are cancelled.  Abandoning the generator
        early (``close()``) likewise cancels everything still pending.
    """
    tasks = list(tasks)
    if not tasks:
        return
    spec = InstanceSpec.from_instance(instance)
    cache = instance.distribution.ball_cache()
    chunks = _chunk_tasks(tasks, n_workers, chunk_size)
    payloads = _stream_chunks(
        spec,
        chunks,
        body=_ball_marginal_chunk,
        extra_args=(memo_cap,),
        n_workers=n_workers,
        transport=transport,
    )
    for marginals, balls, extras, memos in payloads:
        cache.adopt(balls=balls, extras=extras, memos=memos)
        for key, marginal in marginals.items():
            yield key, marginal


def stream_padded_ball_marginals(
    instance: SamplingInstance,
    centers: Sequence[Node],
    radius: int,
    n_workers: int = 2,
    chunk_size: Optional[int] = None,
    memo_cap: Optional[int] = MEMO_DELTA_CAP,
    transport: str = "pickle",
) -> Iterator[Tuple[Node, Dict[Value, float]]]:
    """Stream Theorem 5.1 marginals at many centers of one radius.

    A single-radius convenience wrapper over
    :func:`stream_ball_marginal_tasks` yielding ``(center, marginal)`` pairs
    in completion order; each shard's compiled balls, boundary extensions
    and capped marginal-memo deltas are adopted into the parent cache as the
    shard arrives.  Per-ball results are bit-identical to the serial
    :func:`repro.inference.ssm_inference.padded_ball_marginal` loop.
    """
    for (center, _), marginal in stream_ball_marginal_tasks(
        instance,
        [(center, radius) for center in centers],
        n_workers=n_workers,
        chunk_size=chunk_size,
        memo_cap=memo_cap,
        transport=transport,
    ):
        yield center, marginal


def stream_compiled_balls(
    instance: SamplingInstance,
    tasks: Sequence[BallKey],
    n_workers: int = 2,
    chunk_size: Optional[int] = None,
    transport: str = "pickle",
) -> Iterator[Tuple[BallKey, CompiledGibbs]]:
    """Stream ``(center, radius)`` ball compilations from a process pool.

    Duplicate tasks are dropped; each chunk of compiled balls is adopted
    into the distribution's :class:`~repro.engine.cache.BallCache` and
    yielded the moment it completes, so the parent can start querying early
    balls while later ones are still compiling.
    """
    tasks = list(dict.fromkeys(tasks))
    if not tasks:
        return
    spec = InstanceSpec.from_instance(instance)
    cache = instance.distribution.ball_cache()
    chunks = _chunk_tasks(tasks, n_workers, chunk_size)
    payloads = _stream_chunks(
        spec,
        chunks,
        body=_compile_ball_chunk,
        extra_args=(),
        n_workers=n_workers,
        transport=transport,
    )
    for compiled in payloads:
        cache.adopt(balls=compiled)
        yield from compiled.items()


# ----------------------------------------------------------------------
# barrier wrappers (drain the stream; kept as the dict-returning API)
# ----------------------------------------------------------------------
def shard_compiled_balls(
    instance: SamplingInstance,
    tasks: Sequence[BallKey],
    n_workers: int = 2,
    transport: str = "pickle",
) -> Dict[BallKey, CompiledGibbs]:
    """Compile ``(center, radius)`` balls across a process pool (barrier).

    Drains :func:`stream_compiled_balls` into a dict: the compiled balls are
    merged into the distribution's :class:`~repro.engine.cache.BallCache`
    (so subsequent serial queries are cache hits) and returned together.
    Callers that can make use of partial results should iterate the stream
    instead.
    """
    return dict(
        stream_compiled_balls(instance, tasks, n_workers=n_workers, transport=transport)
    )


def shard_padded_ball_marginals(
    instance: SamplingInstance,
    centers: Sequence[Node],
    radius: int,
    n_workers: int = 2,
    transport: str = "pickle",
) -> Dict[Node, Dict[Value, float]]:
    """Theorem 5.1 marginals at many centers, sharded across processes (barrier).

    Drains :func:`stream_padded_ball_marginals` into a per-center dict; the
    workers' compiled balls, boundary extensions and capped marginal-memo
    deltas are merged back into the distribution's cache shard by shard.
    Results are bit-identical to the serial
    :func:`repro.inference.ssm_inference.padded_ball_marginal` loop.
    """
    return dict(
        stream_padded_ball_marginals(
            instance, centers, radius, n_workers=n_workers, transport=transport
        )
    )


# ----------------------------------------------------------------------
# generic fork-based map
# ----------------------------------------------------------------------
_FORK_TASK: Optional[Callable] = None


def _invoke_fork_task(item):
    return _FORK_TASK(item)


def _invoke_fork_task_indexed(pair):
    index, item = pair
    return index, _FORK_TASK(item)


def process_map(
    function: Callable,
    items: Iterable,
    n_workers: int = 2,
    fallback_serial: bool = True,
) -> List:
    """Map ``function`` over ``items`` in a pool of forked processes.

    The fork start method lets workers inherit ``function`` -- including
    closures over unpicklable model objects -- from the parent's address
    space; only the items and results round-trip through pickle.  On
    platforms without fork (or with a single item) the map degrades to a
    serial loop when ``fallback_serial`` is set.

    Parameters
    ----------
    function : callable
        Applied to every item; inherited by forked workers.
    items : iterable
        Work items; each item and its result must pickle.
    n_workers : int
        Size of the forked pool.
    fallback_serial : bool
        Whether to degrade to a serial loop without fork support.

    Returns
    -------
    list
        ``[function(item) for item in items]``, in item order.
    """
    items = list(items)
    if not items:
        return []
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = None
    if context is None or len(items) == 1:
        if context is None and not fallback_serial:
            raise RuntimeError("process_map requires the fork start method")
        return [function(item) for item in items]
    global _FORK_TASK
    previous = _FORK_TASK
    _FORK_TASK = function
    try:
        with context.Pool(processes=max(1, n_workers)) as pool:
            return pool.map(_invoke_fork_task, items)
    finally:
        _FORK_TASK = previous


def process_map_unordered(
    function: Callable,
    items: Iterable,
    n_workers: int = 2,
) -> Iterator[Tuple[int, object]]:
    """Map ``function`` over ``items``, yielding results as they complete.

    The streaming sibling of :func:`process_map`: results are yielded as
    ``(index, result)`` pairs in *completion* order -- ``index`` is the
    item's position in ``items``, so callers can reassociate out-of-order
    results.  Like :func:`process_map`, the fork start method lets workers
    inherit ``function`` (closures included) without pickling; on platforms
    without fork, or with a single item, the map degrades to a lazy serial
    loop yielding in order.

    Parameters
    ----------
    function : callable
        Applied to every item; inherited by forked workers.
    items : iterable
        Work items; each item and its result must pickle.
    n_workers : int
        Size of the forked pool.

    Yields
    ------
    (int, object)
        ``(index, function(items[index]))`` in completion order.
    """
    items = list(items)
    if not items:
        return
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = None
    if context is None or len(items) == 1:
        for index, item in enumerate(items):
            yield index, function(item)
        return
    global _FORK_TASK
    _FORK_TASK = function
    try:
        # The pool forks here, snapshotting the function global; clearing it
        # in the finally block cannot affect the already-forked workers.
        with context.Pool(processes=max(1, n_workers)) as pool:
            yield from pool.imap_unordered(_invoke_fork_task_indexed, enumerate(items))
    finally:
        # Reset to None rather than a saved "previous" value: interleaved
        # generators would otherwise reinstall each other's functions on
        # exit, pinning a stale closure (and its captured model) for the
        # life of the process.
        if _FORK_TASK is function:
            _FORK_TASK = None
