"""Shared-memory transport for the process backend (the zero-copy data plane).

The process backend's standing tax is serialization: every task used to ship
the ``InstanceSpec`` dense factor arrays -- and every chain block its
``(chains, n)`` code matrix -- through pickle on each hop.  This module moves
those payloads into :mod:`multiprocessing.shared_memory` segments instead:

* the owner packs its ndarrays into **one** segment per call
  (:class:`SharedArrayPack`) and ships only tiny ``(name, dtype, shape,
  offset)`` descriptors over the pipe;
* workers reconstruct zero-copy views from the descriptors
  (:func:`attach_array`), caching the segment mapping per process so N tasks
  against the same spec map it once;
* lifetime is leak-proof by construction: **only the owner ever creates or
  unlinks a segment**.  ``weakref.finalize`` guarantees the unlink even if
  the owner forgets :meth:`SharedArrayPack.release` (e.g. an exception before
  ``Runtime.shutdown()``), and a killed worker leaks nothing because workers
  only hold attachments, which the kernel drops with the process.

Pickle remains the automatic fallback: :func:`shm_available` probes the
platform once (``/dev/shm`` may be absent or full inside minimal containers),
and every call site treats ``pack_arrays() is None`` as "use pickle".

Wire form of a descriptor (the only thing that crosses the pipe)::

    (segment_name: str, dtype: str, shape: tuple[int, ...], offset: int)

Attachments on Python < 3.13 must side-step the resource tracker: attaching
registers the segment as if this process owned it, so the first worker to
exit would unlink a segment it never created.  :func:`_attach_segment`
unregisters the attachment immediately, restoring owner-only lifetime.
"""

from __future__ import annotations

import atexit
import os
import secrets
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

__all__ = [
    "SEGMENT_PREFIX",
    "ArrayDescriptor",
    "SharedArrayPack",
    "attach_array",
    "detach_all",
    "live_segment_names",
    "pack_arrays",
    "release_all",
    "shm_available",
]

#: Every segment this module creates is named ``repro-shm-<pid>-<nonce>`` so
#: leak checks (tests, ci_tier1.sh) can list ``/dev/shm`` and filter.
SEGMENT_PREFIX = "repro-shm-"

#: ``(segment_name, dtype, shape, offset)`` -- the pickled wire form.
ArrayDescriptor = Tuple[str, str, Tuple[int, ...], int]

#: Byte alignment for each array inside a segment (cache-line sized).
_ALIGN = 64

# Owner-side registry of live packs, keyed by segment name.  release_all()
# (called from Runtime.shutdown()) and the leak tests read it.
_LIVE_PACKS: "weakref.WeakValueDictionary[str, SharedArrayPack]" = (
    weakref.WeakValueDictionary()
)

# Worker-side attachment cache: segment name -> SharedMemory mapping.  One
# mapping per process regardless of how many tasks reference the segment.
_ATTACHED: Dict[str, object] = {}

_availability: Optional[bool] = None


def shm_available() -> bool:
    """True when shared-memory segments can actually be created here.

    Probes once by creating and unlinking a tiny segment; minimal containers
    can lack ``/dev/shm`` (or mount it read-only), in which case every
    transport call site silently falls back to pickle.
    """
    global _availability
    if _availability is None:
        if _shared_memory is None:
            _availability = False
        else:
            try:
                probe = _shared_memory.SharedMemory(
                    create=True, size=16, name=_segment_name()
                )
            except (OSError, ValueError):
                _availability = False
            else:
                probe.close()
                probe.unlink()
                _availability = True
    return _availability


def _segment_name() -> str:
    # secrets, not numpy: transport must never touch the sampling RNG streams.
    return f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _unregister_attachment(segment: object) -> None:
    """Stop the resource tracker from treating an attachment as ownership.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the segment with
    the resource tracker exactly like ``create=True`` does, so an attaching
    worker's exit would unlink (or double-unlink) the owner's segment.
    """
    try:  # pragma: no cover - defensive: tracker internals are CPython's
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


class SharedArrayPack:
    """Owner-side pack of ndarrays living in one shared-memory segment.

    Create with :func:`pack_arrays` (which handles the pickle fallback).
    ``descriptors[i]`` reconstructs ``arrays[i]`` in any process via
    :func:`attach_array`.  The segment is unlinked exactly once, by the
    owner: explicitly via :meth:`release`, or by the ``weakref.finalize``
    fallback when the pack is garbage-collected.
    """

    __slots__ = ("name", "descriptors", "nbytes", "_segment", "_finalizer", "__weakref__")

    def __init__(self, arrays: Sequence[np.ndarray], label: str = "") -> None:
        if _shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        contiguous = [np.ascontiguousarray(array) for array in arrays]
        offsets: List[int] = []
        total = 0
        for array in contiguous:
            total = _align(total)
            offsets.append(total)
            total += array.nbytes
        self.name = _segment_name()
        self._segment = _shared_memory.SharedMemory(
            create=True, size=max(total, 1), name=self.name
        )
        self.nbytes = max(total, 1)
        descriptors: List[ArrayDescriptor] = []
        for array, offset in zip(contiguous, offsets):
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=self._segment.buf, offset=offset
            )
            view[...] = array
            descriptors.append(
                (self.name, array.dtype.str, tuple(array.shape), offset)
            )
        self.descriptors: Tuple[ArrayDescriptor, ...] = tuple(descriptors)
        # Leak-proofing: unlink even if release() is never called.
        self._finalizer = weakref.finalize(
            self, _release_segment, self._segment
        )
        _LIVE_PACKS[self.name] = self
        handle = obs.active()
        if handle is not None:
            handle.metrics.counter("runtime.shm.segments").add(1, label=label or "pack")
            handle.metrics.counter("runtime.shm.bytes").add(self.nbytes)

    def view(self, index: int) -> np.ndarray:
        """Owner-side zero-copy view of packed array ``index``."""
        name, dtype, shape, offset = self.descriptors[index]
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._segment.buf, offset=offset)

    def release(self) -> None:
        """Close the mapping and unlink the segment (idempotent)."""
        self._finalizer()
        _LIVE_PACKS.pop(self.name, None)

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def _release_segment(segment: object) -> None:
    try:
        segment.close()  # type: ignore[attr-defined]
    except (OSError, ValueError):  # pragma: no cover - already closed
        pass
    try:
        segment.unlink()  # type: ignore[attr-defined]
    except (OSError, ValueError):  # pragma: no cover - already unlinked
        pass


def pack_arrays(
    arrays: Sequence[np.ndarray], label: str = ""
) -> Optional[SharedArrayPack]:
    """Pack ``arrays`` into one shared segment, or None => use pickle.

    Returns None when shared memory is unavailable on this platform or the
    segment cannot be created (e.g. ``/dev/shm`` is full) -- callers fall
    back to shipping the arrays by value.
    """
    if not shm_available():
        return None
    try:
        return SharedArrayPack(arrays, label=label)
    except (OSError, ValueError):
        return None


def attach_array(descriptor: ArrayDescriptor, writable: bool = False) -> np.ndarray:
    """Zero-copy view of a packed array in this (usually worker) process.

    The segment mapping is cached per process: N tasks against the same spec
    map it once.  Views default to read-only -- spec arrays are shared input;
    pass ``writable=True`` only for owner-allocated output matrices.
    """
    name, dtype, shape, offset = descriptor
    segment = _ATTACHED.get(name)
    if segment is None:
        if _shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        pack = _LIVE_PACKS.get(name)
        if pack is not None:
            # Owner process: reuse the existing mapping, never re-attach.
            segment = pack._segment
        else:
            segment = _shared_memory.SharedMemory(name=name)
            _unregister_attachment(segment)
            _ATTACHED[name] = segment
    view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
    view.flags.writeable = bool(writable)
    return view


def detach_all() -> None:
    """Close every cached attachment (worker exit; also used by tests)."""
    while _ATTACHED:
        _, segment = _ATTACHED.popitem()
        try:
            segment.close()  # type: ignore[attr-defined]
        except (OSError, ValueError):  # pragma: no cover
            pass


def release_all() -> None:
    """Unlink every live owner-side pack (Runtime.shutdown() safety net)."""
    for name in list(_LIVE_PACKS):
        pack = _LIVE_PACKS.get(name)
        if pack is not None:
            pack.release()


def live_segment_names() -> List[str]:
    """Names of segments this process currently owns (leak tests)."""
    return sorted(
        name
        for name, pack in list(_LIVE_PACKS.items())
        if pack is not None and pack._finalizer.alive
    )


def leaked_dev_shm_segments() -> List[str]:
    """``/dev/shm`` entries matching our prefix (cross-process leak check)."""
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(entry for entry in entries if entry.startswith(SEGMENT_PREFIX))


atexit.register(detach_all)
