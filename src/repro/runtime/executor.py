"""The ``Runtime`` facade: *how* work executes, separate from *what* it is.

Three backends:

``serial``
    Today's behaviour -- every loop runs in-process, one item at a time.
    This is the default everywhere, so ``runtime=None`` changes nothing.
``batched``
    Chain workloads run on the batched code-matrix runner of
    :mod:`repro.runtime.chains`: ``n_chains`` independent chains advance
    per step with one set of vectorised gathers.  Bit-identical per chain
    to the serial samplers under the spawned-seed convention.
``process``
    Per-node LOCAL computations (ball compilation, boundary extension, ball
    marginals) shard across OS processes via :mod:`repro.runtime.shards`,
    and coarse-grained experiment loops fan out through :meth:`Runtime.map`.

The facade is threaded through ``sampling/glauber.py``,
``inference/ssm_inference.py``, the LOCAL driver in ``localmodel/local.py``
and the E5/E6/E7/E8/E12 experiment entry points as a ``runtime=`` parameter
that defaults to serial, mirroring how ``engine=`` selects the evaluation
backend (see :mod:`repro.engine`).  The two knobs compose: ``engine``
decides how a single quantity is evaluated, ``runtime`` decides how many of
them execute at once.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.gibbs.instance import SamplingInstance
from repro.runtime.chains import (
    batched_glauber_sample,
    batched_luby_glauber_sample,
    chain_seed_sequences,
)
from repro.runtime.shards import (
    process_map,
    shard_compiled_balls,
    shard_padded_ball_marginals,
)

Node = Hashable
Value = Hashable

#: In-process, one item at a time (the default everywhere).
SERIAL_BACKEND = "serial"
#: Many chains as one code matrix (see :mod:`repro.runtime.chains`).
BATCHED_BACKEND = "batched"
#: Per-node work sharded across OS processes (see :mod:`repro.runtime.shards`).
PROCESS_BACKEND = "process"

_BACKENDS = (SERIAL_BACKEND, BATCHED_BACKEND, PROCESS_BACKEND)


class Runtime:
    """An execution policy: backend, chain batch width, worker count."""

    __slots__ = ("backend", "n_chains", "n_workers")

    def __init__(
        self,
        backend: str = SERIAL_BACKEND,
        n_chains: int = 1,
        n_workers: Optional[int] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown runtime backend {backend!r}; expected one of {_BACKENDS}"
            )
        if n_chains < 1:
            raise ValueError("n_chains must be at least 1")
        self.backend = backend
        self.n_chains = int(n_chains)
        if n_workers is None:
            n_workers = (os.cpu_count() or 1) if backend == PROCESS_BACKEND else 1
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.n_workers = int(n_workers)

    # ------------------------------------------------------------------
    @property
    def is_serial(self) -> bool:
        return self.backend == SERIAL_BACKEND

    @property
    def is_batched(self) -> bool:
        return self.backend == BATCHED_BACKEND

    @property
    def is_process(self) -> bool:
        return self.backend == PROCESS_BACKEND

    # ------------------------------------------------------------------
    def map(self, function: Callable, items: Iterable) -> List:
        """Map a function over independent items under this runtime.

        The process backend fans out over forked workers (the function and
        its closure are inherited, so unpicklable model objects are fine;
        items and results must pickle); the other backends run the plain
        serial loop.
        """
        if self.is_process:
            return process_map(function, items, n_workers=self.n_workers)
        return [function(item) for item in items]

    # ------------------------------------------------------------------
    def glauber_sample(
        self,
        instance: SamplingInstance,
        steps: int,
        seed=0,
        seeds: Optional[Sequence] = None,
        initial: Optional[Dict[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> List[Dict[Node, Value]]:
        """Final states of ``n_chains`` independent Glauber chains.

        All backends use the same per-chain seed convention
        (:func:`~repro.runtime.chains.chain_seed_sequences`), so the result
        is identical across backends; only the execution strategy differs.
        """
        if seeds is None:
            seeds = chain_seed_sequences(seed, self.n_chains)
        if self.is_batched:
            return batched_glauber_sample(
                instance, steps, seeds=seeds, initial=initial, engine=engine
            )
        from repro.sampling.glauber import glauber_sample

        # Chains are independent, so the process backend fans the per-seed
        # serial chains out over workers via self.map (serial backend: plain
        # loop); the per-chain results are identical either way.
        return self.map(
            lambda chain_seed: glauber_sample(
                instance, steps, seed=chain_seed, initial=initial, engine=engine
            ),
            seeds,
        )

    def luby_glauber_sample(
        self,
        instance: SamplingInstance,
        rounds: int,
        seed=0,
        seeds: Optional[Sequence] = None,
        initial: Optional[Dict[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> List[Dict[Node, Value]]:
        """Final states of ``n_chains`` independent LubyGlauber chains."""
        if seeds is None:
            seeds = chain_seed_sequences(seed, self.n_chains)
        if self.is_batched:
            return batched_luby_glauber_sample(
                instance, rounds, seeds=seeds, initial=initial, engine=engine
            )
        from repro.sampling.glauber import luby_glauber_sample

        return self.map(
            lambda chain_seed: luby_glauber_sample(
                instance, rounds, seed=chain_seed, initial=initial, engine=engine
            ),
            seeds,
        )

    # ------------------------------------------------------------------
    def ball_marginals(
        self,
        instance: SamplingInstance,
        nodes: Sequence[Node],
        radius: int,
        engine: Optional[str] = None,
    ) -> Dict[Node, Dict[Value, float]]:
        """Theorem 5.1 padded-ball marginals at many centers.

        The process backend shards the per-node ball computations across
        workers and warms the parent's ball cache with their compilations;
        other backends run the serial loop.  The shard transport is
        compiled-only, so an explicit ``engine="dict"`` request keeps the
        serial loop and its reference backend.
        """
        from repro.engine import resolve_engine

        if (
            self.is_process
            and len(nodes) > 1
            and resolve_engine(engine) == "compiled"
        ):
            return shard_padded_ball_marginals(
                instance, nodes, radius, n_workers=self.n_workers
            )
        from repro.inference.ssm_inference import padded_ball_marginal

        return {
            node: padded_ball_marginal(instance, node, radius, engine=engine)
            for node in nodes
        }

    def warm_ball_cache(
        self, instance: SamplingInstance, tasks: Sequence[Tuple[Node, int]]
    ) -> int:
        """Precompile ``(center, radius)`` balls into the distribution cache.

        Returns the number of balls compiled; with the process backend the
        compilation itself is sharded across workers.
        """
        if self.is_process and len(tasks) > 1:
            return len(shard_compiled_balls(instance, tasks, n_workers=self.n_workers))
        cache = instance.distribution.ball_cache()
        for center, radius in tasks:
            cache.compiled_ball(center, radius)
        return len(tasks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Runtime(backend={self.backend!r}, n_chains={self.n_chains}, "
            f"n_workers={self.n_workers})"
        )


#: The default runtime: today's serial behaviour.
SERIAL_RUNTIME = Runtime()


def resolve_runtime(runtime: Union[None, str, Runtime] = None) -> Runtime:
    """Normalise a ``runtime=`` argument, rejecting unknown backends.

    ``None`` means "serial" (the default everywhere), a string selects a
    backend with default parameters, and a :class:`Runtime` passes through.
    """
    if runtime is None:
        return SERIAL_RUNTIME
    if isinstance(runtime, Runtime):
        return runtime
    if isinstance(runtime, str):
        return Runtime(backend=runtime)
    raise ValueError(
        f"expected None, a backend name or a Runtime, got {runtime!r}"
    )
