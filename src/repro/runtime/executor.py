"""The ``Runtime`` facade: *how* work executes, separate from *what* it is.

Four backends:

``serial``
    Today's behaviour -- every loop runs in-process, one item at a time.
    This is the default everywhere, so ``runtime=None`` changes nothing.
``batched``
    Chain workloads run on the batched code-matrix runner of
    :mod:`repro.runtime.chains`: ``n_chains`` independent chains advance
    per step with one set of vectorised gathers.  Bit-identical per chain
    to the serial samplers under the spawned-seed convention.
``process``
    Per-node LOCAL computations (ball compilation, boundary extension, ball
    marginals) shard across OS processes via :mod:`repro.runtime.shards`,
    and coarse-grained experiment loops fan out through :meth:`Runtime.map`.
    The sharding is *streaming*: :meth:`Runtime.stream_ball_marginals`,
    :meth:`Runtime.map_unordered` and :meth:`Runtime.submit` hand results
    back as futures complete, so parent-side work overlaps with in-flight
    shards instead of idling at a ``pool.map`` barrier.
``cluster``
    The same shard workloads (plus batched chain blocks) run on *worker
    processes reached over TCP* (:mod:`repro.cluster`): the picklable
    ``InstanceSpec`` ships once per worker connection, the coordinator
    dispatches least-loaded with heartbeat liveness, and tasks from dead
    workers are requeued transparently.  ``Runtime(backend="cluster",
    addresses=[...])`` targets existing workers (any hosts); plain
    ``runtime="cluster"`` spawns localhost workers on first use.  Results
    are bit-identical to every other backend.

Chain workloads of every registered
:class:`~repro.sampling.kernels.ChainKernel` (Glauber, LubyGlauber, JVV
rejection, sequential scan, ...) execute through the single
:meth:`Runtime.run_chains` path on all four backends; the distributed legs
dispatch the registered ``chain_block`` task body of
:data:`repro.runtime.shards.TASK_REGISTRY`, so adding a kernel adds zero
backend plumbing.

The facade is threaded through ``sampling/glauber.py``,
``inference/ssm_inference.py``, the LOCAL driver in ``localmodel/local.py``
and the E4/E5/E6/E7/E8/E12 experiment entry points as a ``runtime=`` parameter
that defaults to serial, mirroring how ``engine=`` selects the evaluation
backend (see :mod:`repro.engine`).  The two knobs compose: ``engine``
decides how a single quantity is evaluated, ``runtime`` decides how many of
them execute at once.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.gibbs.instance import SamplingInstance
from repro.runtime.chains import (
    ChainState,
    PackedBatch,
    batched_kernel_sample,
    chain_seed_sequences,
    make_chain_state,
)
from repro.runtime.shards import (
    TRANSPORTS,
    process_map,
    process_map_unordered,
    run_chain_blocks,
    stream_ball_marginal_tasks,
    stream_compiled_balls,
    stream_padded_ball_marginals,
)
from repro.sampling.kernels import ChainKernel, resolve_kernel

Node = Hashable
Value = Hashable


def _picklable(function: Callable) -> bool:
    """Whether a callable can cross the cluster's socket transport.

    Functions defined in ``__main__`` are excluded even though they pickle
    locally (by reference): a worker process cannot import the caller's
    script module, so dispatching them would fail remotely -- they take the
    in-process fallback instead.
    """
    import pickle

    if getattr(function, "__module__", None) in (None, "__main__"):
        return False
    try:
        pickle.dumps(function)
    except Exception:
        return False
    return True

#: In-process, one item at a time (the default everywhere).
SERIAL_BACKEND = "serial"
#: Many chains as one code matrix (see :mod:`repro.runtime.chains`).
BATCHED_BACKEND = "batched"
#: Per-node work sharded across OS processes (see :mod:`repro.runtime.shards`).
PROCESS_BACKEND = "process"
#: Work dispatched to coordinator-managed TCP workers (see :mod:`repro.cluster`).
CLUSTER_BACKEND = "cluster"

_BACKENDS = (SERIAL_BACKEND, BATCHED_BACKEND, PROCESS_BACKEND, CLUSTER_BACKEND)

#: Chain-update budget (``chains * count``) below which the process backend
#: runs the registered ``chain_block`` task body in-process instead of
#: spinning up a pool.  Measured on the benchmark box: a fresh fork-pool
#: spin-up plus teardown costs ~45-60 ms (the dominant phase of the
#: ``process_ball_shards`` residual in ``BENCH_runtime.json``), while the
#: batched runner sustains well over 200k single-site updates per second --
#: so below ~10k updates the pool can never pay for itself.  Results are
#: bit-identical either way (same task body, same per-chain seed streams);
#: pass ``inline_threshold=0`` to always dispatch.
INLINE_CHAIN_UPDATES = 10_000


class Runtime:
    """An execution policy: backend, chain batch width, worker count.

    Parameters
    ----------
    backend : str
        One of :data:`SERIAL_BACKEND`, :data:`BATCHED_BACKEND`,
        :data:`PROCESS_BACKEND`.
    n_chains : int
        Chain batch width used by the sampling entry points.
    n_workers : int, optional
        Worker-pool width for the process backend (default: the CPU count).
        For the cluster backend: the number of localhost workers to spawn
        when no ``addresses`` are given (default 2), or the address count.
        Other backends default to 1.
    addresses : sequence, optional
        Cluster backend only: worker addresses as ``(host, port)`` pairs or
        ``"host:port"`` strings.  ``None`` makes the runtime spawn (and own)
        ``n_workers`` localhost workers on first use.
    auth_key : str or bytes, optional
        Cluster backend only: shared HMAC-SHA256 secret authenticating
        every frame between coordinator and workers (see
        :mod:`repro.cluster.protocol`).  Runtime-spawned localhost workers
        inherit the key automatically; for remote workers start each
        ``repro-cluster-worker`` with the same key.  Defaults to the
        ``REPRO_CLUSTER_AUTH_KEY`` environment variable.
    degrade : str, optional
        Cluster backend only: what losing *every* worker does to
        outstanding tasks.  ``"raise"`` (default) fails them with
        :class:`~repro.cluster.coordinator.ClusterError`; ``"local"`` runs
        them in-process instead -- same registered task bodies, hence
        bit-identical results -- after a single :class:`RuntimeWarning`.
    transport : str, optional
        Process backend only: how bulk ndarray payloads reach the workers.
        ``"pickle"`` (default) serialises them per hop; ``"shm"`` moves the
        ``InstanceSpec`` dense arrays and chain-result code matrices into
        :mod:`multiprocessing.shared_memory` segments and ships only tiny
        descriptors (see :mod:`repro.runtime.shm`), falling back to pickle
        automatically where shared memory is unavailable.  Results are
        bit-identical either way.
    inline_threshold : int, optional
        Adaptive dispatch guard: chain workloads whose total update budget
        (``chains * count``) does not exceed this run the registered task
        body in-process instead of spinning up a pool -- below the
        measured spin-up cost the pool can never pay for itself.  Default
        :data:`INLINE_CHAIN_UPDATES`; ``0`` always dispatches.  Results
        are bit-identical either way.
    obs : bool or repro.obs.Observability, optional
        ``True`` enables the process-wide observability handle (metrics +
        span tracing; see :mod:`repro.obs`) for this runtime's lifetime --
        :meth:`shutdown` disables it again, and an already-enabled handle
        is left alone.  Passing an :class:`~repro.obs.Observability`
        installs that handle without taking ownership.  Tracing never
        consumes sampler RNG, so results are bit-identical either way.
        Inspect via :meth:`snapshot`, :func:`repro.obs.events`, or the
        ``repro-trace`` CLI after exporting.

    Notes
    -----
    A ``Runtime`` is cheap to construct and holds no OS resources until the
    first :meth:`submit` on a process backend lazily creates its futures
    pool, or the first cluster operation lazily connects the coordinator
    (spawning localhost workers when no addresses were given);
    :meth:`shutdown` (or use as a context manager) releases everything and
    is safe to call repeatedly -- including while streaming iterators are
    still abandoned mid-iteration, whose pending work it cancels.
    """

    __slots__ = (
        "backend",
        "n_chains",
        "n_workers",
        "addresses",
        "auth_key",
        "degrade",
        "transport",
        "inline_threshold",
        "_pool",
        "_cluster",
        "_local_pool",
        "_obs_owned",
        "_shutdown_lock",
        "_snapshot_sections",
    )

    def __init__(
        self,
        backend: str = SERIAL_BACKEND,
        n_chains: int = 1,
        n_workers: Optional[int] = None,
        addresses: Optional[Sequence] = None,
        auth_key=None,
        degrade: Optional[str] = None,
        transport: Optional[str] = None,
        inline_threshold: Optional[int] = None,
        obs: Union[None, bool, object] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown runtime backend {backend!r}; expected one of {_BACKENDS}"
            )
        if n_chains < 1:
            raise ValueError("n_chains must be at least 1")
        if addresses is not None and backend != CLUSTER_BACKEND:
            raise ValueError("addresses only apply to the cluster backend")
        if auth_key is not None and backend != CLUSTER_BACKEND:
            raise ValueError("auth_key only applies to the cluster backend")
        if degrade is not None and backend != CLUSTER_BACKEND:
            raise ValueError("degrade only applies to the cluster backend")
        if degrade not in (None, "raise", "local"):
            raise ValueError(f'degrade must be "raise" or "local", got {degrade!r}')
        if transport is not None and transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        if transport == "shm" and backend != PROCESS_BACKEND:
            raise ValueError(
                'transport="shm" applies to the process backend only (the '
                "cluster backend crosses machine boundaries, the in-process "
                "backends ship nothing)"
            )
        self.transport = transport if transport is not None else "pickle"
        if inline_threshold is None:
            inline_threshold = INLINE_CHAIN_UPDATES
        if inline_threshold < 0:
            raise ValueError("inline_threshold must be >= 0")
        self.inline_threshold = int(inline_threshold)
        self.auth_key = auth_key
        self.degrade = degrade
        self.backend = backend
        self.n_chains = int(n_chains)
        self.addresses = list(addresses) if addresses is not None else None
        if n_workers is None:
            if backend == PROCESS_BACKEND:
                n_workers = os.cpu_count() or 1
            elif backend == CLUSTER_BACKEND:
                n_workers = len(self.addresses) if self.addresses else 2
            else:
                n_workers = 1
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.n_workers = int(n_workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._cluster = None
        self._local_pool = None
        self._shutdown_lock = threading.RLock()
        self._snapshot_sections: Dict[str, Callable[[], object]] = {}
        # obs=True enables the process-wide observability handle for the
        # lifetime of this runtime (shutdown disables it again); an
        # Observability instance installs that handle without ownership;
        # None/False leave the subsystem untouched.
        from repro import obs as obs_api

        self._obs_owned = False
        if obs is True:
            if obs_api.active() is None:
                obs_api.enable()
                self._obs_owned = True
        elif obs is not None and obs is not False:
            if not isinstance(obs, obs_api.Observability):
                raise ValueError(
                    "obs must be True, False, None, or an obs.Observability handle"
                )
            obs_api.install(obs)

    # ------------------------------------------------------------------
    @property
    def is_serial(self) -> bool:
        """Whether this runtime runs the plain in-process loops."""
        return self.backend == SERIAL_BACKEND

    @property
    def is_batched(self) -> bool:
        """Whether chain workloads run on the batched code-matrix runner."""
        return self.backend == BATCHED_BACKEND

    @property
    def is_process(self) -> bool:
        """Whether independent work fans out across OS processes."""
        return self.backend == PROCESS_BACKEND

    @property
    def is_cluster(self) -> bool:
        """Whether work is dispatched to TCP workers via a coordinator."""
        return self.backend == CLUSTER_BACKEND

    # ------------------------------------------------------------------
    def cluster_client(self):
        """The coordinator behind the cluster backend (lazy, runtime-owned).

        Connects to :attr:`addresses` on first use; when none were given,
        ``n_workers`` localhost workers are spawned first (and terminated
        again by :meth:`shutdown`).

        Returns
        -------
        repro.cluster.coordinator.ClusterCoordinator
            The live coordinator.

        Raises
        ------
        ValueError
            When called on a non-cluster backend.
        """
        if not self.is_cluster:
            raise ValueError("cluster_client() requires the cluster backend")
        if self._cluster is None:
            from repro.cluster.coordinator import ClusterCoordinator

            addresses = self.addresses
            if addresses is None:
                from repro.cluster.local import spawn_workers

                # Runtime-spawned workers inherit the runtime's auth key,
                # so a keyed localhost cluster needs no extra wiring.
                self._local_pool = spawn_workers(
                    self.n_workers, auth_key=self.auth_key
                )
                addresses = self._local_pool.addresses
            self._cluster = ClusterCoordinator(
                addresses,
                auth_key=self.auth_key,
                degrade=self.degrade if self.degrade is not None else "raise",
            )
        return self._cluster

    # ------------------------------------------------------------------
    def map(self, function: Callable, items: Iterable) -> List:
        """Map a function over independent items under this runtime.

        The process backend fans out over forked workers (the function and
        its closure are inherited, so unpicklable model objects are fine;
        items and results must pickle); the cluster backend dispatches over
        its TCP workers when the function itself pickles (i.e. is
        module-level) and otherwise degrades to the in-process loop --
        closures cannot cross the socket transport, so e.g. the experiment
        drivers' local row functions still run correctly, just without the
        fan-out.  The other backends run the plain serial loop.

        Parameters
        ----------
        function : callable
            Applied to every item.
        items : iterable
            Independent work items.

        Returns
        -------
        list
            ``[function(item) for item in items]``, in item order.
        """
        if self.is_process:
            return process_map(function, items, n_workers=self.n_workers)
        if self.is_cluster and _picklable(function):
            items = list(items)
            results: List = [None] * len(items)
            for index, result in self.cluster_client().map_unordered(function, items):
                results[index] = result
            return results
        return [function(item) for item in items]

    def map_unordered(
        self, function: Callable, items: Iterable
    ) -> Iterator[Tuple[int, object]]:
        """Map a function over items, yielding results in completion order.

        The streaming counterpart of :meth:`map`: the process backend runs
        the items on a forked pool and yields each ``(index, result)`` pair
        the moment its worker finishes, letting the caller overlap its own
        work with the still-running tail.  The serial and batched backends
        conform trivially with a lazy in-order loop (completion order *is*
        item order in-process).

        Parameters
        ----------
        function : callable
            Applied to every item (closures are fine on every backend; the
            process backend inherits them via fork).
        items : iterable
            Independent work items.

        Yields
        ------
        (int, object)
            ``(index, function(items[index]))`` pairs in completion order;
            ``index`` reassociates out-of-order results.
        """
        if self.is_process:
            yield from process_map_unordered(function, items, n_workers=self.n_workers)
            return
        if self.is_cluster and _picklable(function):
            yield from self.cluster_client().map_unordered(function, items)
            return
        # Serial/batched conformance -- and the cluster fallback for
        # closures, which cannot cross the socket transport.
        for index, item in enumerate(items):
            yield index, function(item)

    def submit(self, function: Callable, *args, **kwargs) -> Future:
        """Submit one call, returning a ``concurrent.futures.Future``.

        The process backend schedules the call on a lazily created,
        runtime-owned ``ProcessPoolExecutor`` (release it with
        :meth:`shutdown` or by using the runtime as a context manager);
        ``function`` and its arguments must pickle, so pass module-level
        functions.  The serial and batched backends conform trivially: the
        call runs immediately and the returned future is already resolved
        (its exception captured rather than raised), so consumers can treat
        every backend uniformly.

        Parameters
        ----------
        function : callable
            The callable to execute.
        *args, **kwargs
            Forwarded to ``function``.

        Returns
        -------
        concurrent.futures.Future
            Resolves to ``function(*args, **kwargs)``.
        """
        if self.is_process:
            return self._futures_pool().submit(function, *args, **kwargs)
        if self.is_cluster:
            return self.cluster_client().submit(function, *args, **kwargs)
        future: Future = Future()
        try:
            future.set_result(function(*args, **kwargs))
        except Exception as error:  # conform: the future carries the failure
            future.set_exception(error)
        # BaseException (KeyboardInterrupt, SystemExit) propagates: a parent
        # pressing Ctrl-C must be able to abort regardless of backend.
        return future

    def _futures_pool(self) -> ProcessPoolExecutor:
        """The runtime-owned futures pool, created on first use."""
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                context = None
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=context
            )
        return self._pool

    def shutdown(self, wait: Optional[bool] = None) -> None:
        """Release every OS resource this runtime owns (idempotent, thread-safe).

        Shuts the lazily created futures pool down (cancelling queued
        work), closes the cluster coordinator's worker connections
        (cancelling in-flight tasks -- streams abandoned mid-iteration
        included), and terminates localhost workers the runtime spawned
        itself.  Calling it again -- or never having created any resource
        -- is a no-op, and a later operation transparently re-creates what
        it needs.  Concurrent callers are safe: each resource is detached
        under a lock and released exactly once.

        Parameters
        ----------
        wait : bool, optional
            Whether to block until the futures pool's workers have
            joined.  The default is *context-sensitive*: ``True`` from a
            plain thread (the historical behaviour), ``False`` when
            called from a running asyncio event loop -- the serving
            layer's drain path -- where blocking on worker joins would
            stall every coroutine on the loop.  With ``wait=False`` the
            pool still cancels queued futures and its workers exit in the
            background.
        """
        if wait is None:
            try:
                asyncio.get_running_loop()
            except RuntimeError:
                wait = True
            else:
                wait = False
        with self._shutdown_lock:
            pool, self._pool = self._pool, None
            cluster, self._cluster = self._cluster, None
            local_pool, self._local_pool = self._local_pool, None
            obs_owned, self._obs_owned = self._obs_owned, False
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)
        if cluster is not None:
            cluster.shutdown()
        if local_pool is not None:
            local_pool.terminate()
        # Safety net for the shm transport: per-call packs release in their
        # own finally blocks, so anything still live here belongs to work
        # this shutdown just cancelled -- unlink it rather than leak it.
        from repro.runtime import shm

        shm.release_all()
        if obs_owned:
            obs.disable()

    def register_snapshot_section(
        self, name: str, provider: Callable[[], object]
    ) -> None:
        """Attach a named section to :meth:`snapshot` (e.g. ``"serve"``).

        The serving layer uses this to publish its coalescer stats next
        to the built-in ``"obs"`` and ``"cluster"`` blocks; any subsystem
        sharing a runtime can do the same.  Re-registering a name
        replaces its provider.
        """
        self._snapshot_sections[str(name)] = provider

    def unregister_snapshot_section(self, name: str) -> None:
        """Detach a section registered via :meth:`register_snapshot_section`."""
        self._snapshot_sections.pop(str(name), None)

    def snapshot(self) -> Dict[str, object]:
        """A point-in-time observability view of this runtime.

        Always includes the runtime's own shape (``backend``,
        ``n_chains``, ``n_workers``); when the process-wide observability
        handle is enabled (``obs=True`` or :func:`repro.obs.enable`), the
        metrics registry and trace-buffer summary ride along under
        ``"obs"``, and a live cluster coordinator contributes worker
        liveness/queue counters under ``"cluster"``.  Subsystems sharing
        the runtime add their own blocks via
        :meth:`register_snapshot_section` (the serving layer publishes
        ``"serve"``).  Purely a read -- never touches RNG state or
        results.
        """
        out: Dict[str, object] = {
            "backend": self.backend,
            "n_chains": self.n_chains,
            "n_workers": self.n_workers,
            "transport": self.transport,
        }
        handle = obs.active()
        if handle is not None:
            out["obs"] = handle.snapshot()
        if self._cluster is not None:
            out["cluster"] = self._cluster.snapshot()
        for name, provider in list(self._snapshot_sections.items()):
            try:
                out[name] = provider()
            except Exception as error:  # a read must never raise
                out[name] = {"error": f"{type(error).__name__}: {error}"}
        return out

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def run_chains(
        self,
        kernel: Union[str, ChainKernel],
        instance: SamplingInstance,
        count: int,
        seed=0,
        seeds: Optional[Sequence] = None,
        initial: Optional[Dict[Node, Value]] = None,
        engine: Optional[str] = None,
        init: Optional[str] = None,
        state: Optional[ChainState] = None,
        return_state: bool = False,
    ):
        """Final states of ``n_chains`` independent chains of one kernel.

        THE chain execution path: every registered
        :class:`~repro.sampling.kernels.ChainKernel` (Glauber, LubyGlauber,
        JVV rejection, sequential scan, ...) runs on every backend through
        this one method.  All backends use the same per-chain seed
        convention (:func:`~repro.runtime.chains.chain_seed_sequences`), so
        the result is bit-identical across backends; only the execution
        strategy differs:

        * ``serial`` loops the kernel's reference ``serial_run`` per seed;
        * ``batched`` advances all chains as one ``(chains, n)`` code
          matrix (:func:`~repro.runtime.chains.batched_kernel_sample`);
        * ``process`` splits the seeds into contiguous blocks and runs the
          registered ``chain_block`` task body
          (:data:`~repro.runtime.shards.TASK_REGISTRY`) on a pool, one
          batched block per worker;
        * ``cluster`` dispatches the same ``chain_block`` bodies to its
          TCP workers against the shipped :class:`InstanceSpec`.

        An explicit ``engine="dict"`` request is not spec-transportable;
        it degrades to the per-seed serial reference loop (fanned out via
        :meth:`map` where the backend supports closures).

        Parameters
        ----------
        kernel : str or ChainKernel
            The dynamics to advance (registered name or instance).
        instance : SamplingInstance or sequence of SamplingInstance
            The instance every chain targets.  A *sequence* of instances
            (possibly different models) delegates to :meth:`run_packed`:
            all groups advance as one packed code matrix, each group
            bit-identical to its solo run, and the return value is a list
            of per-instance configuration lists.  ``seeds`` must then be a
            per-instance sequence of seed sequences (or ``seed`` a scalar
            root / per-instance roots); ``initial``/``init``/``state`` do
            not apply.
        count : int
            Units of the dynamics per chain (steps, rounds, ... -- see the
            kernel's ``unit``).
        seed, seeds
            Root seed to spawn per-chain streams from, or explicit per-chain
            seeds (overrides ``seed``).
        initial : dict, optional
            Shared initial configuration.
        engine : str, optional
            Evaluation backend (see :mod:`repro.engine`).
        init : str, optional
            Named initial-state strategy.  ``"greedy"`` seeds every chain
            from the deterministic local-search warm start of
            :func:`~repro.sampling.glauber.warm_start_configuration`
            (the SAMaxWalkSAT chain-bootstrap idiom) -- this changes only
            the starting configuration, never the kernel's draw sequence.
            Mutually exclusive with ``initial``.
        state : ChainState, optional
            Resume these chains instead of starting fresh (serial and
            batched backends, compiled engine only).  ``seeds`` /
            ``initial`` / ``init`` must not be combined with a resume;
            ``instance`` may be the original instance or a reweighted twin
            of it (see :meth:`~repro.runtime.chains.ChainBatch.retarget`).
        return_state : bool
            Also return the resumable :class:`~repro.runtime.chains.ChainState`
            -- final per-chain codes plus the live per-chain generators and
            buffered streams -- so a later ``state=`` call continues the
            same chains bit-identically (for the given segmentation).
            Serial and batched backends only.

        Returns
        -------
        list of dict, or (list of dict, ChainState)
            Final configurations, one per chain, in seed order; with
            ``return_state=True``, the resumable state rides along.
        """
        resolved = resolve_kernel(kernel)
        if not isinstance(instance, SamplingInstance) and isinstance(
            instance, (list, tuple)
        ):
            # Multi-instance form: pack the groups into one code matrix.
            if state is not None or return_state:
                raise ValueError(
                    "resumable chain state does not apply to packed "
                    "multi-instance runs"
                )
            if initial is not None or init is not None:
                raise ValueError(
                    "initial/init do not apply to packed multi-instance "
                    "runs (pass per-group initials to run_packed)"
                )
            instances = list(instance)
            if seeds is not None:
                per_group = [list(group_seeds) for group_seeds in seeds]
                if len(per_group) != len(instances):
                    raise ValueError(
                        "seeds must hold one seed sequence per instance"
                    )
            else:
                roots = (
                    list(seed)
                    if isinstance(seed, (list, tuple))
                    else [seed] * len(instances)
                )
                if len(roots) != len(instances):
                    raise ValueError("seed must be a scalar or one root per instance")
                per_group = [
                    chain_seed_sequences(root, self.n_chains) for root in roots
                ]
            return self.run_packed(
                resolved,
                list(zip(instances, per_group)),
                count,
                engine=engine,
            )
        stateful = state is not None or return_state
        if stateful:
            if not (self.is_serial or self.is_batched):
                raise ValueError(
                    "resumable chain state requires the serial or batched "
                    f"backend, not {self.backend!r} (the distributed backends "
                    "do not keep per-chain generators in-process)"
                )
            if not self._spec_transportable(engine):
                raise ValueError(
                    "resumable chain state requires the compiled engine"
                )
        if state is not None:
            if seeds is not None or initial is not None or init is not None:
                raise ValueError(
                    "state= resumes existing chains; seeds/initial/init "
                    "cannot be changed mid-flight"
                )
            with obs.span(
                "runtime.run_chains",
                backend=self.backend,
                kernel=resolved.name,
                chains=state.n_chains,
                count=count,
                resumed=True,
            ):
                states = state.advance(resolved, instance, count)
            return (states, state) if return_state else states
        if init is not None:
            if initial is not None:
                raise ValueError("pass init= or initial=, not both")
            if init != "greedy":
                raise ValueError(f'unknown init strategy {init!r}; expected "greedy"')
            from repro.sampling.glauber import warm_start_configuration

            initial = warm_start_configuration(instance, engine=engine)
        if seeds is None:
            seeds = chain_seed_sequences(seed, self.n_chains)
        else:
            seeds = list(seeds)
        if return_state:
            fresh = make_chain_state(
                resolved,
                instance,
                seeds,
                initial=initial,
                layout="serial" if self.is_serial else "batched",
                engine=engine,
            )
            with obs.span(
                "runtime.run_chains",
                backend=self.backend,
                kernel=resolved.name,
                chains=len(seeds),
                count=count,
                stateful=True,
            ):
                states = fresh.advance(resolved, instance, count)
            return states, fresh
        with obs.span(
            "runtime.run_chains",
            backend=self.backend,
            kernel=resolved.name,
            chains=len(seeds),
            count=count,
        ):
            if not self._spec_transportable(engine):
                # The reference backend stays the reference: per-seed serial
                # chains (the process backend still fans them out via fork).
                return self.map(
                    lambda chain_seed: resolved.serial_run(
                        instance, count, seed=chain_seed, initial=initial, engine=engine
                    ),
                    seeds,
                )
            if self.is_batched:
                return batched_kernel_sample(
                    resolved, instance, count, seeds=seeds, initial=initial, engine=engine
                )
            if self.is_process:
                if len(seeds) * count <= self.inline_threshold:
                    # Adaptive dispatch guard: this workload is smaller than
                    # the measured pool spin-up cost, so run the same task
                    # body (batched code matrix, same per-chain streams)
                    # in-process -- bit-identical, just without the fork tax.
                    obs.instant(
                        "runtime.dispatch.inline",
                        backend=self.backend,
                        kernel=resolved.name,
                        chains=len(seeds),
                        count=count,
                        threshold=self.inline_threshold,
                    )
                    return batched_kernel_sample(
                        resolved,
                        instance,
                        count,
                        seeds=seeds,
                        initial=initial,
                        engine=engine,
                    )
                return run_chain_blocks(
                    instance,
                    resolved.name,
                    count,
                    seeds,
                    initial=initial,
                    n_workers=self.n_workers,
                    transport=self.transport,
                )
            if self.is_cluster:
                return self.cluster_client().chain_samples(
                    instance, resolved.name, count, seeds, initial=initial
                )
            return [
                resolved.serial_run(
                    instance, count, seed=chain_seed, initial=initial, engine=engine
                )
                for chain_seed in seeds
            ]

    def run_packed(
        self,
        kernel: Union[str, ChainKernel],
        requests: Sequence,
        count: int,
        engine: Optional[str] = None,
    ) -> List[List[Dict[Node, Value]]]:
        """Advance many instances' chains as ONE packed code matrix.

        The multi-instance sibling of :meth:`run_chains` (which delegates
        here for a sequence of instances): every request group -- possibly
        a *different* registered model -- packs into a single padded
        ``(total_chains, n_max)`` matrix
        (:class:`~repro.runtime.chains.PackedBatch`) so mask-aware kernels
        pay the per-step Python overhead once across all groups instead of
        once per model.  Each group ends bit-identical to its solo
        ``run_chains`` with the same seeds; kernels without a fused step
        (and non-fusable packs, e.g. mixed alphabet sizes) fall back to
        advancing group by group, which *is* solo execution.

        Runs in-process on every backend: packing exists to amortise
        per-step overhead, which distributing would reintroduce.

        Parameters
        ----------
        kernel : str or ChainKernel
            The dynamics every group advances.
        requests : sequence
            One entry per group: ``(instance, seeds)``,
            ``(instance, seeds, initial)``, or a ready
            :class:`~repro.runtime.chains.ChainBatch`.
        count : int
            Units of the dynamics per chain.
        engine : str, optional
            Must resolve to the compiled engine.

        Returns
        -------
        list of list of dict
            Per-group configuration lists, in request order; group ``g``
            equals ``run_chains(kernel, instance_g, count, seeds=seeds_g)``.
        """
        resolved = resolve_kernel(kernel)
        packed = PackedBatch(requests, engine=engine)
        with obs.span(
            "runtime.run_packed",
            backend=self.backend,
            kernel=resolved.name,
            groups=packed.n_groups,
            chains=packed.total_chains,
            count=count,
        ):
            packed.advance(resolved, count)
        return packed.configurations()

    def glauber_sample(
        self,
        instance: SamplingInstance,
        steps: int,
        seed=0,
        seeds: Optional[Sequence] = None,
        initial: Optional[Dict[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> List[Dict[Node, Value]]:
        """Deprecated: ``run_chains("glauber", ...)`` with ``steps`` updates.

        .. deprecated::
            Use :meth:`run_chains` -- the single kernel-driven execution
            path.  This wrapper delegates and returns identical results.
        """
        warnings.warn(
            'Runtime.glauber_sample is deprecated; use Runtime.run_chains("glauber", ...)',
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run_chains(
            "glauber", instance, steps, seed=seed, seeds=seeds, initial=initial, engine=engine
        )

    def luby_glauber_sample(
        self,
        instance: SamplingInstance,
        rounds: int,
        seed=0,
        seeds: Optional[Sequence] = None,
        initial: Optional[Dict[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> List[Dict[Node, Value]]:
        """Deprecated: ``run_chains("luby-glauber", ...)`` with ``rounds`` rounds.

        .. deprecated::
            Use :meth:`run_chains` -- the single kernel-driven execution
            path.  This wrapper delegates and returns identical results.
        """
        warnings.warn(
            'Runtime.luby_glauber_sample is deprecated; use Runtime.run_chains("luby-glauber", ...)',
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run_chains(
            "luby-glauber",
            instance,
            rounds,
            seed=seed,
            seeds=seeds,
            initial=initial,
            engine=engine,
        )

    @staticmethod
    def _spec_transportable(engine: Optional[str]) -> bool:
        """Whether a workload may travel as an ``InstanceSpec`` (compiled-only)."""
        from repro.engine import resolve_engine

        return resolve_engine(engine) == "compiled"

    # ------------------------------------------------------------------
    def stream_ball_marginals(
        self,
        instance: SamplingInstance,
        nodes: Sequence[Node],
        radius: int,
        engine: Optional[str] = None,
    ) -> Iterator[Tuple[Node, Dict[Value, float]]]:
        """Stream Theorem 5.1 padded-ball marginals as they complete.

        The process backend shards the per-node ball computations across
        workers and yields each ``(node, marginal)`` pair the moment its
        shard lands -- worker compilations, boundary extensions and capped
        marginal-memo deltas are merged into the parent's ball cache
        incrementally, so the consumer overlaps its own work with the
        in-flight shards.  The cluster backend does the same over its TCP
        workers (spec shipped once per connection, dead workers' shards
        requeued).  Other backends yield the serial per-node loop lazily,
        in node order.  The shard transport is compiled-only, so an
        explicit ``engine="dict"`` request keeps the serial loop and its
        reference backend.

        Parameters
        ----------
        instance : SamplingInstance
            The conditioned instance to query.
        nodes : sequence of node
            Ball centers.
        radius : int
            Inner ball radius of the Theorem 5.1 computation.
        engine : str, optional
            Evaluation backend (see :mod:`repro.engine`).

        Yields
        ------
        (node, dict)
            ``(center, marginal)`` pairs, in completion order under the
            process backend and node order otherwise; values are
            bit-identical across backends.
        """
        nodes = list(nodes)
        if len(nodes) > 1 and self._spec_transportable(engine):
            if self.is_process:
                yield from stream_padded_ball_marginals(
                    instance,
                    nodes,
                    radius,
                    n_workers=self.n_workers,
                    transport=self.transport,
                )
                return
            if self.is_cluster:
                yield from self.cluster_client().stream_padded_ball_marginals(
                    instance, nodes, radius
                )
                return
        from repro.inference.ssm_inference import padded_ball_marginal

        for node in nodes:
            yield node, padded_ball_marginal(instance, node, radius, engine=engine)

    def stream_ball_marginal_tasks(
        self,
        instance: SamplingInstance,
        tasks: Sequence[Tuple[Node, int]],
        chunk_size: Optional[int] = None,
    ) -> Iterator[Tuple[Tuple[Node, int], Dict[Value, float]]]:
        """Stream Theorem 5.1 marginals for heterogeneous ``(center, radius)`` tasks.

        The multi-radius sibling of :meth:`stream_ball_marginals`, used by
        the overlapped E5 radius sweep
        (:func:`repro.spatialmixing.phase_transition.locality_required`):
        the process backend shards the tasks over its pool, the cluster
        backend over its TCP workers, and both merge every arriving
        shard's artefacts into the parent ball cache before yielding in
        completion order.  Serial and batched backends yield the lazy
        in-order loop.  Values are bit-identical across backends.

        Parameters
        ----------
        instance : SamplingInstance
            The conditioned instance to query.
        tasks : sequence of (node, int)
            ``(center, radius)`` pairs; radii may differ between tasks.
        chunk_size : int, optional
            Tasks per dispatched chunk (distributed backends only).

        Yields
        ------
        ((node, int), dict)
            ``((center, radius), marginal)`` pairs.
        """
        tasks = list(tasks)
        if tasks and self.is_process:
            yield from stream_ball_marginal_tasks(
                instance,
                tasks,
                n_workers=self.n_workers,
                chunk_size=chunk_size,
                transport=self.transport,
            )
            return
        if tasks and self.is_cluster:
            yield from self.cluster_client().stream_ball_marginal_tasks(
                instance, tasks, chunk_size=chunk_size
            )
            return
        from repro.inference.ssm_inference import padded_ball_marginal

        for center, radius in tasks:
            yield (center, radius), padded_ball_marginal(instance, center, radius)

    def ball_marginals(
        self,
        instance: SamplingInstance,
        nodes: Sequence[Node],
        radius: int,
        engine: Optional[str] = None,
    ) -> Dict[Node, Dict[Value, float]]:
        """Theorem 5.1 padded-ball marginals at many centers (barrier).

        Drains :meth:`stream_ball_marginals` into a per-node dict; see the
        streaming method for the backend semantics.  Callers that can make
        use of partial results should iterate the stream instead.
        """
        return dict(self.stream_ball_marginals(instance, nodes, radius, engine=engine))

    def warm_ball_cache(
        self, instance: SamplingInstance, tasks: Sequence[Tuple[Node, int]]
    ) -> int:
        """Precompile ``(center, radius)`` balls into the distribution cache.

        With the process or cluster backend the compilation streams in from
        worker shards (duplicates are dropped); other backends compile
        in-process.

        Returns
        -------
        int
            Number of distinct balls compiled.
        """
        if self.is_process and len(tasks) > 1:
            return sum(
                1
                for _ in stream_compiled_balls(
                    instance,
                    tasks,
                    n_workers=self.n_workers,
                    transport=self.transport,
                )
            )
        if self.is_cluster and len(tasks) > 1:
            return sum(
                1 for _ in self.cluster_client().stream_compiled_balls(instance, tasks)
            )
        unique = list(dict.fromkeys(tasks))
        cache = instance.distribution.ball_cache()
        for center, radius in unique:
            cache.compiled_ball(center, radius)
        return len(unique)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = f", addresses={self.addresses!r}" if self.addresses else ""
        return (
            f"Runtime(backend={self.backend!r}, n_chains={self.n_chains}, "
            f"n_workers={self.n_workers}{suffix})"
        )


#: The default runtime: today's serial behaviour.
SERIAL_RUNTIME = Runtime()

#: The shared runtime behind plain ``runtime="cluster"`` requests (lazily
#: created).  Sharing it means string-form callers reuse one coordinator
#: and one set of spawned localhost workers instead of leaking a fresh
#: pool per call; ``shutdown()`` on it is safe -- the next use respawns.
_SHARED_CLUSTER_RUNTIME: Optional[Runtime] = None


def resolve_runtime(runtime: Union[None, str, Runtime] = None) -> Runtime:
    """Normalise a ``runtime=`` argument, rejecting unknown backends.

    Parameters
    ----------
    runtime : None, str or Runtime
        ``None`` means "serial" (the default everywhere), a string selects
        a backend with default parameters, and a :class:`Runtime` passes
        through unchanged.  The string ``"cluster"`` resolves to one shared
        process-wide runtime (which spawns its localhost workers on first
        use); pass an explicit ``Runtime(backend="cluster", addresses=...)``
        to target real worker hosts or to control the lifecycle yourself.

    Returns
    -------
    Runtime
        The resolved execution policy.

    Raises
    ------
    ValueError
        For unknown backend names or other types.
    """
    if runtime is None:
        return SERIAL_RUNTIME
    if isinstance(runtime, Runtime):
        return runtime
    if isinstance(runtime, str):
        if runtime == CLUSTER_BACKEND:
            global _SHARED_CLUSTER_RUNTIME
            if _SHARED_CLUSTER_RUNTIME is None:
                _SHARED_CLUSTER_RUNTIME = Runtime(backend=CLUSTER_BACKEND)
            return _SHARED_CLUSTER_RUNTIME
        return Runtime(backend=runtime)
    raise ValueError(
        f"expected None, a backend name or a Runtime, got {runtime!r}"
    )
