"""The ``Runtime`` facade: *how* work executes, separate from *what* it is.

Three backends:

``serial``
    Today's behaviour -- every loop runs in-process, one item at a time.
    This is the default everywhere, so ``runtime=None`` changes nothing.
``batched``
    Chain workloads run on the batched code-matrix runner of
    :mod:`repro.runtime.chains`: ``n_chains`` independent chains advance
    per step with one set of vectorised gathers.  Bit-identical per chain
    to the serial samplers under the spawned-seed convention.
``process``
    Per-node LOCAL computations (ball compilation, boundary extension, ball
    marginals) shard across OS processes via :mod:`repro.runtime.shards`,
    and coarse-grained experiment loops fan out through :meth:`Runtime.map`.
    The sharding is *streaming*: :meth:`Runtime.stream_ball_marginals`,
    :meth:`Runtime.map_unordered` and :meth:`Runtime.submit` hand results
    back as futures complete, so parent-side work overlaps with in-flight
    shards instead of idling at a ``pool.map`` barrier.

The facade is threaded through ``sampling/glauber.py``,
``inference/ssm_inference.py``, the LOCAL driver in ``localmodel/local.py``
and the E5/E6/E7/E8/E12 experiment entry points as a ``runtime=`` parameter
that defaults to serial, mirroring how ``engine=`` selects the evaluation
backend (see :mod:`repro.engine`).  The two knobs compose: ``engine``
decides how a single quantity is evaluated, ``runtime`` decides how many of
them execute at once.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.gibbs.instance import SamplingInstance
from repro.runtime.chains import (
    batched_glauber_sample,
    batched_luby_glauber_sample,
    chain_seed_sequences,
)
from repro.runtime.shards import (
    process_map,
    process_map_unordered,
    stream_compiled_balls,
    stream_padded_ball_marginals,
)

Node = Hashable
Value = Hashable

#: In-process, one item at a time (the default everywhere).
SERIAL_BACKEND = "serial"
#: Many chains as one code matrix (see :mod:`repro.runtime.chains`).
BATCHED_BACKEND = "batched"
#: Per-node work sharded across OS processes (see :mod:`repro.runtime.shards`).
PROCESS_BACKEND = "process"

_BACKENDS = (SERIAL_BACKEND, BATCHED_BACKEND, PROCESS_BACKEND)


class Runtime:
    """An execution policy: backend, chain batch width, worker count.

    Parameters
    ----------
    backend : str
        One of :data:`SERIAL_BACKEND`, :data:`BATCHED_BACKEND`,
        :data:`PROCESS_BACKEND`.
    n_chains : int
        Chain batch width used by the sampling entry points.
    n_workers : int, optional
        Worker-pool width for the process backend (default: the CPU count);
        other backends default to 1.

    Notes
    -----
    A ``Runtime`` is cheap to construct and holds no OS resources until the
    first :meth:`submit` on a process backend lazily creates its futures
    pool; :meth:`shutdown` (or use as a context manager) releases it.
    """

    __slots__ = ("backend", "n_chains", "n_workers", "_pool")

    def __init__(
        self,
        backend: str = SERIAL_BACKEND,
        n_chains: int = 1,
        n_workers: Optional[int] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown runtime backend {backend!r}; expected one of {_BACKENDS}"
            )
        if n_chains < 1:
            raise ValueError("n_chains must be at least 1")
        self.backend = backend
        self.n_chains = int(n_chains)
        if n_workers is None:
            n_workers = (os.cpu_count() or 1) if backend == PROCESS_BACKEND else 1
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.n_workers = int(n_workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    @property
    def is_serial(self) -> bool:
        """Whether this runtime runs the plain in-process loops."""
        return self.backend == SERIAL_BACKEND

    @property
    def is_batched(self) -> bool:
        """Whether chain workloads run on the batched code-matrix runner."""
        return self.backend == BATCHED_BACKEND

    @property
    def is_process(self) -> bool:
        """Whether independent work fans out across OS processes."""
        return self.backend == PROCESS_BACKEND

    # ------------------------------------------------------------------
    def map(self, function: Callable, items: Iterable) -> List:
        """Map a function over independent items under this runtime.

        The process backend fans out over forked workers (the function and
        its closure are inherited, so unpicklable model objects are fine;
        items and results must pickle); the other backends run the plain
        serial loop.

        Parameters
        ----------
        function : callable
            Applied to every item.
        items : iterable
            Independent work items.

        Returns
        -------
        list
            ``[function(item) for item in items]``, in item order.
        """
        if self.is_process:
            return process_map(function, items, n_workers=self.n_workers)
        return [function(item) for item in items]

    def map_unordered(
        self, function: Callable, items: Iterable
    ) -> Iterator[Tuple[int, object]]:
        """Map a function over items, yielding results in completion order.

        The streaming counterpart of :meth:`map`: the process backend runs
        the items on a forked pool and yields each ``(index, result)`` pair
        the moment its worker finishes, letting the caller overlap its own
        work with the still-running tail.  The serial and batched backends
        conform trivially with a lazy in-order loop (completion order *is*
        item order in-process).

        Parameters
        ----------
        function : callable
            Applied to every item (closures are fine on every backend; the
            process backend inherits them via fork).
        items : iterable
            Independent work items.

        Yields
        ------
        (int, object)
            ``(index, function(items[index]))`` pairs in completion order;
            ``index`` reassociates out-of-order results.
        """
        if self.is_process:
            yield from process_map_unordered(function, items, n_workers=self.n_workers)
            return
        for index, item in enumerate(items):
            yield index, function(item)

    def submit(self, function: Callable, *args, **kwargs) -> Future:
        """Submit one call, returning a ``concurrent.futures.Future``.

        The process backend schedules the call on a lazily created,
        runtime-owned ``ProcessPoolExecutor`` (release it with
        :meth:`shutdown` or by using the runtime as a context manager);
        ``function`` and its arguments must pickle, so pass module-level
        functions.  The serial and batched backends conform trivially: the
        call runs immediately and the returned future is already resolved
        (its exception captured rather than raised), so consumers can treat
        every backend uniformly.

        Parameters
        ----------
        function : callable
            The callable to execute.
        *args, **kwargs
            Forwarded to ``function``.

        Returns
        -------
        concurrent.futures.Future
            Resolves to ``function(*args, **kwargs)``.
        """
        if self.is_process:
            return self._futures_pool().submit(function, *args, **kwargs)
        future: Future = Future()
        try:
            future.set_result(function(*args, **kwargs))
        except Exception as error:  # conform: the future carries the failure
            future.set_exception(error)
        # BaseException (KeyboardInterrupt, SystemExit) propagates: a parent
        # pressing Ctrl-C must be able to abort regardless of backend.
        return future

    def _futures_pool(self) -> ProcessPoolExecutor:
        """The runtime-owned futures pool, created on first use."""
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                context = None
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=context
            )
        return self._pool

    def shutdown(self) -> None:
        """Release the futures pool created by :meth:`submit`, if any."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def glauber_sample(
        self,
        instance: SamplingInstance,
        steps: int,
        seed=0,
        seeds: Optional[Sequence] = None,
        initial: Optional[Dict[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> List[Dict[Node, Value]]:
        """Final states of ``n_chains`` independent Glauber chains.

        All backends use the same per-chain seed convention
        (:func:`~repro.runtime.chains.chain_seed_sequences`), so the result
        is identical across backends; only the execution strategy differs.

        Parameters
        ----------
        instance : SamplingInstance
            The instance every chain targets.
        steps : int
            Single-site updates per chain.
        seed, seeds
            Root seed to spawn per-chain streams from, or explicit per-chain
            seeds (overrides ``seed``).
        initial : dict, optional
            Shared initial configuration.
        engine : str, optional
            Evaluation backend (see :mod:`repro.engine`).

        Returns
        -------
        list of dict
            Final configurations, one per chain.
        """
        if seeds is None:
            seeds = chain_seed_sequences(seed, self.n_chains)
        if self.is_batched:
            return batched_glauber_sample(
                instance, steps, seeds=seeds, initial=initial, engine=engine
            )
        from repro.sampling.glauber import glauber_sample

        # Chains are independent, so the process backend fans the per-seed
        # serial chains out over workers via self.map (serial backend: plain
        # loop); the per-chain results are identical either way.
        return self.map(
            lambda chain_seed: glauber_sample(
                instance, steps, seed=chain_seed, initial=initial, engine=engine
            ),
            seeds,
        )

    def luby_glauber_sample(
        self,
        instance: SamplingInstance,
        rounds: int,
        seed=0,
        seeds: Optional[Sequence] = None,
        initial: Optional[Dict[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> List[Dict[Node, Value]]:
        """Final states of ``n_chains`` independent LubyGlauber chains.

        Parameters
        ----------
        instance, rounds, seed, seeds, initial, engine
            As for :meth:`glauber_sample`, with ``rounds`` LubyGlauber
            rounds per chain.

        Returns
        -------
        list of dict
            Final configurations, one per chain.
        """
        if seeds is None:
            seeds = chain_seed_sequences(seed, self.n_chains)
        if self.is_batched:
            return batched_luby_glauber_sample(
                instance, rounds, seeds=seeds, initial=initial, engine=engine
            )
        from repro.sampling.glauber import luby_glauber_sample

        return self.map(
            lambda chain_seed: luby_glauber_sample(
                instance, rounds, seed=chain_seed, initial=initial, engine=engine
            ),
            seeds,
        )

    # ------------------------------------------------------------------
    def stream_ball_marginals(
        self,
        instance: SamplingInstance,
        nodes: Sequence[Node],
        radius: int,
        engine: Optional[str] = None,
    ) -> Iterator[Tuple[Node, Dict[Value, float]]]:
        """Stream Theorem 5.1 padded-ball marginals as they complete.

        The process backend shards the per-node ball computations across
        workers and yields each ``(node, marginal)`` pair the moment its
        shard lands -- worker compilations, boundary extensions and capped
        marginal-memo deltas are merged into the parent's ball cache
        incrementally, so the consumer overlaps its own work with the
        in-flight shards.  Other backends yield the serial per-node loop
        lazily, in node order.  The shard transport is compiled-only, so an
        explicit ``engine="dict"`` request keeps the serial loop and its
        reference backend.

        Parameters
        ----------
        instance : SamplingInstance
            The conditioned instance to query.
        nodes : sequence of node
            Ball centers.
        radius : int
            Inner ball radius of the Theorem 5.1 computation.
        engine : str, optional
            Evaluation backend (see :mod:`repro.engine`).

        Yields
        ------
        (node, dict)
            ``(center, marginal)`` pairs, in completion order under the
            process backend and node order otherwise; values are
            bit-identical across backends.
        """
        from repro.engine import resolve_engine

        nodes = list(nodes)
        if (
            self.is_process
            and len(nodes) > 1
            and resolve_engine(engine) == "compiled"
        ):
            yield from stream_padded_ball_marginals(
                instance, nodes, radius, n_workers=self.n_workers
            )
            return
        from repro.inference.ssm_inference import padded_ball_marginal

        for node in nodes:
            yield node, padded_ball_marginal(instance, node, radius, engine=engine)

    def ball_marginals(
        self,
        instance: SamplingInstance,
        nodes: Sequence[Node],
        radius: int,
        engine: Optional[str] = None,
    ) -> Dict[Node, Dict[Value, float]]:
        """Theorem 5.1 padded-ball marginals at many centers (barrier).

        Drains :meth:`stream_ball_marginals` into a per-node dict; see the
        streaming method for the backend semantics.  Callers that can make
        use of partial results should iterate the stream instead.
        """
        return dict(self.stream_ball_marginals(instance, nodes, radius, engine=engine))

    def warm_ball_cache(
        self, instance: SamplingInstance, tasks: Sequence[Tuple[Node, int]]
    ) -> int:
        """Precompile ``(center, radius)`` balls into the distribution cache.

        With the process backend the compilation streams in from worker
        shards (duplicates are dropped); other backends compile in-process.

        Returns
        -------
        int
            Number of distinct balls compiled.
        """
        if self.is_process and len(tasks) > 1:
            return sum(
                1
                for _ in stream_compiled_balls(
                    instance, tasks, n_workers=self.n_workers
                )
            )
        unique = list(dict.fromkeys(tasks))
        cache = instance.distribution.ball_cache()
        for center, radius in unique:
            cache.compiled_ball(center, radius)
        return len(unique)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Runtime(backend={self.backend!r}, n_chains={self.n_chains}, "
            f"n_workers={self.n_workers})"
        )


#: The default runtime: today's serial behaviour.
SERIAL_RUNTIME = Runtime()


def resolve_runtime(runtime: Union[None, str, Runtime] = None) -> Runtime:
    """Normalise a ``runtime=`` argument, rejecting unknown backends.

    Parameters
    ----------
    runtime : None, str or Runtime
        ``None`` means "serial" (the default everywhere), a string selects
        a backend with default parameters, and a :class:`Runtime` passes
        through unchanged.

    Returns
    -------
    Runtime
        The resolved execution policy.

    Raises
    ------
    ValueError
        For unknown backend names or other types.
    """
    if runtime is None:
        return SERIAL_RUNTIME
    if isinstance(runtime, Runtime):
        return runtime
    if isinstance(runtime, str):
        return Runtime(backend=runtime)
    raise ValueError(
        f"expected None, a backend name or a Runtime, got {runtime!r}"
    )
