"""Parallel execution runtime: batched chains and sharded ball compilation.

This package owns *how* work executes, separate from *what* is computed
(which stays in :mod:`repro.engine` and the algorithm modules):

``chains``
    :class:`ChainBatch` -- many independent Glauber/LubyGlauber chains as a
    ``(chains, n)`` integer code matrix, resampled per step with vectorised
    gathers into the precompiled factor tables.  Bit-identical per chain to
    the serial samplers under per-chain ``SeedSequence`` streams.
``shards``
    :class:`InstanceSpec` and the process-pool sharding of the per-node
    LOCAL computations (ball compilation, greedy boundary extension, ball
    marginals), with worker results merged back into the parent
    :class:`~repro.engine.cache.BallCache`.
``executor``
    The :class:`Runtime` facade (``serial`` / ``batched`` / ``process``
    backends) threaded through the samplers, the SSM inference engines, the
    LOCAL driver and the experiment entry points as a ``runtime=``
    parameter defaulting to today's serial behaviour.
"""

from repro.runtime.chains import (
    ChainBatch,
    batched_glauber_sample,
    batched_luby_glauber_sample,
    chain_seed_sequences,
)
from repro.runtime.executor import (
    BATCHED_BACKEND,
    PROCESS_BACKEND,
    SERIAL_BACKEND,
    SERIAL_RUNTIME,
    Runtime,
    resolve_runtime,
)
from repro.runtime.shards import (
    InstanceSpec,
    process_map,
    shard_compiled_balls,
    shard_padded_ball_marginals,
)

__all__ = [
    "ChainBatch",
    "batched_glauber_sample",
    "batched_luby_glauber_sample",
    "chain_seed_sequences",
    "Runtime",
    "resolve_runtime",
    "SERIAL_BACKEND",
    "BATCHED_BACKEND",
    "PROCESS_BACKEND",
    "SERIAL_RUNTIME",
    "InstanceSpec",
    "process_map",
    "shard_compiled_balls",
    "shard_padded_ball_marginals",
]
