"""Parallel execution runtime: batched chains and sharded ball compilation.

This package owns *how* work executes, separate from *what* is computed
(which stays in :mod:`repro.engine` and the algorithm modules):

``chains``
    :class:`ChainBatch` -- many independent chains of one
    :class:`~repro.sampling.kernels.ChainKernel` (Glauber, LubyGlauber,
    JVV rejection, sequential scan, ...) as a ``(chains, n)`` integer code
    matrix, resampled per step with vectorised gathers into the
    precompiled factor tables.  Bit-identical per chain to the kernels'
    serial reference runs under per-chain ``SeedSequence`` streams.
``shards``
    :class:`InstanceSpec`, the :data:`~repro.runtime.shards.TASK_REGISTRY`
    of spec-bound task bodies (ball marginals, ball compilation, chain
    blocks -- executed identically by the process pool, the cluster
    workers and the in-process fallbacks), and the *streaming*
    process-pool sharding of the per-node LOCAL computations: futures
    instead of ``pool.map`` barriers, the spec shipped once per worker,
    and every shard's results -- compiled balls, boundary extensions,
    capped marginal-memo deltas -- merged back into the parent
    :class:`~repro.engine.cache.BallCache` the moment the shard completes.
``shm``
    The zero-copy data plane of the process backend: bulk ndarray
    payloads (the spec's dense factor tables, chain-result code matrices)
    live in ``multiprocessing.shared_memory`` segments and only tiny
    ``(name, dtype, shape, offset)`` descriptors cross the pipe, with
    automatic pickle fallback and owner-only, leak-proof segment
    lifetime.  Selected per runtime via ``transport="shm"``.
``executor``
    The :class:`Runtime` facade (``serial`` / ``batched`` / ``process`` /
    ``cluster`` backends) threaded through the samplers, the SSM inference
    engines, the LOCAL driver and the experiment entry points as a
    ``runtime=`` parameter defaulting to today's serial behaviour.  Chain
    workloads of every kernel run through the single
    :meth:`Runtime.run_chains` path; the streaming primitives are
    :meth:`Runtime.submit`, :meth:`Runtime.map_unordered`,
    :meth:`Runtime.stream_ball_marginals` and
    :meth:`Runtime.stream_ball_marginal_tasks`.  The cluster backend's
    coordinator/worker machinery itself lives in :mod:`repro.cluster`.
"""

from repro.runtime.chains import (
    ChainBatch,
    ChainState,
    PackedBatch,
    batched_glauber_sample,
    batched_kernel_sample,
    batched_luby_glauber_sample,
    chain_seed_sequences,
    make_chain_state,
)
from repro.runtime.executor import (
    BATCHED_BACKEND,
    CLUSTER_BACKEND,
    INLINE_CHAIN_UPDATES,
    PROCESS_BACKEND,
    SERIAL_BACKEND,
    SERIAL_RUNTIME,
    Runtime,
    resolve_runtime,
)
from repro.runtime.shards import (
    MEMO_DELTA_CAP,
    TASK_REGISTRY,
    TRANSPORTS,
    InstanceSpec,
    process_map,
    process_map_unordered,
    register_task,
    run_chain_blocks,
    shard_compiled_balls,
    shard_padded_ball_marginals,
    stream_ball_marginal_tasks,
    stream_compiled_balls,
    stream_padded_ball_marginals,
)
from repro.runtime.shm import (
    SharedArrayPack,
    attach_array,
    pack_arrays,
    shm_available,
)

__all__ = [
    "ChainBatch",
    "ChainState",
    "PackedBatch",
    "make_chain_state",
    "batched_glauber_sample",
    "batched_kernel_sample",
    "batched_luby_glauber_sample",
    "chain_seed_sequences",
    "TASK_REGISTRY",
    "register_task",
    "run_chain_blocks",
    "Runtime",
    "resolve_runtime",
    "SERIAL_BACKEND",
    "BATCHED_BACKEND",
    "PROCESS_BACKEND",
    "CLUSTER_BACKEND",
    "SERIAL_RUNTIME",
    "INLINE_CHAIN_UPDATES",
    "InstanceSpec",
    "MEMO_DELTA_CAP",
    "TRANSPORTS",
    "SharedArrayPack",
    "attach_array",
    "pack_arrays",
    "shm_available",
    "process_map",
    "process_map_unordered",
    "shard_compiled_balls",
    "shard_padded_ball_marginals",
    "stream_ball_marginal_tasks",
    "stream_compiled_balls",
    "stream_padded_ball_marginals",
]
