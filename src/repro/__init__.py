"""repro: reproduction of "On Local Distributed Sampling and Counting".

This package implements, as an executable library, the LOCAL-model
distributed sampling and counting (inference) framework of Feng and Yin
(PODC 2018, arXiv:1802.06686), together with every substrate the paper
relies on:

* a Gibbs-distribution (weighted CSP / factor graph) substrate,
* concrete spin and edge models (hardcore, Ising / anti-ferromagnetic
  2-spin, proper colorings, matchings, hypergraph matchings),
* simulators for the LOCAL and SLOCAL models, including network
  decomposition and the chromatic scheduler of Ghaffari, Kuhn and Maus,
* approximate-inference engines (brute force, strong-spatial-mixing based,
  Weitz computation trees, correlation decay for matchings and colorings),
* the paper's reductions: inference <=> sampling (Theorems 3.2 and 3.4),
  the boosting lemma (Lemma 4.1), the distributed JVV exact sampler
  (Theorem 4.2), and the strong-spatial-mixing characterisation
  (Theorem 5.1, Corollaries 5.2 and 5.3),
* baselines (Glauber dynamics, LubyGlauber) and a spatial-mixing
  measurement toolkit used to reproduce the computational phase transition.

The most convenient entry point is :mod:`repro.core`:

>>> from repro.core import LocalSamplingProblem
>>> from repro.models import hardcore_model
>>> from repro.graphs import cycle_graph
>>> model = hardcore_model(cycle_graph(8), fugacity=0.5)
>>> problem = LocalSamplingProblem(model, seed=1)
>>> sample = problem.sample_exact()
"""

from repro.version import __version__

__all__ = ["__version__"]
