"""The paper's reductions as composable functions.

Each function corresponds to one theorem and maps algorithms to algorithms
(or algorithms to measured quantities), so that the equivalences of the
paper can be exercised programmatically:

==============================  ==========================================
Paper statement                 Function
==============================  ==========================================
Theorem 3.2 (inference => sampling)   :func:`sampling_from_inference`
Theorem 3.4 (sampling => inference)   :func:`inference_from_sampling`
Lemma 4.1 (boosting)                  :func:`boost_inference`
Theorem 4.2 (distributed JVV)         :func:`exact_sampling_from_inference`
Theorem 5.1, forward direction        :func:`ssm_rate_from_inference`
Theorem 5.1, converse direction       :func:`inference_from_ssm`
==============================  ==========================================
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.gibbs.instance import SamplingInstance
from repro.inference.base import InferenceAlgorithm
from repro.inference.boosting import BoostedInference
from repro.inference.locality import error_at_locality
from repro.inference.ssm_inference import BoundaryPaddedInference
from repro.sampling.jvv import ExactSampleResult, sample_exact_local, sample_exact_slocal
from repro.sampling.sampling_to_inference import InferenceFromSampling
from repro.sampling.sequential import (
    ApproximateSampleResult,
    sample_approximate_local,
    sample_approximate_slocal,
)


def sampling_from_inference(
    instance: SamplingInstance,
    inference: InferenceAlgorithm,
    error: float,
    seed: int = 0,
    local: bool = True,
) -> ApproximateSampleResult:
    """Theorem 3.2: draw an approximate sample using an inference engine.

    With ``local=True`` the SLOCAL sequential sampler is simulated in the
    LOCAL model through Lemma 3.1 (rounds include the ``O(log^2 n)``
    scheduling overhead); with ``local=False`` the raw SLOCAL run is returned.
    """
    if local:
        return sample_approximate_local(instance, inference, error, seed=seed)
    return sample_approximate_slocal(instance, inference, error, seed=seed)


def inference_from_sampling(
    sampler: Callable[[SamplingInstance, float, int], tuple],
    num_samples: Optional[int] = None,
    seed: int = 0,
) -> InferenceFromSampling:
    """Theorem 3.4: build an inference engine from an approximate sampler."""
    return InferenceFromSampling(sampler, num_samples=num_samples, seed=seed)


def boost_inference(inference: InferenceAlgorithm) -> BoostedInference:
    """Lemma 4.1: lift a TV-accurate engine to multiplicative accuracy."""
    return BoostedInference(inference)


def exact_sampling_from_inference(
    instance: SamplingInstance,
    inference: InferenceAlgorithm,
    seed: int = 0,
    local: bool = True,
    inference_error: Optional[float] = None,
) -> ExactSampleResult:
    """Theorem 4.2: run the distributed JVV sampler on top of an inference engine."""
    if local:
        return sample_exact_local(
            instance, inference, seed=seed, inference_error=inference_error
        )
    return sample_exact_slocal(
        instance, inference, seed=seed, inference_error=inference_error
    )


def ssm_rate_from_inference(
    inference: InferenceAlgorithm,
    instance: SamplingInstance,
    radius: int,
) -> float:
    """Theorem 5.1, forward direction: the SSM rate implied by an inference engine.

    If the engine reaches total-variation error ``delta`` within ``t(n,
    delta)`` rounds, the class has SSM with rate ``delta_n(t) = 2 * min{delta
    : t(n, delta) <= t - 1}``.  We invert the engine's own locality schedule
    numerically by bisection over ``delta``.
    """
    if radius < 1:
        return 1.0
    low, high = 1e-12, 1.0
    # Find the smallest delta whose declared locality fits within radius - 1.
    if inference.locality(instance, high) > radius - 1:
        return 2.0 * high
    for _ in range(60):
        mid = (low * high) ** 0.5
        if inference.locality(instance, mid) <= radius - 1:
            high = mid
        else:
            low = mid
    return 2.0 * high


def inference_from_ssm(
    decay_rate: float,
    constant: float = 1.0,
    max_radius: Optional[int] = None,
) -> BoundaryPaddedInference:
    """Theorem 5.1, converse direction: an inference engine from an SSM rate."""
    return BoundaryPaddedInference(
        decay_rate=decay_rate, constant=constant, max_radius=max_radius
    )


def predicted_error(decay_rate: float, size: int, radius: int, constant: float = 1.0) -> float:
    """The SSM bound ``C n alpha^t`` -- convenience re-export used by benchmarks."""
    return error_at_locality(decay_rate, size, radius, constant=constant)
