"""Global approximate counting from local inference (the chain-rule view).

The paper frames *inference* (per-node marginals) as the local counterpart of
counting because, for self-reducible problems, the global partition function
decomposes through the chain rule into conditional marginal probabilities
(Section 1, citing Jerrum's monograph):

``Z(tau) = w(sigma) / prod_i mu^{tau cup sigma_{<i}}_{v_i}(sigma_{v_i})``

for *any* feasible configuration ``sigma`` extending ``tau``.  Replacing the
exact conditional marginals by the output of an approximate-inference engine
with multiplicative error ``epsilon`` yields a ``(1 ± O(n epsilon))``
approximation of ``Z`` -- which is how the paper's local inference algorithms
translate into approximate counting on a classical machine.

This module implements that decomposition on top of any
:class:`~repro.inference.base.InferenceAlgorithm`, plus the companion
estimator for the *number of feasible solutions* of uniform models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence

from repro.gibbs.instance import SamplingInstance
from repro.inference.base import InferenceAlgorithm

Node = Hashable
Value = Hashable


@dataclass
class CountingResult:
    """An estimate of a conditional partition function ``Z(tau)``."""

    #: The estimated partition function.
    estimate: float
    #: Natural logarithm of the estimate (numerically safer for large n).
    log_estimate: float
    #: The feasible configuration used as the chain-rule anchor.
    anchor: Dict[Node, Value]
    #: Per-node conditional marginal values entering the product.
    factors: Dict[Node, float]
    #: The multiplicative inference error the engine was asked for.
    inference_error: float


def _greedy_anchor(
    instance: SamplingInstance,
    inference: InferenceAlgorithm,
    error: float,
    ordering: Sequence[Node],
) -> Dict[Node, Value]:
    """A feasible full configuration built by following the engine's mode.

    Mirrors the first pass of the local-JVV sampler: extend the pinning node
    by node, always choosing a value of positive estimated marginal.
    """
    current = instance
    anchor: Dict[Node, Value] = instance.pinning.as_dict()
    for node in ordering:
        if node in anchor:
            continue
        marginal = inference.marginal(current, node, error)
        positive = {value: p for value, p in marginal.items() if p > 0.0}
        if not positive:
            raise RuntimeError(
                f"inference reported an all-zero marginal at node {node!r}; "
                "cannot anchor the chain rule"
            )
        choice = max(sorted(positive, key=repr), key=lambda v: positive[v])
        anchor[node] = choice
        current = current.conditioned({node: choice})
    return anchor


def estimate_partition_function(
    instance: SamplingInstance,
    inference: InferenceAlgorithm,
    error: float = 0.01,
    ordering: Optional[Sequence[Node]] = None,
    anchor: Optional[Dict[Node, Value]] = None,
) -> CountingResult:
    """Estimate ``Z(tau)`` by the chain-rule / self-reduction decomposition.

    Parameters
    ----------
    instance:
        The instance ``(G, x, tau)`` whose conditional partition function is
        estimated.
    inference:
        Any inference engine; for a multiplicative error guarantee use a
        boosted engine (:class:`~repro.inference.boosting.BoostedInference`)
        or an exact oracle.
    error:
        The per-node (multiplicative) inference error requested.
    ordering:
        The node ordering used for the decomposition (default: ID order).
        Any ordering gives the same answer with exact marginals.
    anchor:
        Optionally, a feasible full configuration extending the pinning to
        anchor the chain rule; by default one is constructed greedily.
    """
    distribution = instance.distribution
    order = list(distribution.nodes) if ordering is None else list(ordering)
    if anchor is None:
        anchor = _greedy_anchor(instance, inference, error, order)
    else:
        anchor = dict(anchor)
        missing = [node for node in distribution.nodes if node not in anchor]
        if missing:
            raise ValueError(f"anchor configuration is missing nodes {missing}")
        if distribution.weight(anchor) <= 0.0:
            raise ValueError("the anchor configuration is infeasible")
        if not instance.pinning.agrees_with(anchor):
            raise ValueError("the anchor configuration contradicts the pinning")

    log_weight = distribution.log_weight(anchor)
    if math.isinf(log_weight):
        raise RuntimeError("the anchored configuration has zero weight")

    log_product = 0.0
    factors: Dict[Node, float] = {}
    current = instance
    for node in order:
        if node in instance.pinning:
            continue
        marginal = inference.marginal(current, node, error)
        probability = marginal.get(anchor[node], 0.0)
        if probability <= 0.0:
            raise RuntimeError(
                f"inference assigned zero probability to the anchor value at {node!r}"
            )
        factors[node] = probability
        log_product += math.log(probability)
        current = current.conditioned({node: anchor[node]})

    log_estimate = log_weight - log_product
    return CountingResult(
        estimate=math.exp(log_estimate),
        log_estimate=log_estimate,
        anchor=anchor,
        factors=factors,
        inference_error=error,
    )


def estimate_solution_count(
    instance: SamplingInstance,
    inference: InferenceAlgorithm,
    error: float = 0.01,
) -> float:
    """Estimate the number of feasible solutions of a uniform model.

    For models whose factors are 0/1-valued (uniform distributions over
    feasible configurations) the partition function *is* the number of
    feasible solutions, so this is a thin convenience wrapper.
    """
    return estimate_partition_function(instance, inference, error=error).estimate
