"""The user-facing problem object.

``LocalSamplingProblem`` wires a model, a pinning and a seed to the paper's
machinery: it picks a suitable approximate-inference engine from the model's
metadata (correlation decay for two-spin-like models, belief propagation for
colorings, ball-exact inference as the general fallback), and exposes

* :meth:`LocalSamplingProblem.infer` -- approximate inference at every node,
* :meth:`LocalSamplingProblem.sample` -- approximate sampling (Theorem 3.2),
* :meth:`LocalSamplingProblem.sample_exact` -- exact sampling through the
  distributed JVV sampler (Theorem 4.2),

each reporting the LOCAL round complexity it charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional

from repro.gibbs.distribution import GibbsDistribution
from repro.gibbs.instance import SamplingInstance
from repro.inference.base import InferenceAlgorithm
from repro.inference.belief_propagation import BeliefPropagationInference
from repro.inference.correlation_decay import TwoSpinCorrelationDecayInference
from repro.inference.ssm_inference import BoundaryPaddedInference
from repro.sampling.jvv import ExactSampleResult, sample_exact_local, sample_exact_slocal
from repro.sampling.sequential import (
    ApproximateSampleResult,
    sample_approximate_local,
    sample_approximate_slocal,
)

Node = Hashable
Value = Hashable

#: Models the correlation-decay (self-avoiding-walk) engine supports.
_TWO_SPIN_MODELS = {"hardcore", "two-spin", "ising", "matching", "hypergraph-matching"}


@dataclass
class InferenceReport:
    """Result of an inference run: per-node marginals and the rounds charged."""

    marginals: Dict[Node, Dict[Value, float]]
    rounds: int
    error: float
    engine: str


class LocalSamplingProblem:
    """A distributed sampling/counting problem instance with sensible defaults."""

    def __init__(
        self,
        distribution: GibbsDistribution,
        pinning: Optional[Mapping[Node, Value]] = None,
        seed: int = 0,
        inference: Optional[InferenceAlgorithm] = None,
        max_engine_depth: Optional[int] = None,
    ) -> None:
        self.instance = SamplingInstance(distribution, pinning)
        self.seed = seed
        self._engine = inference if inference is not None else self._default_engine(
            distribution, max_engine_depth
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _default_engine(
        distribution: GibbsDistribution, max_depth: Optional[int]
    ) -> InferenceAlgorithm:
        model = distribution.metadata.get("model")
        if model in _TWO_SPIN_MODELS:
            return TwoSpinCorrelationDecayInference.for_model(
                distribution, max_depth=max_depth
            )
        if model in ("coloring", "list-coloring"):
            return BeliefPropagationInference(decay_rate=0.5)
        max_arity = max((len(f.scope) for f in distribution.factors), default=1)
        if max_arity <= 2:
            return BeliefPropagationInference(decay_rate=0.5)
        return BoundaryPaddedInference(max_radius=max_depth)

    @property
    def distribution(self) -> GibbsDistribution:
        """The underlying model."""
        return self.instance.distribution

    @property
    def inference_engine(self) -> InferenceAlgorithm:
        """The approximate-inference engine in use."""
        return self._engine

    # ------------------------------------------------------------------
    def conditioned(self, extra: Mapping[Node, Value]) -> "LocalSamplingProblem":
        """The self-reduced problem with additional nodes pinned."""
        merged = self.instance.pinning.union(extra)
        return LocalSamplingProblem(
            self.distribution, merged, seed=self.seed, inference=self._engine
        )

    def infer(self, error: float = 0.05, nodes=None) -> InferenceReport:
        """Approximate inference: every (free) node's marginal within ``error``."""
        marginals = self._engine.marginals(self.instance, error, nodes=nodes)
        rounds = self._engine.locality(self.instance, error)
        return InferenceReport(
            marginals=marginals,
            rounds=rounds,
            error=error,
            engine=self._engine.name(),
        )

    def sample(
        self, error: float = 0.05, seed: Optional[int] = None, local: bool = True
    ) -> ApproximateSampleResult:
        """Approximate sampling via the Theorem 3.2 reduction."""
        run_seed = self.seed if seed is None else seed
        if local:
            return sample_approximate_local(self.instance, self._engine, error, seed=run_seed)
        return sample_approximate_slocal(self.instance, self._engine, error, seed=run_seed)

    def sample_exact(
        self,
        seed: Optional[int] = None,
        local: bool = True,
        inference_error: Optional[float] = None,
    ) -> ExactSampleResult:
        """Exact sampling via the distributed JVV sampler (Theorem 4.2)."""
        run_seed = self.seed if seed is None else seed
        if local:
            return sample_exact_local(
                self.instance, self._engine, seed=run_seed, inference_error=inference_error
            )
        return sample_exact_slocal(
            self.instance, self._engine, seed=run_seed, inference_error=inference_error
        )

    def exact_marginal(self, node: Node) -> Dict[Value, float]:
        """Ground-truth marginal of a node (variable elimination; non-local)."""
        return self.instance.target_marginal(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalSamplingProblem(model={self.distribution.name!r}, "
            f"n={self.instance.size}, engine={self._engine.name()})"
        )
