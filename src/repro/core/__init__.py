"""High-level API: the paper's reductions packaged behind one problem object.

:class:`~repro.core.problem.LocalSamplingProblem` bundles a model (a
:class:`~repro.gibbs.GibbsDistribution`), an optional pinning ``tau`` and a
seed, selects an appropriate inference engine from the model's metadata, and
exposes the three tasks of the paper -- inference, approximate sampling and
exact sampling -- with their LOCAL round complexities.

:mod:`~repro.core.reductions` exposes the individual theorem-level reductions
as composable functions for users who want to mix and match engines.
"""

from repro.core.problem import LocalSamplingProblem
from repro.core.counting import (
    CountingResult,
    estimate_partition_function,
    estimate_solution_count,
)
from repro.core.reductions import (
    boost_inference,
    exact_sampling_from_inference,
    inference_from_sampling,
    inference_from_ssm,
    sampling_from_inference,
    ssm_rate_from_inference,
)

__all__ = [
    "LocalSamplingProblem",
    "CountingResult",
    "estimate_partition_function",
    "estimate_solution_count",
    "boost_inference",
    "exact_sampling_from_inference",
    "inference_from_sampling",
    "inference_from_ssm",
    "sampling_from_inference",
    "ssm_rate_from_inference",
]
