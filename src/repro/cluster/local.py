"""Spawn localhost cluster workers in subprocesses.

The zero-configuration on-ramp of the cluster backend: tests, benchmarks
and the quickstart example call :func:`spawn_workers` to get ``n`` real
:mod:`repro.cluster.worker` processes on loopback ephemeral ports, then
hand ``pool.addresses`` to ``Runtime(backend="cluster", addresses=...)``
(or to a :class:`~repro.cluster.coordinator.ClusterCoordinator`
directly).  Everything a multi-machine deployment exercises -- the wire
protocol, spec shipping, heartbeats, requeue on death -- runs the same
way against these subprocesses, just without leaving the host.

Workers are discovered through their stdout contract: a worker prints
``repro-cluster-worker listening on host:port`` as its first line (see
:func:`repro.cluster.worker.main`), which is how ephemeral ports are
resolved without a race.  The pool terminates its workers on
:meth:`LocalWorkerPool.terminate` and on context-manager exit; as a
safety net, a :func:`weakref.finalize` finalizer kills them when an
abandoned pool is garbage-collected *and* at interpreter exit -- a
coordinator that dies before calling ``shutdown()`` cannot leak worker
processes.
"""

from __future__ import annotations

import logging
import os
import subprocess
import sys
import tempfile
import weakref
from pathlib import Path
from typing import List, Optional, Tuple

from repro import obs
from repro.cluster import chaos, protocol

_log = obs.get_logger("cluster.local")

Address = Tuple[str, int]


def _stderr_tail(stderr_file, limit: int = 2000) -> str:
    """The tail of a worker's captured stderr, formatted for an error."""
    if stderr_file is None:
        return ""
    try:
        stderr_file.seek(0)
        text = stderr_file.read().strip()
    except (OSError, ValueError):
        return ""
    if not text:
        return ""
    return f"; worker stderr:\n{text[-limit:]}"


def _terminate_processes(processes, stderr_files) -> None:
    """Finalizer body: stop every worker subprocess and close its files.

    Module-level (not a bound method) so :func:`weakref.finalize` can hold
    it without keeping the pool alive; robust to workers that already
    exited or were killed individually (``poll``/``kill``/``wait`` are all
    idempotent on a reaped process).
    """
    for process in processes:
        if process.poll() is None:
            process.terminate()
    for index, process in enumerate(processes):
        try:
            process.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
            process.kill()
            process.wait()
        if process.stdout is not None:
            process.stdout.close()
        # A worker that wrote to stderr (crash traceback, injected fault,
        # unexpected exit) surfaces here instead of vanishing with the
        # temp file.  Guarded: this body also runs from an atexit
        # finalizer, where logging streams may already be torn down.
        try:
            tail = (
                _stderr_tail(stderr_files[index])
                if index < len(stderr_files)
                else ""
            )
            if tail or (process.returncode or 0) not in (0, -15):
                obs.log_event(
                    _log, logging.WARNING, "local.worker_exited",
                    pid=process.pid, returncode=process.returncode,
                    stderr=tail.lstrip("; ") or "<empty>",
                )
        except Exception:  # pragma: no cover - interpreter shutdown
            pass
    for stderr_file in stderr_files:
        try:
            stderr_file.close()
        except OSError:  # pragma: no cover - already closed
            pass


class LocalWorkerPool:
    """A handful of localhost worker subprocesses and their addresses."""

    def __init__(
        self,
        processes: List[subprocess.Popen],
        addresses: List[Address],
        stderr_files: Optional[List] = None,
    ) -> None:
        self.processes = processes
        #: ``(host, port)`` pairs, one per worker, in spawn order.
        self.addresses = list(addresses)
        self._stderr_files = list(stderr_files or [])
        # The cleanup runs whichever comes first: an explicit terminate(),
        # garbage collection of an abandoned pool, or interpreter exit
        # (weakref.finalize registers itself atexit) -- and exactly once.
        self._finalizer = weakref.finalize(
            self, _terminate_processes, self.processes, self._stderr_files
        )

    @property
    def _terminated(self) -> bool:
        """Whether the pool's cleanup has run (test observability hook)."""
        return not self._finalizer.alive

    def __len__(self) -> int:
        return len(self.processes)

    def kill(self, index: int) -> None:
        """Hard-kill one worker (the failure-injection hook of the tests).

        Idempotent: killing an already-dead or already-killed worker is a
        no-op, and pool-level :meth:`terminate` afterwards stays safe --
        double-kill must never raise during cleanup paths.
        """
        process = self.processes[index]
        if process.poll() is None:
            process.kill()
        process.wait()

    def alive(self, index: int) -> bool:
        """Whether a worker subprocess is still running."""
        return self.processes[index].poll() is None

    def terminate(self) -> None:
        """Stop every worker (idempotent; also runs via GC/exit finalizer)."""
        self._finalizer()

    def __enter__(self) -> "LocalWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.terminate()


def spawn_workers(
    count: int = 2,
    host: str = "127.0.0.1",
    python: Optional[str] = None,
    startup_timeout: float = 60.0,
    auth_key=None,
    capacities: Optional[List[int]] = None,
    fault_plans: Optional[List[Optional["chaos.FaultPlan"]]] = None,
) -> LocalWorkerPool:
    """Start ``count`` cluster workers as subprocesses on loopback.

    Parameters
    ----------
    count : int
        Number of workers to spawn.
    host : str
        Interface the workers bind (loopback by default).
    python : str, optional
        Interpreter to run the workers with (default: this interpreter).
    startup_timeout : float
        Seconds to wait for each worker's listening line before giving up
        (enforced per worker via a read deadline on its stdout pipe).
    auth_key : str or bytes, optional
        Shared HMAC secret handed to every worker (via its environment,
        not argv -- keys must not show up in ``ps``).  Pair it with the
        same key on the coordinator/Runtime.
    capacities : list of int, optional
        Per-worker dispatch weights (``--capacity``), one per worker.
    fault_plans : list, optional
        Per-worker :class:`repro.cluster.chaos.FaultPlan` (or ``None``)
        entries, shipped through the :data:`repro.cluster.chaos.CHAOS_ENV`
        environment variable -- the chaos tests' way of arming a real
        subprocess worker.

    Returns
    -------
    LocalWorkerPool
        Live workers; pass ``pool.addresses`` to
        ``Runtime(backend="cluster", addresses=pool.addresses)``.

    Raises
    ------
    RuntimeError
        When a worker exits (or prints something unexpected) before
        announcing its listening address; the message carries the tail of
        the worker's captured stderr.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    if capacities is not None and len(capacities) != count:
        raise ValueError(f"need {count} capacities, got {len(capacities)}")
    if fault_plans is not None and len(fault_plans) != count:
        raise ValueError(f"need {count} fault plans, got {len(fault_plans)}")
    import repro

    source_root = str(Path(repro.__file__).resolve().parents[1])
    environment = os.environ.copy()
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        source_root if not existing else source_root + os.pathsep + existing
    )
    key = protocol.normalize_auth_key(auth_key)
    if key is not None:
        try:
            # Must round-trip the worker-side UTF-8 normalisation of
            # protocol.normalize_auth_key; arbitrary binary keys cannot
            # cross an environment variable faithfully.
            environment[protocol.AUTH_KEY_ENV] = key.decode("utf-8")
        except UnicodeDecodeError:
            raise ValueError(
                "auth_key must be UTF-8 text to hand to subprocess workers "
                "via the environment"
            )
    interpreter = python or sys.executable
    processes: List[subprocess.Popen] = []
    stderr_files = []
    addresses: List[Address] = []
    try:
        for index in range(count):
            # Worker stderr goes to an unlinked temp file rather than
            # DEVNULL (a startup crash would otherwise be undiagnosable)
            # or a pipe (which nobody drains and could fill up).
            stderr_file = tempfile.TemporaryFile(mode="w+")
            stderr_files.append(stderr_file)
            command = [
                interpreter,
                "-m",
                "repro.cluster",
                "--host",
                host,
                "--port",
                "0",
            ]
            if capacities is not None:
                command += ["--capacity", str(capacities[index])]
            worker_environment = environment
            if fault_plans is not None:
                worker_environment = environment.copy()
                if fault_plans[index] is not None:
                    worker_environment[chaos.CHAOS_ENV] = fault_plans[index].to_json()
                else:
                    worker_environment.pop(chaos.CHAOS_ENV, None)
            processes.append(
                subprocess.Popen(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=stderr_file,
                    env=worker_environment,
                    text=True,
                )
            )
        for process, stderr_file in zip(processes, stderr_files):
            addresses.append(_read_address(process, startup_timeout, stderr_file))
        for process, address in zip(processes, addresses):
            obs.log_event(
                _log, logging.INFO, "local.worker_spawned",
                pid=process.pid, address=f"{address[0]}:{address[1]}",
            )
    except BaseException:
        for process in processes:
            if process.poll() is None:
                process.kill()
            process.wait()
            if process.stdout is not None:
                process.stdout.close()
        for stderr_file in stderr_files:
            stderr_file.close()
        raise
    return LocalWorkerPool(processes, addresses, stderr_files)


def _read_address(
    process: subprocess.Popen, timeout: float, stderr_file=None
) -> Address:
    """Parse the worker's ``listening on host:port`` announcement."""
    import select

    deadline_args = ([process.stdout], [], [], timeout)
    ready, _, _ = select.select(*deadline_args)
    if not ready:
        raise RuntimeError(
            f"cluster worker (pid {process.pid}) did not announce its address "
            f"within {timeout:.0f}s{_stderr_tail(stderr_file)}"
        )
    line = process.stdout.readline()
    if not line:
        try:  # EOF means the worker is exiting; reap it for a real code
            returncode = process.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
            returncode = None
        raise RuntimeError(
            "cluster worker exited before announcing its address "
            f"(exit code {returncode}){_stderr_tail(stderr_file)}"
        )
    marker = "listening on "
    position = line.rfind(marker)
    if position < 0:
        raise RuntimeError(
            f"unexpected worker announcement: {line!r}{_stderr_tail(stderr_file)}"
        )
    host, _, port = line[position + len(marker) :].strip().rpartition(":")
    if not host or not port.isdigit():
        raise RuntimeError(
            f"unexpected worker announcement: {line!r}{_stderr_tail(stderr_file)}"
        )
    return host, int(port)
