"""``repro-cluster-worker``: serve shard work to a cluster coordinator.

A worker is a TCP server speaking the framed-pickle protocol of
:mod:`repro.cluster.protocol`.  It serves one coordinator connection at a
time (the coordinator holds one persistent connection per worker) and
splits each connection across two threads:

* the *reader* loop receives frames and stays responsive no matter how
  long a task runs -- it caches ``SPEC`` payloads, enqueues ``TASK``
  frames, and echoes ``HEARTBEAT`` frames immediately (which is what lets
  the coordinator distinguish "busy on a long task" from "dead");
* the *runner* thread executes queued tasks one at a time, in arrival
  order, and sends back ``RESULT`` (or ``ERROR`` with the formatted
  traceback) frames.

The task bodies are deliberately *shared* with the process backend: every
spec-bound kind resolves through the
:data:`~repro.runtime.shards.TASK_REGISTRY` of :mod:`repro.runtime.shards`,
so a ``ball_marginals`` task runs exactly the body a process-pool worker
runs and a ``chain_block`` task runs the same kernel-driven batched block
-- cluster results are bit-identical to both the process backend and the
serial loop.  The spec crosses the wire at most once per connection and
its ball memo stays warm across tasks, mirroring the pool initializer of
PR 3.

Task kinds
----------

``ball_marginals``
    ``{"spec_id", "tasks", "memo_cap"}`` -> the shard payload
    ``(marginals, balls, extras, memos)`` of the process backend.
``compile_balls``
    ``{"spec_id", "tasks"}`` -> ``{(center, radius): CompiledGibbs}``.
``chain_block``
    ``{"spec_id", "kernel", "count", "seeds", "initial"}`` -> final
    configurations of a batched block of chains of any registered
    :class:`~repro.sampling.kernels.ChainKernel` (``count`` units each),
    run on the instance reconstructed from the spec
    (:meth:`~repro.runtime.shards.InstanceSpec.to_instance`).  The legacy
    ``{"kind": "glauber"|"luby"}`` payload shape is still accepted.
``call``
    ``(function, args, kwargs)`` -> ``function(*args, **kwargs)`` for any
    picklable (module-level) callable; backs ``Runtime.submit`` and
    ``Runtime.map_unordered`` on the cluster backend.
``ping``
    Echoes its payload; used for smoke tests and latency probes.
``cancel``
    ``[task_id, ...]`` -- handled by the *reader* loop (never queued):
    marks queued tasks as cancelled so the runner skips them without a
    reply.  This is how an abandoned coordinator stream stops speculative
    work (e.g. the radii past the answer in the E5 sweep) instead of
    letting it grind to completion.

Run a worker from the command line (also installed as the
``repro-cluster-worker`` console script)::

    python -m repro.cluster --host 127.0.0.1 --port 9000

``--port 0`` binds an ephemeral port; the chosen address is printed as
the first line of stdout, which is how
:func:`repro.cluster.local.spawn_workers` discovers its subprocesses.

``--auth-key`` (or the :data:`repro.cluster.protocol.AUTH_KEY_ENV`
environment variable) arms HMAC-SHA256 frame authentication: keyless or
wrong-key coordinators are rejected with a clean ERROR before any payload
is unpickled.  ``--capacity N`` announces a relative dispatch weight, so
a beefy host can take N times the in-flight tasks of a capacity-1 worker.
A JSON :class:`repro.cluster.chaos.FaultPlan` in the
:data:`repro.cluster.chaos.CHAOS_ENV` environment variable arms
deterministic fault injection (crash after N tasks, stalled heartbeats,
dropped/corrupted frames) -- test harness only.
"""

from __future__ import annotations

import argparse
import logging
import os
import queue
import socket
import threading
import traceback
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro import obs
from repro.cluster import chaos, protocol
from repro.runtime.shards import TASK_REGISTRY, InstanceSpec

_log = obs.get_logger("cluster.worker")

#: Retain at most this many specs per connection (FIFO eviction); a
#: coordinator normally streams one spec at a time, so this only matters
#: for long-lived connections multiplexing many instances.  (Queued tasks
#: are immune to eviction: the reader pins each task's spec at enqueue.)
SPEC_CACHE_LIMIT = 4

#: Reset the cancelled-task-id set past this size.  Ids of tasks that had
#: already executed when their cancel directive arrived accumulate here;
#: clearing is harmless (an un-cancelled task just runs and its RESULT is
#: dropped by the coordinator, which no longer tracks the id).
CANCEL_BACKLOG_LIMIT = 65536

#: Sentinel pushed on the task queue to stop the runner thread.
_STOP = object()

#: Cap on the textual error report shipped in an ERROR frame: an exception
#: whose repr embeds a large payload (e.g. a chain block's full argument
#: dict) must never make the failure report itself megabytes on the wire.
_ERROR_TEXT_LIMIT = 64 * 1024


def _error_text(error, with_traceback: bool = False) -> str:
    """A bounded textual error report that always frames cheaply."""
    message = f"{error}\n{traceback.format_exc()}" if with_traceback else str(error)
    if len(message) > _ERROR_TEXT_LIMIT:
        message = message[:_ERROR_TEXT_LIMIT] + "... [error report truncated]"
    return message


def _enable_keepalive(
    connection: socket.socket, idle: int = 60, interval: int = 10, probes: int = 5
) -> None:
    """Arm TCP keepalive so a silently vanished coordinator frees the worker.

    Heartbeats flow coordinator -> worker only, so a coordinator host that
    dies without FIN/RST (power loss, network partition) would otherwise
    leave the single-connection worker blocked in ``recv`` forever and
    unable to serve a replacement coordinator.  With these settings the
    kernel tears the dead connection down after roughly
    ``idle + interval * probes`` seconds of silence.
    """
    try:
        connection.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
        connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_KEEPIDLE, idle)
        connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_KEEPINTVL, interval)
        connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_KEEPCNT, probes)
    except (OSError, AttributeError):  # pragma: no cover - exotic platforms
        pass


def run_task(kind: str, args, specs: Dict[int, InstanceSpec], spec=None):
    """Execute one task body against the connection's spec cache.

    Split out of the server loop so tests (and the coordinator's
    in-process fallback) can run task payloads without a socket.  ``spec``
    is the snapshot the reader loop pinned to the task *at enqueue time*;
    it takes precedence over a cache lookup, so a task that waited in the
    queue while later ``SPEC`` frames evicted its entry still runs.
    """
    if kind == "ping":
        return args
    if kind == "call":
        function, call_args, call_kwargs = args
        return function(*call_args, **call_kwargs)
    body = TASK_REGISTRY.get(kind)
    if body is None:
        raise protocol.ProtocolError(f"unknown task kind {kind!r}")
    spec_id = args["spec_id"]
    if spec is None:
        spec = specs.get(spec_id)
    if spec is None:
        raise protocol.ProtocolError(
            f"task references unknown spec {spec_id!r}; "
            "the coordinator must send SPEC before TASK"
        )
    # One registry, every backend: the same body a process-pool worker (or
    # the in-process fallback) would execute, against this connection's spec.
    return body(args, spec=spec)


class ClusterWorker:
    """A single-connection worker server bound to ``(host, port)``.

    Parameters
    ----------
    host : str
        Interface to bind; default loopback (bind non-loopback interfaces
        only on trusted networks -- the transport pickles).
    port : int
        TCP port; ``0`` picks an ephemeral port (read :attr:`address`).
    auth_key : str or bytes, optional
        Shared HMAC secret; every frame is then authenticated and
        unauthenticated coordinators are rejected with a readable
        plaintext ERROR.  Defaults to :data:`protocol.AUTH_KEY_ENV` from
        the environment (unset/empty means no authentication).  The key
        gates remote code execution -- share it only among mutually
        trusting hosts.
    capacity : int
        Relative dispatch weight announced in the HELLO handshake: a
        capacity-2 worker is offered twice the in-flight tasks of a
        capacity-1 worker by the coordinator's least-loaded policy.
    fault_plan : repro.cluster.chaos.FaultPlan, optional
        Deterministic fault injection (tests only): arms the outgoing
        frame hooks, heartbeat stalling and kill-after-N-tasks.  Defaults
        to :data:`chaos.CHAOS_ENV` from the environment.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_key=None,
        capacity: int = 1,
        fault_plan: Optional[chaos.FaultPlan] = None,
    ) -> None:
        self._key = (
            protocol.normalize_auth_key(auth_key)
            if auth_key is not None
            else protocol.auth_key_from_env()
        )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        if fault_plan is None:
            raw_plan = os.environ.get(chaos.CHAOS_ENV)
            if raw_plan:
                fault_plan = chaos.FaultPlan.from_json(raw_plan)
        self._faults = fault_plan
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(4)
        #: The bound ``(host, port)`` pair (the real port when 0 was asked).
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._closed = False

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Accept coordinator connections until :meth:`close` is called.

        Connections are served one at a time; a coordinator that
        disconnects (cleanly or not) returns the worker to ``accept``,
        with all connection state (spec cache included) discarded.
        """
        while not self._closed:
            try:
                connection, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            obs.log_event(
                _log, logging.INFO, "worker.connection_accepted",
                peer=f"{peer[0]}:{peer[1]}",
            )
            try:
                self._serve_connection(connection)
            except Exception as error:
                # A bad connection must never kill the server.
                obs.log_event(
                    _log, logging.WARNING, "worker.connection_failed",
                    peer=f"{peer[0]}:{peer[1]}", error=error,
                )
            finally:
                try:
                    connection.close()
                except OSError as error:
                    obs.log_event(
                        _log, logging.DEBUG, "worker.connection_close_failed",
                        error=error,
                    )

    def close(self) -> None:
        """Stop accepting connections (idempotent)."""
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "ClusterWorker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _serve_connection(self, connection: socket.socket) -> None:
        """Handshake, then pump frames until the coordinator hangs up."""
        _enable_keepalive(connection)
        send_lock = threading.Lock()
        key = self._key
        faults = self._faults

        def send(kind: int, payload) -> None:
            with send_lock:
                protocol.send_message(connection, kind, payload, key=key,
                                      faults=faults)

        try:
            kind, payload = protocol.recv_message(connection, key=key)
            if kind != protocol.HELLO:
                raise protocol.ProtocolError(
                    f"expected HELLO, got {protocol.MESSAGE_NAMES[kind]}"
                )
            protocol.check_hello(
                payload, expected_role="coordinator", auth=key is not None
            )
            send(
                protocol.HELLO,
                protocol.hello_payload(
                    "worker", auth=key is not None, capacity=self.capacity
                ),
            )
        except (protocol.ConnectionClosed, OSError):
            # EOF or a reset (e.g. the coordinator closed with unread data
            # in flight): the peer is gone, go back to accept.
            return
        except protocol.ProtocolError as error:
            self._reject(connection, send_lock, error, key)
            return

        specs: "OrderedDict[int, InstanceSpec]" = OrderedDict()
        #: Task ids cancelled by the coordinator; shared with the runner,
        #: which skips a queued task whose id landed here first.
        cancelled: set = set()
        tasks: "queue.Queue" = queue.Queue()
        runner = threading.Thread(
            target=self._run_tasks,
            args=(tasks, specs, cancelled, send, faults),
            daemon=True,
        )
        runner.start()
        try:
            while True:
                try:
                    kind, payload = protocol.recv_message(connection, key=key)
                except (protocol.ConnectionClosed, OSError):
                    return  # coordinator hung up (cleanly or by reset)
                except protocol.ProtocolError as error:
                    self._reject(connection, send_lock, error, key)
                    return
                if kind == protocol.SPEC:
                    spec_id, spec = payload
                    specs[spec_id] = spec
                    while len(specs) > SPEC_CACHE_LIMIT:
                        specs.popitem(last=False)
                elif kind == protocol.TASK:
                    task_id, task_kind, args = payload
                    if task_kind == "cancel":
                        # Handled by the reader, never queued: the whole
                        # point is to leapfrog tasks already in the queue.
                        if len(cancelled) > CANCEL_BACKLOG_LIMIT:
                            cancelled.clear()
                        cancelled.update(args)
                        continue
                    # Pin the spec now: a later SPEC frame may evict it from
                    # the cache before the runner reaches this task.
                    spec = (
                        specs.get(args.get("spec_id"))
                        if isinstance(args, dict)
                        else None
                    )
                    tasks.put((task_id, task_kind, args, spec))
                elif kind == protocol.HEARTBEAT:
                    if faults is not None and faults.stall_heartbeat():
                        continue  # injected stall: swallow the echo
                    try:
                        send(protocol.HEARTBEAT, payload)
                    except OSError:
                        return
                else:
                    self._reject(
                        connection,
                        send_lock,
                        protocol.ProtocolError(
                            f"unexpected {protocol.MESSAGE_NAMES[kind]} frame"
                        ),
                        key,
                    )
                    return
        finally:
            tasks.put(_STOP)

    @staticmethod
    def _reject(connection, send_lock, error, key=None) -> None:
        """Best-effort ERROR reply for a connection-level failure, then close.

        The reply is sent *plaintext* when the failure is that the peer
        itself spoke plaintext to a keyed worker
        (:class:`protocol.AuthenticationError` with ``peer_plain``) -- an
        authenticated rejection would be unreadable to exactly the peer it
        is meant to inform.  Every other rejection uses the connection's
        normal framing.
        """
        if isinstance(error, protocol.AuthenticationError) and error.peer_plain:
            key = None
        obs.log_event(
            _log, logging.WARNING, "worker.connection_rejected", error=error,
        )
        try:
            with send_lock:
                protocol.send_message(
                    connection, protocol.ERROR, (None, _error_text(error)), key=key
                )
        except (OSError, protocol.ProtocolError) as send_error:
            obs.log_event(
                _log, logging.DEBUG, "worker.reject_reply_failed",
                error=send_error,
            )
        try:
            connection.shutdown(socket.SHUT_RDWR)
        except OSError as shutdown_error:
            obs.log_event(
                _log, logging.DEBUG, "worker.reject_shutdown_failed",
                error=shutdown_error,
            )

    @staticmethod
    def _run_tasks(tasks, specs, cancelled, send, faults=None) -> None:
        """Runner thread: execute queued tasks in order, one at a time.

        Tasks whose id was cancelled by the coordinator are skipped without
        a reply -- the coordinator dropped their bookkeeping when it sent
        the cancel, so nothing is waiting for a RESULT.

        A task whose args carry a valid ``_obs`` trace context runs under
        a span continuing the coordinator's trace, and its RESULT grows a
        third element with the recorded events.  Tasks without the field
        (or with a foreign-version one) keep the legacy 2-tuple RESULT,
        so an old coordinator never sees the new shape.
        """
        while True:
            item = tasks.get()
            if item is _STOP:
                return
            task_id, kind, args, spec = item
            if task_id in cancelled:
                cancelled.discard(task_id)
                continue
            wire_ctx = None
            if isinstance(args, dict) and "_obs" in args:
                args = dict(args)
                wire_ctx = args.pop("_obs")
            try:
                if wire_ctx is not None:
                    result, events = obs.record_remote(
                        wire_ctx,
                        lambda: run_task(kind, args, specs, spec=spec),
                        name="worker.task",
                        kind=kind,
                        task_id=task_id,
                    )
                else:
                    result, events = run_task(kind, args, specs, spec=spec), None
            except Exception as error:
                obs.log_event(
                    _log, logging.WARNING, "worker.task_failed",
                    task_id=task_id, kind=kind, error=error,
                )
                message = _error_text(error, with_traceback=True)
                try:
                    send(protocol.ERROR, (task_id, message))
                except OSError:
                    return
                continue
            payload = (
                (task_id, result) if events is None else (task_id, result, events)
            )
            try:
                send(protocol.RESULT, payload)
            except OSError:
                return
            if faults is not None and faults.task_completed():
                # Injected hard crash -- no cleanup, no FIN beyond what the
                # kernel sends, exactly like the OOM killer.
                os._exit(17)


def main(argv: Optional[list] = None) -> int:
    """Command-line entry point (the ``repro-cluster-worker`` script)."""
    parser = argparse.ArgumentParser(
        prog="repro-cluster-worker",
        description=(
            "Serve repro cluster shard work (ball compilation, padded-ball "
            "marginals, batched chain blocks) to a coordinator over the "
            "framed-pickle TCP protocol."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="interface to bind")
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks an ephemeral port)"
    )
    parser.add_argument(
        "--auth-key",
        default=None,
        help=(
            "shared HMAC-SHA256 secret; frames are then authenticated and "
            f"keyless coordinators rejected (default: ${protocol.AUTH_KEY_ENV})"
        ),
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=1,
        help="relative dispatch weight announced to the coordinator (default 1)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
        help=(
            "emit structured repro.cluster.* log records to stderr at this "
            "level (default: logging stays silent)"
        ),
    )
    options = parser.parse_args(argv)
    if options.log_level is not None:
        obs.logs.configure(getattr(logging, options.log_level))
    worker = ClusterWorker(
        host=options.host,
        port=options.port,
        auth_key=options.auth_key,
        capacity=options.capacity,
    )
    host, port = worker.address
    # The first stdout line is the discovery contract of
    # repro.cluster.local.spawn_workers -- keep its shape stable.  The
    # structured record carries the same fact for log consumers.
    print(f"repro-cluster-worker listening on {host}:{port}", flush=True)
    obs.log_event(
        _log, logging.INFO, "worker.listening",
        host=host, port=port, capacity=options.capacity,
        authenticated=worker._key is not None,
    )
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        obs.log_event(_log, logging.INFO, "worker.interrupted")
    finally:
        worker.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
