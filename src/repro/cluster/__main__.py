"""``python -m repro.cluster``: run a cluster worker.

Delegates to :func:`repro.cluster.worker.main` (the same entry point the
``repro-cluster-worker`` console script installs).  Preferred over
``python -m repro.cluster.worker`` because the package ``__init__``
already imports the worker module, which makes ``runpy`` warn about the
double execution.
"""

from repro.cluster.worker import main

if __name__ == "__main__":
    raise SystemExit(main())
