"""The cluster coordinator: task queue, dispatch, heartbeats, requeue.

The coordinator owns one persistent TCP connection per worker (see
:mod:`repro.cluster.worker`) and schedules shard work over them:

* **Dispatch** is least-loaded with a round-robin tie-break: each new
  task goes to the live worker with the fewest in-flight tasks, so a
  straggling worker naturally receives less work while the others drain
  the queue.
* **Spec shipping is lazy and once-per-connection**: a task that needs an
  :class:`~repro.runtime.shards.InstanceSpec` carries a spec id; the
  coordinator sends the ``SPEC`` frame to a given worker only the first
  time that worker is handed a task referencing it (TCP ordering
  guarantees the spec arrives before the task).
* **Liveness** combines two signals.  A per-worker reader thread blocks
  on the socket, so a killed worker surfaces immediately as EOF; a
  heartbeat thread additionally pings every worker and declares one dead
  when nothing (echo or result) has been heard for
  ``heartbeat_timeout`` seconds -- catching hung-but-connected workers.
  Workers answer heartbeats from their reader loop even while a long
  task runs, so "busy" is never mistaken for "dead".
* **Requeue**: tasks in flight on a dead worker are re-dispatched to the
  remaining live workers (each task retries at most ``max_attempts``
  times, default one attempt per initially connected worker).  Because
  the task bodies are deterministic functions of the spec, a requeued
  task's result is bit-identical to what the dead worker would have
  produced, so consumers never observe the failure.  A ``RESULT`` frame
  for a task that has already been completed, cancelled or requeued is
  dropped -- results are adopted by task id, in whatever order they
  arrive.

Cancellation reaches the workers: abandoning a stream (or cancelling a
future) removes the tasks coordinator-side *and* sends each affected
worker a ``cancel`` directive, so queued speculative work -- e.g. the
radii past the answer in the E5 sweep -- is skipped rather than ground to
completion.  A coordinator dropped without :meth:`shutdown` stays
garbage-collectable (its service threads hold only weak references) and a
finalizer closes its sockets.

The streaming API mirrors :mod:`repro.runtime.shards`:
:meth:`ClusterCoordinator.stream_ball_marginal_tasks` chunks the tasks,
fans the chunks out, and merges each arriving payload into the parent's
:class:`~repro.engine.cache.BallCache` (``adopt``) before yielding, so
the cluster backend drops into every consumer the process backend
already has (SSM engines, the E5 radius sweep, ``warm_ball_cache``).
Abandoning a stream cancels its pending tasks; shutting the coordinator
down cancels everything and closes the sockets, idempotently.
"""

from __future__ import annotations

import itertools
import logging
import random
import socket
import struct
import threading
import time
import warnings
import weakref
from collections import OrderedDict
from concurrent.futures import CancelledError, Future, InvalidStateError, as_completed
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.cluster import protocol
from repro.gibbs.instance import SamplingInstance

_log = obs.get_logger("cluster.coordinator")
from repro.runtime.shards import (
    MEMO_DELTA_CAP,
    InstanceSpec,
    _LEGACY_ALIAS_BY_KERNEL,
    _LEGACY_CHAIN_KINDS,
    _chunk_tasks,
)

Node = Hashable
Value = Hashable
BallKey = Tuple[Node, int]
Address = Tuple[str, int]


class ClusterError(RuntimeError):
    """A cluster-level failure: no live workers, task exhausted retries, ..."""


def _close_worker_sockets(workers) -> None:
    """Finalizer body: close every connection of a collected coordinator."""
    for worker in workers:
        worker.alive = False
        worker.close()


def _reader_thread(coordinator_ref, worker) -> None:
    """Receive frames from one worker until its connection dies.

    Holds only a weak reference to the coordinator between frames, so an
    abandoned coordinator stays garbage-collectable; its finalizer closes
    the sockets, which wakes this thread out of ``recv`` to exit.
    """
    def touch() -> None:
        # Per-chunk progress refresh: a large RESULT frame streaming in for
        # longer than the heartbeat timeout is liveness, not silence.
        worker.last_seen = time.monotonic()

    while True:
        try:
            kind, payload = protocol.recv_message(
                worker.sock, on_data=touch, key=worker.key
            )
        except (protocol.ProtocolError, OSError) as error:
            coordinator = coordinator_ref()
            if coordinator is not None:
                coordinator._worker_died(worker, error)
            else:
                worker.close()
            return
        worker.last_seen = time.monotonic()
        coordinator = coordinator_ref()
        if coordinator is None:
            worker.close()
            return
        if not coordinator._handle_frame(worker, kind, payload):
            return
        del coordinator  # do not pin the coordinator across the next recv


def _heartbeat_thread(coordinator_ref, interval: float) -> None:
    """Ping workers until the coordinator is closed or collected."""
    while True:
        time.sleep(interval)
        coordinator = coordinator_ref()
        if coordinator is None or not coordinator._heartbeat_tick():
            return
        del coordinator


def _reconnect_thread(coordinator_ref, address: Address, seed: int) -> None:
    """Re-dial a dead worker's address with capped exponential backoff.

    One daemon thread per dead address; each attempt waits
    ``min(base * 2^k, cap)`` seconds, jittered +/-50% (full-jitter style,
    seeded per address so tests are reproducible), then tries a fresh TCP
    connect + handshake.  Success re-registers the address as a live
    worker (empty spec mirror -- specs re-ship lazily on the next task
    that needs them) and exits; a closed or collected coordinator also
    exits.  Holds only a weak reference between attempts, like the other
    service threads.
    """
    rng = random.Random(seed)
    delay = _RECONNECT_BASE_DELAY
    while True:
        time.sleep(delay * (0.5 + rng.random()))
        delay = min(delay * 2.0, _RECONNECT_MAX_DELAY)
        coordinator = coordinator_ref()
        if coordinator is None or coordinator._closed:
            return
        try:
            if coordinator._readmit(address):
                return
        except Exception as error:
            # Connect refused / handshake failed: back off and retry.
            obs.log_event(
                _log, logging.DEBUG, "cluster.reconnect_attempt_failed",
                address=f"{address[0]}:{address[1]}", error=error,
            )
        del coordinator


#: First reconnect attempt fires after ~this many (jittered) seconds.
_RECONNECT_BASE_DELAY = 0.05
#: Backoff ceiling between reconnect attempts to one dead address.
_RECONNECT_MAX_DELAY = 5.0


def parse_address(address) -> Address:
    """Normalise an address given as ``(host, port)`` or ``"host:port"``."""
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"expected 'host:port', got {address!r}")
        return host, int(port)
    host, port = address
    return str(host), int(port)


class _Worker:
    """Coordinator-side state of one worker connection."""

    __slots__ = (
        "address",
        "sock",
        "send_lock",
        "inflight",
        "specs",
        "alive",
        "last_seen",
        "reader",
        "capacity",
        "key",
        "reconnecting",
        "last_rtt",
    )

    def __init__(
        self,
        address: Address,
        sock: socket.socket,
        capacity: int = 1,
        key: Optional[bytes] = None,
    ) -> None:
        self.address = address
        self.sock = sock
        self.send_lock = threading.Lock()
        #: ``{task_id: _Task}`` currently dispatched to this worker.
        self.inflight: Dict[int, "_Task"] = {}
        #: Spec ids this connection holds, mirroring the worker's FIFO cache
        #: (same insertion order, same ``SPEC_CACHE_LIMIT``): only the
        #: coordinator sends SPEC frames on the connection, so replaying the
        #: worker's deterministic eviction here tells us exactly when a spec
        #: must be re-shipped.
        self.specs: "OrderedDict[int, None]" = OrderedDict()
        self.alive = True
        self.last_seen = time.monotonic()
        self.reader: Optional[threading.Thread] = None
        #: Relative dispatch weight the worker announced in its HELLO.
        self.capacity = max(1, int(capacity))
        self.key = key
        #: A reconnect thread is already backing off toward this address.
        self.reconnecting = False
        #: Seconds the worker's latest heartbeat echo took round-trip.
        self.last_rtt: Optional[float] = None

    def load(self) -> float:
        """Capacity-normalised load for least-loaded dispatch."""
        return len(self.inflight) / self.capacity

    def send(self, kind: int, payload) -> None:
        with self.send_lock:
            protocol.send_message(self.sock, kind, payload, key=self.key)

    def try_send(self, kind: int, payload, timeout: float) -> bool:
        """Send unless the lock is busy (another thread mid-send).

        Used by the heartbeat loop so a long-running send on one worker
        cannot stall liveness checks for the whole cluster; a busy lock
        means traffic is flowing, which is itself a liveness signal.
        """
        if not self.send_lock.acquire(timeout=timeout):
            return False
        try:
            protocol.send_message(self.sock, kind, payload, key=self.key)
        finally:
            self.send_lock.release()
        return True

    def record_spec(self, spec_id: int) -> None:
        """Mirror the worker-side spec cache after shipping a SPEC frame."""
        from repro.cluster.worker import SPEC_CACHE_LIMIT

        self.specs[spec_id] = None
        while len(self.specs) > SPEC_CACHE_LIMIT:
            self.specs.popitem(last=False)

    def close(self) -> None:
        # shutdown() before close(): our own reader thread may be blocked in
        # recv() on this socket, and on Linux a plain close() then leaves the
        # in-flight syscall pinning the connection open -- no FIN ever
        # reaches the worker, which (serving one connection at a time) would
        # never return to accept().  shutdown() tears the connection down
        # immediately and wakes the blocked recv with EOF on both ends.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _Task:
    """One unit of work, movable between workers until it resolves."""

    __slots__ = ("task_id", "kind", "args", "spec", "future", "attempts")

    def __init__(self, task_id: int, kind: str, args, spec) -> None:
        self.task_id = task_id
        self.kind = kind
        self.args = args
        #: ``(spec_id, InstanceSpec)`` or ``None`` for spec-free tasks.
        self.spec = spec
        self.future: Future = Future()
        self.attempts = 0


class ClusterCoordinator:
    """Schedule shard work over a set of worker connections.

    Parameters
    ----------
    addresses : sequence
        Worker addresses, each ``(host, port)`` or ``"host:port"``.
    connect_timeout : float
        Seconds to wait for each TCP connect + handshake.
    heartbeat_interval : float
        Seconds between heartbeat pings.
    heartbeat_timeout : float
        Declare a worker dead after this many silent seconds.
    max_attempts : int, optional
        Dispatch attempts per task before it fails with
        :class:`ClusterError` (default: one per connected worker, so a
        task is never bounced around a fully dying cluster forever).
    auth_key : str or bytes, optional
        Shared HMAC-SHA256 secret; frames are then authenticated both
        ways and keyless workers rejected during the handshake.  Defaults
        to :data:`protocol.AUTH_KEY_ENV` from the environment.
    reconnect : bool
        When true (the default), a dead worker's address is re-dialled in
        the background with capped exponential backoff + jitter; a worker
        process that restarts rejoins the cluster automatically, with its
        spec re-shipped lazily.
    degrade : str
        ``"raise"`` (default): losing every worker fails outstanding
        tasks with :class:`ClusterError`.  ``"local"``: tasks that find
        no live worker run *in this process* instead (same registered
        task bodies, hence bit-identical results), with a single
        :class:`RuntimeWarning` -- degraded service beats no service for
        long sweeps.
    """

    def __init__(
        self,
        addresses: Sequence,
        connect_timeout: float = 10.0,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 30.0,
        max_attempts: Optional[int] = None,
        auth_key=None,
        reconnect: bool = True,
        degrade: str = "raise",
    ) -> None:
        parsed = [parse_address(address) for address in addresses]
        if not parsed:
            raise ValueError("a cluster needs at least one worker address")
        if degrade not in ("raise", "local"):
            raise ValueError(
                f'degrade must be "raise" or "local", got {degrade!r}'
            )
        self._key = (
            protocol.normalize_auth_key(auth_key)
            if auth_key is not None
            else protocol.auth_key_from_env()
        )
        self.reconnect = bool(reconnect)
        self.degrade = degrade
        self._degraded_warned = False
        self._connect_timeout = float(connect_timeout)
        self._lock = threading.RLock()
        self._closed = False
        self._task_ids = itertools.count()
        self._spec_ids = itertools.count()
        self._rotation = itertools.count()
        #: ``{instance: (spec_id, InstanceSpec)}`` -- one snapshot per live
        #: instance, so repeated streams over the same instance (e.g. the
        #: per-wave E5 radius sweep) reuse one spec id and the workers'
        #: per-connection spec caches hit instead of re-receiving the spec.
        self._spec_registry: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        #: Number of task re-dispatches caused by worker death (observability
        #: hook; the worker-failure tests assert it moved).
        self.requeued = 0
        #: Tasks absorbed in-process because no worker was live.
        self.degraded_tasks = 0
        self.workers: List[_Worker] = []
        try:
            for address in parsed:
                self.workers.append(self._connect(address, connect_timeout))
        except BaseException:
            for worker in self.workers:
                worker.close()
            raise
        self.max_attempts = (
            int(max_attempts) if max_attempts is not None else max(2, len(parsed))
        )
        # The service threads hold only a weak reference to the coordinator:
        # a coordinator dropped without shutdown() must stay collectable, at
        # which point the finalizer closes the sockets, the blocked reader
        # threads wake with OSError, find their referent gone, and exit.
        self._self_ref = weakref.ref(self)
        self._finalizer = weakref.finalize(
            self, _close_worker_sockets, self.workers
        )
        for worker in self.workers:
            worker.reader = threading.Thread(
                target=_reader_thread, args=(self._self_ref, worker), daemon=True
            )
            worker.reader.start()
        self._heartbeat = threading.Thread(
            target=_heartbeat_thread,
            args=(self._self_ref, self.heartbeat_interval),
            daemon=True,
        )
        self._heartbeat.start()

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def _connect(self, address: Address, timeout: float) -> _Worker:
        key = self._key
        sock = socket.create_connection(address, timeout=timeout)
        sock.settimeout(timeout)
        try:
            protocol.send_message(
                sock,
                protocol.HELLO,
                protocol.hello_payload("coordinator", auth=key is not None),
                key=key,
            )
            # A keyed recv rejects a keyless worker's plaintext ERROR reply
            # without unpickling it (AuthenticationError with the mismatch
            # attributed); a keyless recv surfaces a keyed worker's
            # rejection as the ERROR branch below.
            kind, payload = protocol.recv_message(sock, key=key)
            if kind == protocol.ERROR:
                raise protocol.ProtocolError(f"worker rejected handshake: {payload}")
            if kind != protocol.HELLO:
                raise protocol.ProtocolError(
                    f"expected HELLO, got {protocol.MESSAGE_NAMES[kind]}"
                )
            protocol.check_hello(payload, expected_role="worker", auth=key is not None)
            capacity = int(payload.get("capacity", 1) or 1)
        except BaseException:
            sock.close()
            raise
        sock.settimeout(None)  # reader threads block indefinitely
        # Sends, however, must not: a hung worker that stops draining its
        # socket would otherwise block `sendall` forever (holding the
        # worker's send lock and with it the whole dispatch/heartbeat
        # machinery).  SO_SNDTIMEO bounds only the send side; a timed-out
        # send surfaces as OSError and the worker is declared dead.
        try:
            seconds = int(self.heartbeat_timeout)
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_SNDTIMEO,
                struct.pack("ll", seconds, 0),
            )
        except (OSError, struct.error):  # pragma: no cover - exotic platforms
            pass
        return _Worker(address, sock, capacity=capacity, key=key)

    def _handle_frame(self, worker: _Worker, kind: int, payload) -> bool:
        """Process one received frame; ``False`` once the worker is dead."""
        if kind == protocol.RESULT:
            # Workers that were handed a trace context append their span
            # events as a third element; legacy workers send the 2-tuple.
            task_id, result = payload[0], payload[1]
            if len(payload) > 2:
                obs.absorb_events(payload[2])
            task = self._take_inflight(worker, task_id)
            if task is not None:
                self._resolve(task, result=result)
            return True
        if kind == protocol.ERROR:
            task_id, message = payload
            if task_id is None:
                self._worker_died(
                    worker, protocol.ProtocolError(f"worker error: {message}")
                )
                return False
            task = self._take_inflight(worker, task_id)
            if task is not None:
                self._resolve(
                    task, error=ClusterError(f"worker task failed: {message}")
                )
            return True
        if kind == protocol.HEARTBEAT:
            # The worker echoes our monotonic send stamp back verbatim, so
            # the difference is this connection's round-trip time.
            if isinstance(payload, float):
                rtt = time.monotonic() - payload
                if rtt >= 0.0:
                    worker.last_rtt = rtt
                    handle = obs.active()
                    if handle is not None:
                        handle.metrics.histogram(
                            "cluster.heartbeat_rtt_seconds"
                        ).observe(rtt)
            return True  # last_seen already refreshed
        self._worker_died(
            worker,
            protocol.ProtocolError(f"unexpected {protocol.MESSAGE_NAMES[kind]} frame"),
        )
        return False

    def _heartbeat_tick(self) -> bool:
        """One heartbeat round; ``False`` once the coordinator is closed."""
        with self._lock:
            if self._closed:
                return False
            workers = [worker for worker in self.workers if worker.alive]
        now = time.monotonic()
        for worker in workers:
            if now - worker.last_seen > self.heartbeat_timeout:
                self._worker_died(
                    worker,
                    ClusterError(
                        f"no traffic for {self.heartbeat_timeout:.0f}s "
                        "(heartbeat timeout)"
                    ),
                )
                continue
            try:
                # A busy send lock is itself a liveness signal; never
                # stall the shared heartbeat loop behind one worker.
                worker.try_send(protocol.HEARTBEAT, now, timeout=0.1)
            except OSError as error:
                self._worker_died(worker, error)
        return True

    def _take_inflight(self, worker: _Worker, task_id: int) -> Optional["_Task"]:
        """Pop a task from a worker's in-flight map; ``None`` if it moved on.

        A ``None`` means the task was cancelled, requeued elsewhere or
        already resolved -- the frame is a late arrival and is dropped.
        """
        with self._lock:
            return worker.inflight.pop(task_id, None)

    @staticmethod
    def _resolve(task: "_Task", result=None, error: Optional[Exception] = None) -> None:
        """Complete a task's future, tolerating cancelled/duplicate arrivals."""
        try:
            if not task.future.set_running_or_notify_cancel():
                return  # the consumer cancelled the task; drop the result
            if error is not None:
                task.future.set_exception(error)
            else:
                task.future.set_result(result)
        except InvalidStateError:
            # A duplicate arrival (e.g. a task that raced dispatch-retry and
            # death-requeue) already resolved the future; dropping the copy
            # is correct -- results are equal by construction -- and a reader
            # thread must never die over it.
            pass

    def _worker_died(self, worker: _Worker, reason: Exception) -> None:
        """Mark a worker dead and requeue its in-flight tasks elsewhere."""
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            orphans = list(worker.inflight.values())
            worker.inflight.clear()
            spawn_reconnect = (
                self.reconnect and not self._closed and not worker.reconnecting
            )
            if spawn_reconnect:
                worker.reconnecting = True
        worker.close()
        obs.log_event(
            _log, logging.WARNING, "cluster.worker_died",
            address=f"{worker.address[0]}:{worker.address[1]}",
            reason=reason, orphaned_tasks=len(orphans),
            reconnecting=spawn_reconnect,
        )
        obs.instant(
            "cluster.worker_died",
            address=f"{worker.address[0]}:{worker.address[1]}",
            reason=str(reason), orphaned_tasks=len(orphans),
        )
        if spawn_reconnect:
            # Self-healing: keep trying the address in the background (capped
            # exponential backoff + jitter); a restarted worker process
            # rejoins with a fresh connection and an empty spec mirror.
            threading.Thread(
                target=_reconnect_thread,
                args=(self._self_ref, worker.address, int(worker.address[1])),
                daemon=True,
            ).start()
        if orphans and not self._closed:
            with self._lock:
                self.requeued += len(orphans)
            for task in orphans:
                try:
                    self._dispatch(task)
                except ClusterError as error:
                    self._resolve(
                        task,
                        error=ClusterError(
                            f"worker {worker.address} died ({reason}) and the "
                            f"task could not be requeued: {error}"
                        ),
                    )
        elif orphans:
            for task in orphans:
                task.future.cancel()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _pick_worker(self) -> _Worker:
        """Least-loaded live worker, round-robin among ties (lock held).

        Load is capacity-normalised (:meth:`_Worker.load`): a capacity-2
        worker with two tasks in flight ties a capacity-1 worker with one,
        so announced weights translate directly into dispatch share.
        """
        live = [worker for worker in self.workers if worker.alive]
        if not live:
            raise ClusterError("no live cluster workers")
        rotation = next(self._rotation)
        return min(
            (live[(rotation + offset) % len(live)] for offset in range(len(live))),
            key=_Worker.load,
        )

    def _dispatch(self, task: "_Task") -> None:
        """Assign a task to a worker and put its frames on the wire.

        Retries transparently over the remaining live workers when a send
        fails (the send failure marks that worker dead, which requeues
        whatever else it was running).  With ``degrade="local"``, a task
        that finds no live worker at all runs in-process instead (same
        registered body, bit-identical result) and its future resolves
        immediately.
        """
        while True:
            with self._lock:
                if self._closed:
                    raise ClusterError("the coordinator is shut down")
                if task.attempts >= self.max_attempts:
                    raise ClusterError(
                        f"task {task.task_id} ({task.kind}) exhausted "
                        f"{self.max_attempts} dispatch attempts"
                    )
                try:
                    worker = self._pick_worker()
                except ClusterError:
                    if self.degrade != "local":
                        raise
                    worker = None
                if worker is not None:
                    task.attempts += 1
                    needs_spec = (
                        task.spec is not None and task.spec[0] not in worker.specs
                    )
                    worker.inflight[task.task_id] = task
            if worker is None:
                self._run_degraded(task)
                return
            try:
                if needs_spec:
                    worker.send(protocol.SPEC, task.spec)
                    with self._lock:
                        worker.record_spec(task.spec[0])
                worker.send(protocol.TASK, (task.task_id, task.kind, task.args))
                handle = obs.active()
                if handle is not None:
                    handle.metrics.counter("cluster.tasks_dispatched").inc()
                    with self._lock:
                        inflight = sum(
                            len(peer.inflight)
                            for peer in self.workers
                            if peer.alive
                        )
                    handle.metrics.gauge("cluster.tasks_inflight").set(inflight)
                    obs.instant(
                        "cluster.dispatch",
                        task_id=task.task_id, kind=task.kind,
                        worker=f"{worker.address[0]}:{worker.address[1]}",
                        attempt=task.attempts,
                    )
                return
            except OSError as error:
                # Reclaim the task before declaring the worker dead.  If the
                # pop comes back empty, the reader thread's death path beat
                # us to it and now owns the requeue -- retrying here too
                # would dispatch the task twice.
                with self._lock:
                    owner = worker.inflight.pop(task.task_id, None)
                self._worker_died(worker, error)
                if owner is None:
                    return
            except BaseException:
                # E.g. an unpicklable or oversized payload (ProtocolError):
                # send_message pickles and validates *before* the first
                # byte touches the socket, so the worker is fine -- reclaim
                # the task and surface the error to the caller instead of
                # cascading a payload problem into worker deaths.
                with self._lock:
                    worker.inflight.pop(task.task_id, None)
                raise

    def _run_degraded(self, task: "_Task") -> None:
        """Run a task in-process because no worker is live (``degrade="local"``).

        The body comes from the same :data:`~repro.runtime.shards.TASK_REGISTRY`
        the workers use (via :func:`repro.cluster.worker.run_task`), so the
        result is bit-identical to what a worker would have returned -- the
        cluster degrades to the serial backend, it does not change answers.
        """
        from repro.cluster.worker import run_task

        warn = False
        with self._lock:
            self.degraded_tasks += 1
            if not self._degraded_warned:
                self._degraded_warned = True
                warn = True
            dead = sorted(
                f"{worker.address[0]}:{worker.address[1]}"
                for worker in self.workers
                if not worker.alive
            )
            requeued = self.requeued
        if warn:
            warnings.warn(
                "every cluster worker is unreachable "
                f"(dead: {', '.join(dead) or 'none registered'}; "
                f"{requeued} in-flight task(s) absorbed by requeue so far); "
                "degrade='local' is running tasks in-process (results stay "
                "bit-identical, throughput does not)",
                RuntimeWarning,
                stacklevel=4,
            )
            obs.log_event(
                _log, logging.WARNING, "cluster.degraded",
                dead_workers=",".join(dead), requeued=requeued,
            )
            obs.instant("cluster.degraded", dead_workers=dead, requeued=requeued)
        handle = obs.active()
        if handle is not None:
            handle.metrics.counter("cluster.tasks_degraded").inc()
        try:
            result = run_task(
                task.kind,
                task.args,
                {},
                spec=task.spec[1] if task.spec is not None else None,
            )
        except Exception as error:
            self._resolve(
                task,
                error=ClusterError(f"degraded in-process execution failed: {error}"),
            )
        else:
            self._resolve(task, result=result)

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def _register_worker(self, worker: _Worker) -> None:
        """Attach a freshly connected worker: list entry + reader thread.

        Replaces a dead entry for the same address in-place when there is
        one (keeping ``self.workers`` -- the list object the socket
        finalizer holds -- bounded across arbitrarily many reconnects);
        otherwise appends.
        """
        with self._lock:
            if self._closed:
                worker.close()
                return
            rejoined = False
            for index, existing in enumerate(self.workers):
                if existing.address == worker.address and not existing.alive:
                    self.workers[index] = worker
                    rejoined = True
                    break
            else:
                self.workers.append(worker)
        worker.reader = threading.Thread(
            target=_reader_thread, args=(self._self_ref, worker), daemon=True
        )
        worker.reader.start()
        obs.log_event(
            _log, logging.INFO,
            "cluster.worker_rejoined" if rejoined else "cluster.worker_joined",
            address=f"{worker.address[0]}:{worker.address[1]}",
            capacity=worker.capacity,
        )
        obs.instant(
            "cluster.worker_rejoined" if rejoined else "cluster.worker_joined",
            address=f"{worker.address[0]}:{worker.address[1]}",
        )

    def _readmit(self, address: Address) -> bool:
        """Reconnect-thread body: one attempt to revive a dead address."""
        with self._lock:
            if self._closed:
                return True  # stop retrying either way
            for existing in self.workers:
                if existing.address == address and existing.alive:
                    return True  # someone else already revived it
        worker = self._connect(address, self._connect_timeout)
        self._register_worker(worker)
        self._rebalance(worker)
        return True

    def add_worker(self, address, connect_timeout: Optional[float] = None) -> None:
        """Admit a new worker mid-stream and grant it a share of the queue.

        Connects, handshakes (auth and version checked like any other
        worker), ships nothing up front -- the cached
        :class:`~repro.runtime.shards.InstanceSpec` travels lazily with
        the first task that needs it -- and rebalances: queued tasks are
        stolen from the most loaded workers and re-dispatched, so a
        late-joining worker starts pulling weight immediately instead of
        waiting for the current wave to drain.
        """
        worker = self._connect(
            parse_address(address),
            self._connect_timeout if connect_timeout is None else connect_timeout,
        )
        self._register_worker(worker)
        self._rebalance(worker)

    def _rebalance(self, newcomer: _Worker) -> None:
        """Steal queued work for a newly admitted worker.

        Takes the *most recently dispatched* in-flight tasks (those
        likeliest still sitting in the old worker's queue rather than
        executing) from workers above the post-join fair share, sends the
        old owners a ``cancel`` directive, and re-dispatches.  A task that
        had already started executing runs twice; that is safe -- bodies
        are pure functions of the spec, duplicates are equal, and the
        late RESULT's task id is no longer in the old worker's in-flight
        map, so it is dropped on arrival.
        """
        stolen: List["_Task"] = []
        notify: Dict[_Worker, List[int]] = {}
        with self._lock:
            live = [worker for worker in self.workers if worker.alive]
            total = sum(len(worker.inflight) for worker in live)
            capacity = sum(worker.capacity for worker in live) or 1
            for worker in live:
                if worker is newcomer:
                    continue
                fair = -(-total * worker.capacity // capacity)  # ceil share
                surplus = len(worker.inflight) - fair
                for task_id in list(worker.inflight)[::-1][:max(0, surplus)]:
                    task = worker.inflight.pop(task_id)
                    stolen.append(task)
                    notify.setdefault(worker, []).append(task_id)
        if stolen:
            obs.log_event(
                _log, logging.INFO, "cluster.rebalance",
                newcomer=f"{newcomer.address[0]}:{newcomer.address[1]}",
                stolen=len(stolen),
            )
            obs.instant(
                "cluster.rebalance",
                newcomer=f"{newcomer.address[0]}:{newcomer.address[1]}",
                stolen=len(stolen),
            )
        for worker, task_ids in notify.items():
            try:
                worker.send(protocol.TASK, (None, "cancel", task_ids))
            except (OSError, protocol.ProtocolError) as error:
                # Its reader will notice the dead connection itself.
                obs.log_event(
                    _log, logging.DEBUG, "cluster.cancel_notify_failed",
                    address=f"{worker.address[0]}:{worker.address[1]}",
                    error=error,
                )
        for task in stolen:
            try:
                self._dispatch(task)
            except ClusterError as error:
                self._resolve(
                    task,
                    error=ClusterError(
                        f"task could not be re-dispatched while rebalancing: {error}"
                    ),
                )

    def submit_task(self, kind: str, args, spec=None) -> Future:
        """Schedule one task; the returned future resolves to its result.

        ``spec`` is a ``(spec_id, InstanceSpec)`` pair for spec-bound task
        kinds; it is shipped to each worker at most once.

        When tracing is on and ``args`` is a keyword dict (every spec-bound
        kind), the current trace context rides along as a versioned
        ``_obs`` entry inside the pickled payload -- covered by the frame
        HMAC when authentication is on, ignored by workers that predate
        it.
        """
        if spec is not None and isinstance(args, dict) and "_obs" not in args:
            wire_ctx = obs.wire_context()
            if wire_ctx is not None:
                args = dict(args)
                args["_obs"] = wire_ctx
        task = _Task(next(self._task_ids), kind, args, spec)
        self._dispatch(task)
        return task.future

    def new_spec_id(self) -> int:
        """A fresh spec id (spec payloads are identified, not hashed)."""
        return next(self._spec_ids)

    def _spec_for(self, instance: SamplingInstance) -> Tuple[int, InstanceSpec]:
        """The ``(spec_id, spec)`` pair for an instance (snapshot memoised).

        Instances are immutable (distribution + pinning), so one snapshot
        per instance is safe; the weak registry keeps the id stable across
        stream calls without pinning dead instances in memory.
        """
        with self._lock:
            entry = self._spec_registry.get(instance)
            if entry is None:
                entry = (self.new_spec_id(), InstanceSpec.from_instance(instance))
                self._spec_registry[instance] = entry
            return entry

    def _discard(self, futures: Iterable[Future]) -> None:
        """Cancel pending futures, worker-side included.

        The tail of every streaming generator: pending tasks are cancelled
        coordinator-side (results already on the wire are dropped on
        arrival -- their task id leaves the in-flight maps here) and each
        worker is sent a best-effort ``cancel`` directive so tasks still
        sitting in its queue are skipped instead of ground to completion.
        """
        pending = {id(future) for future in futures if future.cancel()}
        if not pending:
            return
        reclaimed: Dict[_Worker, List[int]] = {}
        with self._lock:
            for worker in self.workers:
                for task_id, task in list(worker.inflight.items()):
                    if id(task.future) in pending:
                        worker.inflight.pop(task_id, None)
                        reclaimed.setdefault(worker, []).append(task_id)
        for worker, task_ids in reclaimed.items():
            if not worker.alive:
                continue
            try:
                worker.send(protocol.TASK, (None, "cancel", task_ids))
            except (OSError, protocol.ProtocolError) as error:
                # The reader will notice the dead connection itself.
                obs.log_event(
                    _log, logging.DEBUG, "cluster.cancel_notify_failed",
                    address=f"{worker.address[0]}:{worker.address[1]}",
                    error=error,
                )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def live_worker_count(self) -> int:
        with self._lock:
            return sum(1 for worker in self.workers if worker.alive)

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time cluster state for :meth:`repro.runtime.Runtime.snapshot`."""
        with self._lock:
            workers = [
                {
                    "address": f"{worker.address[0]}:{worker.address[1]}",
                    "alive": worker.alive,
                    "capacity": worker.capacity,
                    "inflight": len(worker.inflight),
                    "specs_cached": len(worker.specs),
                    "last_rtt": worker.last_rtt,
                }
                for worker in self.workers
            ]
            return {
                "workers": workers,
                "live_workers": sum(1 for entry in workers if entry["alive"]),
                "queue_depth": sum(entry["inflight"] for entry in workers),
                "requeued": self.requeued,
                "degraded_tasks": self.degraded_tasks,
                "degrade": self.degrade,
                "authenticated": self._key is not None,
            }

    def shutdown(self) -> None:
        """Close every connection and cancel outstanding work (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self.workers)
        for worker in workers:
            with self._lock:
                worker.alive = False
                orphans = list(worker.inflight.values())
                worker.inflight.clear()
            for task in orphans:
                if not task.future.cancel():
                    # Already running per future protocol; leave resolved ones be.
                    if not task.future.done():  # pragma: no cover - defensive
                        task.future.set_exception(CancelledError())
            worker.close()

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # high-level API (mirrors the process backend)
    # ------------------------------------------------------------------
    def submit(self, function, *args, **kwargs) -> Future:
        """Run ``function(*args, **kwargs)`` on some worker.

        The callable and its arguments cross the wire by pickle, so pass
        module-level functions (pickle serialises them by reference);
        closures and lambdas are rejected by pickle itself.
        """
        return self.submit_task("call", (function, tuple(args), dict(kwargs)))

    def map_unordered(self, function, items: Iterable) -> Iterator[Tuple[int, object]]:
        """Map ``function`` over items, yielding ``(index, result)`` pairs
        in completion order; abandoning the iterator cancels pending calls.
        """
        items = list(items)
        futures = {}
        try:
            for index, item in enumerate(items):
                futures[self.submit(function, item)] = index
        except BaseException:
            self._discard(futures)  # a failed submission abandons its batch
            raise
        try:
            for future in as_completed(futures):
                yield futures[future], future.result()
        finally:
            self._discard(futures)

    # -- spec-bound streaming (the Theorem 5.1 workloads) ---------------
    def _stream_chunked_shards(
        self,
        instance: SamplingInstance,
        tasks: Sequence,
        chunk_size: Optional[int],
        kind: str,
        make_payload,
        adopt,
    ) -> Iterator:
        """The shared streaming skeleton of the spec-bound task kinds.

        Chunks the tasks, fans the chunks out (spec shipped once per
        connection), and -- as each payload completes -- merges it into the
        instance's ball cache via ``adopt(cache, payload)`` (which returns
        the items to yield).  A failed chunk raises a chained
        ``RuntimeError`` naming it; abandoning the generator cancels the
        pending chunks coordinator- and worker-side.
        """
        spec = self._spec_for(instance)
        cache = instance.distribution.ball_cache()
        workers = max(1, self.live_worker_count)
        if chunk_size is None and tasks:
            # Scale chunk granularity with the fleet, but cap the chunk
            # COUNT: the pool default (4 chunks per worker) shrinks chunks
            # linearly with worker count, and over TCP the fixed per-chunk
            # dispatch cost (frame + payload round-trip) then dominates --
            # the measured 4-worker regression in BENCH_runtime.json.  A
            # few chunks per worker is plenty of load-balancing slack;
            # beyond ~2x the fleet (floor 8, so small fleets keep today's
            # granularity) more chunks only buy more round-trips.
            target_chunks = min(4 * workers, max(2 * workers, 8))
            chunk_size = -(-len(tasks) // target_chunks)
        chunks = _chunk_tasks(tasks, workers, chunk_size)
        futures = {}
        try:
            for chunk in chunks:
                payload = make_payload(spec[0], list(chunk))
                futures[self.submit_task(kind, payload, spec=spec)] = chunk
        except BaseException:
            self._discard(futures)  # a failed submission abandons its batch
            raise
        try:
            for future in as_completed(futures):
                try:
                    result = future.result()
                except (ClusterError, CancelledError) as error:
                    raise RuntimeError(
                        f"cluster ball shard failed on chunk {futures[future]!r}: "
                        f"{error}"
                    ) from error
                yield from adopt(cache, result)
        finally:
            self._discard(futures)

    def stream_ball_marginal_tasks(
        self,
        instance: SamplingInstance,
        tasks: Sequence[BallKey],
        chunk_size: Optional[int] = None,
        memo_cap: Optional[int] = MEMO_DELTA_CAP,
    ) -> Iterator[Tuple[BallKey, Dict[Value, float]]]:
        """Stream Theorem 5.1 marginals for ``(center, radius)`` tasks.

        The cluster counterpart of
        :func:`repro.runtime.shards.stream_ball_marginal_tasks`: tasks are
        chunked, the chunks fan out over the workers (spec shipped once
        per connection), and each arriving payload's compiled balls,
        boundary extensions and capped marginal-memo deltas are merged
        into the parent's ball cache before its marginals are yielded in
        completion order.  Worker death mid-stream requeues transparently;
        per-ball values are bit-identical to the serial loop.
        """
        tasks = list(tasks)
        if not tasks:
            return

        def adopt(cache, payload):
            marginals, balls, extras, memos = payload
            cache.adopt(balls=balls, extras=extras, memos=memos)
            return marginals.items()

        yield from self._stream_chunked_shards(
            instance,
            tasks,
            chunk_size,
            "ball_marginals",
            lambda spec_id, chunk: {
                "spec_id": spec_id,
                "tasks": chunk,
                "memo_cap": memo_cap,
            },
            adopt,
        )

    def stream_padded_ball_marginals(
        self,
        instance: SamplingInstance,
        centers: Sequence[Node],
        radius: int,
        chunk_size: Optional[int] = None,
        memo_cap: Optional[int] = MEMO_DELTA_CAP,
    ) -> Iterator[Tuple[Node, Dict[Value, float]]]:
        """Single-radius wrapper over :meth:`stream_ball_marginal_tasks`."""
        for (center, _), marginal in self.stream_ball_marginal_tasks(
            instance,
            [(center, radius) for center in centers],
            chunk_size=chunk_size,
            memo_cap=memo_cap,
        ):
            yield center, marginal

    def stream_compiled_balls(
        self,
        instance: SamplingInstance,
        tasks: Sequence[BallKey],
        chunk_size: Optional[int] = None,
    ) -> Iterator[Tuple[BallKey, object]]:
        """Stream ball compilations from the workers into the parent cache."""
        tasks = list(dict.fromkeys(tasks))
        if not tasks:
            return

        def adopt(cache, compiled):
            cache.adopt(balls=compiled)
            return compiled.items()

        yield from self._stream_chunked_shards(
            instance,
            tasks,
            chunk_size,
            "compile_balls",
            lambda spec_id, chunk: {"spec_id": spec_id, "tasks": chunk},
            adopt,
        )

    # -- batched chain blocks -------------------------------------------
    def chain_samples(
        self,
        instance: SamplingInstance,
        kernel: str,
        count: int,
        seeds: Sequence,
        initial=None,
        stats: bool = False,
    ) -> List[Dict[Node, Value]]:
        """Final states of independent chains, run as blocks on the workers.

        ``kernel`` names any registered
        :class:`~repro.sampling.kernels.ChainKernel` (the legacy block
        kinds ``"glauber"``/``"luby"`` are accepted as aliases).  The seed
        list is split into one contiguous block per live worker; each
        worker advances its block as a batched code matrix on the instance
        reconstructed from the spec -- the registered ``chain_block`` task
        body of :data:`~repro.runtime.shards.TASK_REGISTRY`, shared with
        the process backend -- so chain ``c`` of the result is
        bit-identical to the kernel's serial chain run with
        ``seed=seeds[c]``.

        With ``stats=True`` the return value is ``(configurations,
        counts)`` where ``counts[c]`` is chain ``c``'s per-chain failure
        count (gated kernels: rejected proposals; others: zeros) --
        the payload flag rides the existing ``chain_block`` wire format,
        so JVV rejection statistics distribute like any other block work.
        """
        from repro.sampling.kernels import get_kernel

        kernel_name = _LEGACY_CHAIN_KINDS.get(kernel, kernel)
        get_kernel(kernel_name)  # fail fast on unknown kernels, caller-side
        seeds = list(seeds)
        if not seeds:
            return ([], []) if stats else []
        spec = self._spec_for(instance)
        blocks = _chunk_tasks(
            seeds, 1, chunk_size=-(-len(seeds) // max(1, self.live_worker_count))
        )
        legacy_kind = _LEGACY_ALIAS_BY_KERNEL.get(kernel_name)
        futures = []
        try:
            for block in blocks:
                payload = {
                    "spec_id": spec[0],
                    "kernel": kernel_name,
                    "count": count,
                    "seeds": block,
                    "initial": dict(initial) if initial is not None else None,
                }
                if stats:
                    # Behind a flag (not a new message type): an old worker
                    # would ignore it and return bare configurations, which
                    # the merge below rejects loudly instead of mis-zipping.
                    payload["stats"] = True
                elif legacy_kind is not None:
                    # Wire compat within PROTOCOL_VERSION 1: a previous-release
                    # worker reads args["kind"] for the two pre-kernel
                    # dynamics; newer workers prefer "kernel" and ignore this.
                    payload["kind"] = legacy_kind
                futures.append(self.submit_task("chain_block", payload, spec=spec))
        except BaseException:
            self._discard(futures)
            raise
        try:
            results: List[Dict[Node, Value]] = []
            counts: List[int] = []
            for future in futures:  # block order == seed order
                block_result = future.result()
                if stats:
                    if (
                        not isinstance(block_result, tuple)
                        or len(block_result) != 2
                    ):
                        raise ClusterError(
                            "worker returned a bare chain_block payload to a "
                            "stats=True request (worker predates the stats "
                            "wire flag?)"
                        )
                    block_configs, block_counts = block_result
                    results.extend(block_configs)
                    counts.extend(block_counts)
                else:
                    results.extend(block_result)
            return (results, counts) if stats else results
        finally:
            self._discard(futures)
