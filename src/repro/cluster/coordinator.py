"""The cluster coordinator: task queue, dispatch, heartbeats, requeue.

The coordinator owns one persistent TCP connection per worker (see
:mod:`repro.cluster.worker`) and schedules shard work over them:

* **Dispatch** is least-loaded with a round-robin tie-break: each new
  task goes to the live worker with the fewest in-flight tasks, so a
  straggling worker naturally receives less work while the others drain
  the queue.
* **Spec shipping is lazy and once-per-connection**: a task that needs an
  :class:`~repro.runtime.shards.InstanceSpec` carries a spec id; the
  coordinator sends the ``SPEC`` frame to a given worker only the first
  time that worker is handed a task referencing it (TCP ordering
  guarantees the spec arrives before the task).
* **Liveness** combines two signals.  A per-worker reader thread blocks
  on the socket, so a killed worker surfaces immediately as EOF; a
  heartbeat thread additionally pings every worker and declares one dead
  when nothing (echo or result) has been heard for
  ``heartbeat_timeout`` seconds -- catching hung-but-connected workers.
  Workers answer heartbeats from their reader loop even while a long
  task runs, so "busy" is never mistaken for "dead".
* **Requeue**: tasks in flight on a dead worker are re-dispatched to the
  remaining live workers (each task retries at most ``max_attempts``
  times, default one attempt per initially connected worker).  Because
  the task bodies are deterministic functions of the spec, a requeued
  task's result is bit-identical to what the dead worker would have
  produced, so consumers never observe the failure.  A ``RESULT`` frame
  for a task that has already been completed, cancelled or requeued is
  dropped -- results are adopted by task id, in whatever order they
  arrive.

Cancellation reaches the workers: abandoning a stream (or cancelling a
future) removes the tasks coordinator-side *and* sends each affected
worker a ``cancel`` directive, so queued speculative work -- e.g. the
radii past the answer in the E5 sweep -- is skipped rather than ground to
completion.  A coordinator dropped without :meth:`shutdown` stays
garbage-collectable (its service threads hold only weak references) and a
finalizer closes its sockets.

The streaming API mirrors :mod:`repro.runtime.shards`:
:meth:`ClusterCoordinator.stream_ball_marginal_tasks` chunks the tasks,
fans the chunks out, and merges each arriving payload into the parent's
:class:`~repro.engine.cache.BallCache` (``adopt``) before yielding, so
the cluster backend drops into every consumer the process backend
already has (SSM engines, the E5 radius sweep, ``warm_ball_cache``).
Abandoning a stream cancels its pending tasks; shutting the coordinator
down cancels everything and closes the sockets, idempotently.
"""

from __future__ import annotations

import itertools
import socket
import struct
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import CancelledError, Future, InvalidStateError, as_completed
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.cluster import protocol
from repro.gibbs.instance import SamplingInstance
from repro.runtime.shards import (
    MEMO_DELTA_CAP,
    InstanceSpec,
    _LEGACY_ALIAS_BY_KERNEL,
    _LEGACY_CHAIN_KINDS,
    _chunk_tasks,
)

Node = Hashable
Value = Hashable
BallKey = Tuple[Node, int]
Address = Tuple[str, int]


class ClusterError(RuntimeError):
    """A cluster-level failure: no live workers, task exhausted retries, ..."""


def _close_worker_sockets(workers) -> None:
    """Finalizer body: close every connection of a collected coordinator."""
    for worker in workers:
        worker.alive = False
        worker.close()


def _reader_thread(coordinator_ref, worker) -> None:
    """Receive frames from one worker until its connection dies.

    Holds only a weak reference to the coordinator between frames, so an
    abandoned coordinator stays garbage-collectable; its finalizer closes
    the sockets, which wakes this thread out of ``recv`` to exit.
    """
    def touch() -> None:
        # Per-chunk progress refresh: a large RESULT frame streaming in for
        # longer than the heartbeat timeout is liveness, not silence.
        worker.last_seen = time.monotonic()

    while True:
        try:
            kind, payload = protocol.recv_message(worker.sock, on_data=touch)
        except (protocol.ProtocolError, OSError) as error:
            coordinator = coordinator_ref()
            if coordinator is not None:
                coordinator._worker_died(worker, error)
            else:
                worker.close()
            return
        worker.last_seen = time.monotonic()
        coordinator = coordinator_ref()
        if coordinator is None:
            worker.close()
            return
        if not coordinator._handle_frame(worker, kind, payload):
            return
        del coordinator  # do not pin the coordinator across the next recv


def _heartbeat_thread(coordinator_ref, interval: float) -> None:
    """Ping workers until the coordinator is closed or collected."""
    while True:
        time.sleep(interval)
        coordinator = coordinator_ref()
        if coordinator is None or not coordinator._heartbeat_tick():
            return
        del coordinator


def parse_address(address) -> Address:
    """Normalise an address given as ``(host, port)`` or ``"host:port"``."""
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"expected 'host:port', got {address!r}")
        return host, int(port)
    host, port = address
    return str(host), int(port)


class _Worker:
    """Coordinator-side state of one worker connection."""

    __slots__ = (
        "address",
        "sock",
        "send_lock",
        "inflight",
        "specs",
        "alive",
        "last_seen",
        "reader",
    )

    def __init__(self, address: Address, sock: socket.socket) -> None:
        self.address = address
        self.sock = sock
        self.send_lock = threading.Lock()
        #: ``{task_id: _Task}`` currently dispatched to this worker.
        self.inflight: Dict[int, "_Task"] = {}
        #: Spec ids this connection holds, mirroring the worker's FIFO cache
        #: (same insertion order, same ``SPEC_CACHE_LIMIT``): only the
        #: coordinator sends SPEC frames on the connection, so replaying the
        #: worker's deterministic eviction here tells us exactly when a spec
        #: must be re-shipped.
        self.specs: "OrderedDict[int, None]" = OrderedDict()
        self.alive = True
        self.last_seen = time.monotonic()
        self.reader: Optional[threading.Thread] = None

    def send(self, kind: int, payload) -> None:
        with self.send_lock:
            protocol.send_message(self.sock, kind, payload)

    def try_send(self, kind: int, payload, timeout: float) -> bool:
        """Send unless the lock is busy (another thread mid-send).

        Used by the heartbeat loop so a long-running send on one worker
        cannot stall liveness checks for the whole cluster; a busy lock
        means traffic is flowing, which is itself a liveness signal.
        """
        if not self.send_lock.acquire(timeout=timeout):
            return False
        try:
            protocol.send_message(self.sock, kind, payload)
        finally:
            self.send_lock.release()
        return True

    def record_spec(self, spec_id: int) -> None:
        """Mirror the worker-side spec cache after shipping a SPEC frame."""
        from repro.cluster.worker import SPEC_CACHE_LIMIT

        self.specs[spec_id] = None
        while len(self.specs) > SPEC_CACHE_LIMIT:
            self.specs.popitem(last=False)

    def close(self) -> None:
        # shutdown() before close(): our own reader thread may be blocked in
        # recv() on this socket, and on Linux a plain close() then leaves the
        # in-flight syscall pinning the connection open -- no FIN ever
        # reaches the worker, which (serving one connection at a time) would
        # never return to accept().  shutdown() tears the connection down
        # immediately and wakes the blocked recv with EOF on both ends.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _Task:
    """One unit of work, movable between workers until it resolves."""

    __slots__ = ("task_id", "kind", "args", "spec", "future", "attempts")

    def __init__(self, task_id: int, kind: str, args, spec) -> None:
        self.task_id = task_id
        self.kind = kind
        self.args = args
        #: ``(spec_id, InstanceSpec)`` or ``None`` for spec-free tasks.
        self.spec = spec
        self.future: Future = Future()
        self.attempts = 0


class ClusterCoordinator:
    """Schedule shard work over a set of worker connections.

    Parameters
    ----------
    addresses : sequence
        Worker addresses, each ``(host, port)`` or ``"host:port"``.
    connect_timeout : float
        Seconds to wait for each TCP connect + handshake.
    heartbeat_interval : float
        Seconds between heartbeat pings.
    heartbeat_timeout : float
        Declare a worker dead after this many silent seconds.
    max_attempts : int, optional
        Dispatch attempts per task before it fails with
        :class:`ClusterError` (default: one per connected worker, so a
        task is never bounced around a fully dying cluster forever).
    """

    def __init__(
        self,
        addresses: Sequence,
        connect_timeout: float = 10.0,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 30.0,
        max_attempts: Optional[int] = None,
    ) -> None:
        parsed = [parse_address(address) for address in addresses]
        if not parsed:
            raise ValueError("a cluster needs at least one worker address")
        self._lock = threading.RLock()
        self._closed = False
        self._task_ids = itertools.count()
        self._spec_ids = itertools.count()
        self._rotation = itertools.count()
        #: ``{instance: (spec_id, InstanceSpec)}`` -- one snapshot per live
        #: instance, so repeated streams over the same instance (e.g. the
        #: per-wave E5 radius sweep) reuse one spec id and the workers'
        #: per-connection spec caches hit instead of re-receiving the spec.
        self._spec_registry: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        #: Number of task re-dispatches caused by worker death (observability
        #: hook; the worker-failure tests assert it moved).
        self.requeued = 0
        self.workers: List[_Worker] = []
        try:
            for address in parsed:
                self.workers.append(self._connect(address, connect_timeout))
        except BaseException:
            for worker in self.workers:
                worker.close()
            raise
        self.max_attempts = (
            int(max_attempts) if max_attempts is not None else max(2, len(parsed))
        )
        # The service threads hold only a weak reference to the coordinator:
        # a coordinator dropped without shutdown() must stay collectable, at
        # which point the finalizer closes the sockets, the blocked reader
        # threads wake with OSError, find their referent gone, and exit.
        self_ref = weakref.ref(self)
        self._finalizer = weakref.finalize(
            self, _close_worker_sockets, self.workers
        )
        for worker in self.workers:
            worker.reader = threading.Thread(
                target=_reader_thread, args=(self_ref, worker), daemon=True
            )
            worker.reader.start()
        self._heartbeat = threading.Thread(
            target=_heartbeat_thread,
            args=(self_ref, self.heartbeat_interval),
            daemon=True,
        )
        self._heartbeat.start()

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def _connect(self, address: Address, timeout: float) -> _Worker:
        sock = socket.create_connection(address, timeout=timeout)
        sock.settimeout(timeout)
        try:
            protocol.send_message(
                sock, protocol.HELLO, protocol.hello_payload("coordinator")
            )
            kind, payload = protocol.recv_message(sock)
            if kind == protocol.ERROR:
                raise protocol.ProtocolError(f"worker rejected handshake: {payload}")
            if kind != protocol.HELLO:
                raise protocol.ProtocolError(
                    f"expected HELLO, got {protocol.MESSAGE_NAMES[kind]}"
                )
            protocol.check_hello(payload, expected_role="worker")
        except BaseException:
            sock.close()
            raise
        sock.settimeout(None)  # reader threads block indefinitely
        # Sends, however, must not: a hung worker that stops draining its
        # socket would otherwise block `sendall` forever (holding the
        # worker's send lock and with it the whole dispatch/heartbeat
        # machinery).  SO_SNDTIMEO bounds only the send side; a timed-out
        # send surfaces as OSError and the worker is declared dead.
        try:
            seconds = int(self.heartbeat_timeout)
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_SNDTIMEO,
                struct.pack("ll", seconds, 0),
            )
        except (OSError, struct.error):  # pragma: no cover - exotic platforms
            pass
        return _Worker(address, sock)

    def _handle_frame(self, worker: _Worker, kind: int, payload) -> bool:
        """Process one received frame; ``False`` once the worker is dead."""
        if kind == protocol.RESULT:
            task_id, result = payload
            task = self._take_inflight(worker, task_id)
            if task is not None:
                self._resolve(task, result=result)
            return True
        if kind == protocol.ERROR:
            task_id, message = payload
            if task_id is None:
                self._worker_died(
                    worker, protocol.ProtocolError(f"worker error: {message}")
                )
                return False
            task = self._take_inflight(worker, task_id)
            if task is not None:
                self._resolve(
                    task, error=ClusterError(f"worker task failed: {message}")
                )
            return True
        if kind == protocol.HEARTBEAT:
            return True  # last_seen already refreshed
        self._worker_died(
            worker,
            protocol.ProtocolError(f"unexpected {protocol.MESSAGE_NAMES[kind]} frame"),
        )
        return False

    def _heartbeat_tick(self) -> bool:
        """One heartbeat round; ``False`` once the coordinator is closed."""
        with self._lock:
            if self._closed:
                return False
            workers = [worker for worker in self.workers if worker.alive]
        now = time.monotonic()
        for worker in workers:
            if now - worker.last_seen > self.heartbeat_timeout:
                self._worker_died(
                    worker,
                    ClusterError(
                        f"no traffic for {self.heartbeat_timeout:.0f}s "
                        "(heartbeat timeout)"
                    ),
                )
                continue
            try:
                # A busy send lock is itself a liveness signal; never
                # stall the shared heartbeat loop behind one worker.
                worker.try_send(protocol.HEARTBEAT, now, timeout=0.1)
            except OSError as error:
                self._worker_died(worker, error)
        return True

    def _take_inflight(self, worker: _Worker, task_id: int) -> Optional["_Task"]:
        """Pop a task from a worker's in-flight map; ``None`` if it moved on.

        A ``None`` means the task was cancelled, requeued elsewhere or
        already resolved -- the frame is a late arrival and is dropped.
        """
        with self._lock:
            return worker.inflight.pop(task_id, None)

    @staticmethod
    def _resolve(task: "_Task", result=None, error: Optional[Exception] = None) -> None:
        """Complete a task's future, tolerating cancelled/duplicate arrivals."""
        try:
            if not task.future.set_running_or_notify_cancel():
                return  # the consumer cancelled the task; drop the result
            if error is not None:
                task.future.set_exception(error)
            else:
                task.future.set_result(result)
        except InvalidStateError:
            # A duplicate arrival (e.g. a task that raced dispatch-retry and
            # death-requeue) already resolved the future; dropping the copy
            # is correct -- results are equal by construction -- and a reader
            # thread must never die over it.
            pass

    def _worker_died(self, worker: _Worker, reason: Exception) -> None:
        """Mark a worker dead and requeue its in-flight tasks elsewhere."""
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            orphans = list(worker.inflight.values())
            worker.inflight.clear()
        worker.close()
        if orphans and not self._closed:
            with self._lock:
                self.requeued += len(orphans)
            for task in orphans:
                try:
                    self._dispatch(task)
                except ClusterError as error:
                    self._resolve(
                        task,
                        error=ClusterError(
                            f"worker {worker.address} died ({reason}) and the "
                            f"task could not be requeued: {error}"
                        ),
                    )
        elif orphans:
            for task in orphans:
                task.future.cancel()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _pick_worker(self) -> _Worker:
        """Least-loaded live worker, round-robin among ties (lock held)."""
        live = [worker for worker in self.workers if worker.alive]
        if not live:
            raise ClusterError("no live cluster workers")
        rotation = next(self._rotation)
        return min(
            (live[(rotation + offset) % len(live)] for offset in range(len(live))),
            key=lambda worker: len(worker.inflight),
        )

    def _dispatch(self, task: "_Task") -> None:
        """Assign a task to a worker and put its frames on the wire.

        Retries transparently over the remaining live workers when a send
        fails (the send failure marks that worker dead, which requeues
        whatever else it was running).
        """
        while True:
            with self._lock:
                if self._closed:
                    raise ClusterError("the coordinator is shut down")
                if task.attempts >= self.max_attempts:
                    raise ClusterError(
                        f"task {task.task_id} ({task.kind}) exhausted "
                        f"{self.max_attempts} dispatch attempts"
                    )
                worker = self._pick_worker()
                task.attempts += 1
                needs_spec = task.spec is not None and task.spec[0] not in worker.specs
                worker.inflight[task.task_id] = task
            try:
                if needs_spec:
                    worker.send(protocol.SPEC, task.spec)
                    with self._lock:
                        worker.record_spec(task.spec[0])
                worker.send(protocol.TASK, (task.task_id, task.kind, task.args))
                return
            except OSError as error:
                # Reclaim the task before declaring the worker dead.  If the
                # pop comes back empty, the reader thread's death path beat
                # us to it and now owns the requeue -- retrying here too
                # would dispatch the task twice.
                with self._lock:
                    owner = worker.inflight.pop(task.task_id, None)
                self._worker_died(worker, error)
                if owner is None:
                    return
            except BaseException:
                # E.g. an unpicklable or oversized payload (ProtocolError):
                # send_message pickles and validates *before* the first
                # byte touches the socket, so the worker is fine -- reclaim
                # the task and surface the error to the caller instead of
                # cascading a payload problem into worker deaths.
                with self._lock:
                    worker.inflight.pop(task.task_id, None)
                raise

    def submit_task(self, kind: str, args, spec=None) -> Future:
        """Schedule one task; the returned future resolves to its result.

        ``spec`` is a ``(spec_id, InstanceSpec)`` pair for spec-bound task
        kinds; it is shipped to each worker at most once.
        """
        task = _Task(next(self._task_ids), kind, args, spec)
        self._dispatch(task)
        return task.future

    def new_spec_id(self) -> int:
        """A fresh spec id (spec payloads are identified, not hashed)."""
        return next(self._spec_ids)

    def _spec_for(self, instance: SamplingInstance) -> Tuple[int, InstanceSpec]:
        """The ``(spec_id, spec)`` pair for an instance (snapshot memoised).

        Instances are immutable (distribution + pinning), so one snapshot
        per instance is safe; the weak registry keeps the id stable across
        stream calls without pinning dead instances in memory.
        """
        with self._lock:
            entry = self._spec_registry.get(instance)
            if entry is None:
                entry = (self.new_spec_id(), InstanceSpec.from_instance(instance))
                self._spec_registry[instance] = entry
            return entry

    def _discard(self, futures: Iterable[Future]) -> None:
        """Cancel pending futures, worker-side included.

        The tail of every streaming generator: pending tasks are cancelled
        coordinator-side (results already on the wire are dropped on
        arrival -- their task id leaves the in-flight maps here) and each
        worker is sent a best-effort ``cancel`` directive so tasks still
        sitting in its queue are skipped instead of ground to completion.
        """
        pending = {id(future) for future in futures if future.cancel()}
        if not pending:
            return
        reclaimed: Dict[_Worker, List[int]] = {}
        with self._lock:
            for worker in self.workers:
                for task_id, task in list(worker.inflight.items()):
                    if id(task.future) in pending:
                        worker.inflight.pop(task_id, None)
                        reclaimed.setdefault(worker, []).append(task_id)
        for worker, task_ids in reclaimed.items():
            if not worker.alive:
                continue
            try:
                worker.send(protocol.TASK, (None, "cancel", task_ids))
            except (OSError, protocol.ProtocolError):
                pass  # the reader will notice the dead connection itself

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def live_worker_count(self) -> int:
        with self._lock:
            return sum(1 for worker in self.workers if worker.alive)

    def shutdown(self) -> None:
        """Close every connection and cancel outstanding work (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self.workers)
        for worker in workers:
            with self._lock:
                worker.alive = False
                orphans = list(worker.inflight.values())
                worker.inflight.clear()
            for task in orphans:
                if not task.future.cancel():
                    # Already running per future protocol; leave resolved ones be.
                    if not task.future.done():  # pragma: no cover - defensive
                        task.future.set_exception(CancelledError())
            worker.close()

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # high-level API (mirrors the process backend)
    # ------------------------------------------------------------------
    def submit(self, function, *args, **kwargs) -> Future:
        """Run ``function(*args, **kwargs)`` on some worker.

        The callable and its arguments cross the wire by pickle, so pass
        module-level functions (pickle serialises them by reference);
        closures and lambdas are rejected by pickle itself.
        """
        return self.submit_task("call", (function, tuple(args), dict(kwargs)))

    def map_unordered(self, function, items: Iterable) -> Iterator[Tuple[int, object]]:
        """Map ``function`` over items, yielding ``(index, result)`` pairs
        in completion order; abandoning the iterator cancels pending calls.
        """
        items = list(items)
        futures = {}
        try:
            for index, item in enumerate(items):
                futures[self.submit(function, item)] = index
        except BaseException:
            self._discard(futures)  # a failed submission abandons its batch
            raise
        try:
            for future in as_completed(futures):
                yield futures[future], future.result()
        finally:
            self._discard(futures)

    # -- spec-bound streaming (the Theorem 5.1 workloads) ---------------
    def _stream_chunked_shards(
        self,
        instance: SamplingInstance,
        tasks: Sequence,
        chunk_size: Optional[int],
        kind: str,
        make_payload,
        adopt,
    ) -> Iterator:
        """The shared streaming skeleton of the spec-bound task kinds.

        Chunks the tasks, fans the chunks out (spec shipped once per
        connection), and -- as each payload completes -- merges it into the
        instance's ball cache via ``adopt(cache, payload)`` (which returns
        the items to yield).  A failed chunk raises a chained
        ``RuntimeError`` naming it; abandoning the generator cancels the
        pending chunks coordinator- and worker-side.
        """
        spec = self._spec_for(instance)
        cache = instance.distribution.ball_cache()
        chunks = _chunk_tasks(tasks, max(1, self.live_worker_count), chunk_size)
        futures = {}
        try:
            for chunk in chunks:
                payload = make_payload(spec[0], list(chunk))
                futures[self.submit_task(kind, payload, spec=spec)] = chunk
        except BaseException:
            self._discard(futures)  # a failed submission abandons its batch
            raise
        try:
            for future in as_completed(futures):
                try:
                    result = future.result()
                except (ClusterError, CancelledError) as error:
                    raise RuntimeError(
                        f"cluster ball shard failed on chunk {futures[future]!r}: "
                        f"{error}"
                    ) from error
                yield from adopt(cache, result)
        finally:
            self._discard(futures)

    def stream_ball_marginal_tasks(
        self,
        instance: SamplingInstance,
        tasks: Sequence[BallKey],
        chunk_size: Optional[int] = None,
        memo_cap: Optional[int] = MEMO_DELTA_CAP,
    ) -> Iterator[Tuple[BallKey, Dict[Value, float]]]:
        """Stream Theorem 5.1 marginals for ``(center, radius)`` tasks.

        The cluster counterpart of
        :func:`repro.runtime.shards.stream_ball_marginal_tasks`: tasks are
        chunked, the chunks fan out over the workers (spec shipped once
        per connection), and each arriving payload's compiled balls,
        boundary extensions and capped marginal-memo deltas are merged
        into the parent's ball cache before its marginals are yielded in
        completion order.  Worker death mid-stream requeues transparently;
        per-ball values are bit-identical to the serial loop.
        """
        tasks = list(tasks)
        if not tasks:
            return

        def adopt(cache, payload):
            marginals, balls, extras, memos = payload
            cache.adopt(balls=balls, extras=extras, memos=memos)
            return marginals.items()

        yield from self._stream_chunked_shards(
            instance,
            tasks,
            chunk_size,
            "ball_marginals",
            lambda spec_id, chunk: {
                "spec_id": spec_id,
                "tasks": chunk,
                "memo_cap": memo_cap,
            },
            adopt,
        )

    def stream_padded_ball_marginals(
        self,
        instance: SamplingInstance,
        centers: Sequence[Node],
        radius: int,
        chunk_size: Optional[int] = None,
        memo_cap: Optional[int] = MEMO_DELTA_CAP,
    ) -> Iterator[Tuple[Node, Dict[Value, float]]]:
        """Single-radius wrapper over :meth:`stream_ball_marginal_tasks`."""
        for (center, _), marginal in self.stream_ball_marginal_tasks(
            instance,
            [(center, radius) for center in centers],
            chunk_size=chunk_size,
            memo_cap=memo_cap,
        ):
            yield center, marginal

    def stream_compiled_balls(
        self,
        instance: SamplingInstance,
        tasks: Sequence[BallKey],
        chunk_size: Optional[int] = None,
    ) -> Iterator[Tuple[BallKey, object]]:
        """Stream ball compilations from the workers into the parent cache."""
        tasks = list(dict.fromkeys(tasks))
        if not tasks:
            return

        def adopt(cache, compiled):
            cache.adopt(balls=compiled)
            return compiled.items()

        yield from self._stream_chunked_shards(
            instance,
            tasks,
            chunk_size,
            "compile_balls",
            lambda spec_id, chunk: {"spec_id": spec_id, "tasks": chunk},
            adopt,
        )

    # -- batched chain blocks -------------------------------------------
    def chain_samples(
        self,
        instance: SamplingInstance,
        kernel: str,
        count: int,
        seeds: Sequence,
        initial=None,
    ) -> List[Dict[Node, Value]]:
        """Final states of independent chains, run as blocks on the workers.

        ``kernel`` names any registered
        :class:`~repro.sampling.kernels.ChainKernel` (the legacy block
        kinds ``"glauber"``/``"luby"`` are accepted as aliases).  The seed
        list is split into one contiguous block per live worker; each
        worker advances its block as a batched code matrix on the instance
        reconstructed from the spec -- the registered ``chain_block`` task
        body of :data:`~repro.runtime.shards.TASK_REGISTRY`, shared with
        the process backend -- so chain ``c`` of the result is
        bit-identical to the kernel's serial chain run with
        ``seed=seeds[c]``.
        """
        from repro.sampling.kernels import get_kernel

        kernel_name = _LEGACY_CHAIN_KINDS.get(kernel, kernel)
        get_kernel(kernel_name)  # fail fast on unknown kernels, caller-side
        seeds = list(seeds)
        if not seeds:
            return []
        spec = self._spec_for(instance)
        blocks = _chunk_tasks(
            seeds, 1, chunk_size=-(-len(seeds) // max(1, self.live_worker_count))
        )
        legacy_kind = _LEGACY_ALIAS_BY_KERNEL.get(kernel_name)
        futures = []
        try:
            for block in blocks:
                payload = {
                    "spec_id": spec[0],
                    "kernel": kernel_name,
                    "count": count,
                    "seeds": block,
                    "initial": dict(initial) if initial is not None else None,
                }
                if legacy_kind is not None:
                    # Wire compat within PROTOCOL_VERSION 1: a previous-release
                    # worker reads args["kind"] for the two pre-kernel
                    # dynamics; newer workers prefer "kernel" and ignore this.
                    payload["kind"] = legacy_kind
                futures.append(self.submit_task("chain_block", payload, spec=spec))
        except BaseException:
            self._discard(futures)
            raise
        try:
            results: List[Dict[Node, Value]] = []
            for future in futures:  # block order == seed order
                results.extend(future.result())
            return results
        finally:
            self._discard(futures)
