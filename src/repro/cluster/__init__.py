"""Multi-machine execution: a coordinator/worker backend over TCP.

conf_podc_FengY18 studies sampling and counting in the LOCAL model --
computation distributed over a network -- and this package is the
repository's literal counterpart: it extends the execution runtime
beyond one host.  The picklable :class:`~repro.runtime.shards.InstanceSpec`
of the process backend is already a complete, self-contained instance
description; the cluster layer ships it over sockets instead of pipes
and reuses the *same* shard task bodies, so every result is bit-identical
to the serial and process backends.

``protocol``
    The framed length-prefixed pickle wire format (HELLO / SPEC / TASK /
    RESULT / HEARTBEAT / ERROR) with malformed-frame rejection.
``worker``
    The ``repro-cluster-worker`` server loop: caches the spec once per
    connection, answers heartbeats while tasks run, executes ball
    compilation / padded-ball marginals / batched chain blocks / generic
    calls.
``coordinator``
    :class:`ClusterCoordinator`: least-loaded + round-robin dispatch,
    heartbeat liveness, automatic requeue of tasks from dead workers,
    and the streaming merge into the parent
    :class:`~repro.engine.cache.BallCache`.
``local``
    :func:`spawn_workers` -- N localhost worker subprocesses for tests,
    benchmarks and the quickstart (leak-proof: a GC/exit finalizer kills
    abandoned workers).
``chaos``
    :class:`FaultPlan` -- seeded, deterministic fault injection (worker
    crashes, dropped/corrupted/truncated frames, stalled heartbeats) for
    the chaos tests that certify the fault-tolerance layer.

Fault tolerance and security (this layer's contract): frames are
optionally HMAC-SHA256-authenticated (``auth_key=``, or the
``REPRO_CLUSTER_AUTH_KEY`` environment variable) and verified *before*
unpickling; dead workers' tasks requeue deterministically and their
addresses are re-dialled with capped exponential backoff; workers may
join mid-stream (:meth:`ClusterCoordinator.add_worker`) and announce
capacity weights; ``degrade="local"`` trades throughput for availability
when every worker is gone.  See ``docs/ARCHITECTURE.md``.

The ergonomic entry point is the :class:`~repro.runtime.executor.Runtime`
facade: ``Runtime(backend="cluster", addresses=[...])`` (or plain
``runtime="cluster"``, which spawns localhost workers on first use)
conforms to the same ``submit`` / ``map_unordered`` /
``stream_ball_marginals`` / ``shutdown`` contract as the serial, batched
and process backends.
"""

from repro.cluster.chaos import CHAOS_ENV, FaultPlan
from repro.cluster.coordinator import ClusterCoordinator, ClusterError, parse_address
from repro.cluster.local import LocalWorkerPool, spawn_workers
from repro.cluster.protocol import (
    AUTH_KEY_ENV,
    AuthenticationError,
    ConnectionClosed,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.cluster.worker import ClusterWorker

__all__ = [
    "AUTH_KEY_ENV",
    "AuthenticationError",
    "CHAOS_ENV",
    "ClusterCoordinator",
    "ClusterError",
    "ClusterWorker",
    "ConnectionClosed",
    "FaultPlan",
    "LocalWorkerPool",
    "ProtocolError",
    "parse_address",
    "recv_message",
    "send_message",
    "spawn_workers",
]
