"""Framed length-prefixed pickle messages: the cluster wire protocol.

Every message on a coordinator <-> worker connection is one *frame*::

    +-------+------+----------------+---------------------+
    | magic | type | payload length | pickled payload ... |
    | 4 B   | 1 B  | 8 B big-endian | `payload length` B  |
    +-------+------+----------------+---------------------+

The fixed header makes the stream self-describing and cheap to validate:
a frame whose magic bytes, message type or length field is wrong raises
:class:`ProtocolError` *before* any payload bytes are unpickled, so a
stray client speaking the wrong protocol (or a corrupted stream) is
rejected instead of interpreted.  Length limits are enforced *per message
kind* on both sides (see :func:`frame_limit`): control frames (HELLO,
HEARTBEAT) are capped at :data:`MAX_CONTROL_FRAME_BYTES`, data frames
(SPEC, TASK, RESULT, ERROR) at :data:`MAX_FRAME_BYTES`, and an oversize
length field is rejected on the header alone -- no payload byte is read,
buffered or unpickled.  A clean EOF raises the :class:`ConnectionClosed`
subclass, which the coordinator treats as worker death and the worker
treats as the coordinator hanging up.

Message types
-------------

``HELLO``
    Handshake, both directions.  The coordinator speaks first; payloads
    carry ``{"role", "version", "pid"}`` and a version mismatch is a
    :class:`ProtocolError`.
``SPEC``
    Coordinator -> worker: ``(spec_id, InstanceSpec)``.  Sent at most
    once per spec per connection (the worker caches it, mirroring the
    process pool's one-initializer-per-worker shipping); later ``TASK``
    frames reference the id only.
``TASK``
    Coordinator -> worker: ``(task_id, kind, args)``.  Task kinds are the
    shard bodies of :mod:`repro.runtime.shards` plus generic calls; see
    :mod:`repro.cluster.worker`.
``RESULT``
    Worker -> coordinator: ``(task_id, result)``.
``HEARTBEAT``
    Coordinator -> worker, echoed back verbatim.  The coordinator uses
    the echo (or any other traffic) as liveness; a silent worker past the
    heartbeat timeout is declared dead and its tasks are requeued.
``ERROR``
    Worker -> coordinator: ``(task_id, message)`` for a failed task, or
    ``(None, message)`` for a connection-level protocol failure.

The payloads are pickled (protocol :data:`pickle.HIGHEST_PROTOCOL`); the
transport therefore carries exactly what the process backend's pipes
carry -- picklable specs, compiled balls, marginal dicts -- and trusts
its peers exactly as much.  Like ``multiprocessing``, this is a
cooperating-cluster transport, not a security boundary: only bind
workers on networks you trust.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Tuple

#: Frame magic: rejects peers that are not speaking this protocol.
MAGIC = b"RCW1"
#: Bumped on incompatible wire changes; checked during the HELLO handshake.
PROTOCOL_VERSION = 1
#: Refuse frames above this payload size (a corrupt length field would
#: otherwise make the receiver try to allocate petabytes).
MAX_FRAME_BYTES = 1 << 30
#: Tighter ceiling for *control* frames (HELLO, HEARTBEAT): their payloads
#: are a role dict or a timestamp -- never remotely megabytes.  Enforcing
#: the small limit per kind means a stray or malicious peer cannot make the
#: receiver buffer a giant allocation *during the handshake*, before it has
#: proven it speaks the protocol at all.  Data frames (SPEC/TASK/RESULT)
#: keep the large limit, since they legitimately carry compiled balls and
#: chain blocks -- and so does ERROR, for wire compatibility within
#: PROTOCOL_VERSION 1: previous-release workers send untruncated traceback
#: reports (current workers cap theirs well below this constant, see
#: :data:`repro.cluster.worker._ERROR_TEXT_LIMIT`).
MAX_CONTROL_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">4sBQ")

# message types ---------------------------------------------------------
HELLO = 1
SPEC = 2
TASK = 3
RESULT = 4
HEARTBEAT = 5
ERROR = 6

MESSAGE_NAMES = {
    HELLO: "HELLO",
    SPEC: "SPEC",
    TASK: "TASK",
    RESULT: "RESULT",
    HEARTBEAT: "HEARTBEAT",
    ERROR: "ERROR",
}


class ProtocolError(RuntimeError):
    """A malformed frame, unknown message type, or handshake mismatch."""


def frame_limit(kind: int) -> int:
    """The maximum payload size accepted for a message kind.

    Control frames (HELLO, HEARTBEAT) are capped at
    :data:`MAX_CONTROL_FRAME_BYTES`; data frames -- ERROR included, for
    version-1 wire compatibility with workers that predate report
    truncation -- at :data:`MAX_FRAME_BYTES`.  Both sides enforce the
    limit: the sender before the first byte touches the socket, the
    receiver after reading the fixed header and *before* reading (let
    alone unpickling) any payload bytes.
    """
    if kind in (HELLO, HEARTBEAT):
        return MAX_CONTROL_FRAME_BYTES
    return MAX_FRAME_BYTES


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (EOF mid-frame or between frames)."""


def send_message(sock: socket.socket, kind: int, payload=None) -> None:
    """Send one framed message.

    Parameters
    ----------
    sock : socket.socket
        A connected stream socket.  Callers serialise concurrent senders
        themselves (one lock per connection).
    kind : int
        One of the message-type constants of this module.
    payload : object
        Any picklable payload (``None`` is fine).

    Raises
    ------
    ProtocolError
        For unknown message kinds or payloads above
        :data:`MAX_FRAME_BYTES`.
    OSError
        When the socket write fails (the peer is gone).
    """
    if kind not in MESSAGE_NAMES:
        raise ProtocolError(f"unknown message type {kind!r}")
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    limit = frame_limit(kind)
    if len(data) > limit:
        raise ProtocolError(
            f"refusing to send a {len(data)}-byte {MESSAGE_NAMES[kind]} frame "
            f"(limit {limit})"
        )
    # Two sends instead of one concatenation: prepending 13 header bytes
    # must not transiently double the memory of a large payload.  Callers
    # hold a per-connection lock, so the frame stays contiguous on the wire.
    sock.sendall(_HEADER.pack(MAGIC, kind, len(data)))
    sock.sendall(data)


def _recv_exact(sock: socket.socket, count: int, on_data=None) -> bytes:
    """Read exactly ``count`` bytes, raising :class:`ConnectionClosed` on EOF.

    ``on_data`` (if given) is invoked after every received chunk -- the
    coordinator uses it to refresh a worker's liveness timestamp *while* a
    large frame is still streaming, so a slow transfer is never mistaken
    for a dead peer.
    """
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"connection closed with {remaining} of {count} bytes unread"
            )
        if on_data is not None:
            on_data()
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket, on_data=None) -> Tuple[int, object]:
    """Receive one framed message, validating the header before unpickling.

    Parameters
    ----------
    sock : socket.socket
        A connected stream socket.
    on_data : callable, optional
        Progress callback invoked per received chunk (see
        :func:`_recv_exact`).

    Returns
    -------
    (int, object)
        The message type and the unpickled payload.

    Raises
    ------
    ProtocolError
        Bad magic bytes, unknown message type, oversized length field, or
        an unpicklable payload -- the frame is rejected without being
        interpreted.
    ConnectionClosed
        EOF from the peer (between frames or mid-frame).
    """
    header = _recv_exact(sock, _HEADER.size, on_data)
    magic, kind, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if kind not in MESSAGE_NAMES:
        raise ProtocolError(f"unknown message type {kind}")
    limit = frame_limit(kind)
    if length > limit:
        # Reject oversize frames on the header alone: no payload byte is
        # read, buffered or unpickled for a length the kind cannot carry.
        raise ProtocolError(
            f"{MESSAGE_NAMES[kind]} frame length {length} exceeds the "
            f"{limit}-byte limit"
        )
    data = _recv_exact(sock, length, on_data)
    try:
        payload = pickle.loads(data)
    except Exception as error:
        raise ProtocolError(f"undecodable {MESSAGE_NAMES[kind]} payload: {error}")
    return kind, payload


def hello_payload(role: str) -> dict:
    """The handshake payload each side announces itself with."""
    import os

    return {"role": role, "version": PROTOCOL_VERSION, "pid": os.getpid()}


def check_hello(payload, expected_role: str) -> dict:
    """Validate a received HELLO payload, raising :class:`ProtocolError`."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"malformed HELLO payload {payload!r}")
    if payload.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {payload.get('version')!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    if payload.get("role") != expected_role:
        raise ProtocolError(
            f"expected a {expected_role!r} peer, got {payload.get('role')!r}"
        )
    return payload
