"""Framed length-prefixed pickle messages: the cluster wire protocol.

Every message on a coordinator <-> worker connection is one *frame*::

    +-------+------+----------------+---------------------+-----------+
    | magic | type | payload length | pickled payload ... | HMAC tag  |
    | 4 B   | 1 B  | 8 B big-endian | `payload length` B  | 0 or 32 B |
    +-------+------+----------------+---------------------+-----------+

The fixed header makes the stream self-describing and cheap to validate:
a frame whose magic bytes, message type or length field is wrong raises
:class:`ProtocolError` *before* any payload bytes are unpickled, so a
stray client speaking the wrong protocol (or a corrupted stream) is
rejected instead of interpreted.  Length limits are enforced *per message
kind* on both sides (see :func:`frame_limit`): control frames (HELLO,
HEARTBEAT) are capped at :data:`MAX_CONTROL_FRAME_BYTES`, data frames
(SPEC, TASK, RESULT, ERROR) at :data:`MAX_FRAME_BYTES`, and an oversize
length field is rejected on the header alone -- no payload byte is read,
buffered or unpickled.  A clean EOF raises the :class:`ConnectionClosed`
subclass, which the coordinator treats as worker death and the worker
treats as the coordinator hanging up.

Authenticated frames
--------------------

With a shared secret (``auth_key=`` on the coordinator/worker, or the
:data:`AUTH_KEY_ENV` environment variable) every frame is *authenticated*:
the magic switches to :data:`MAGIC_AUTH` and a 32-byte HMAC-SHA256 tag
over ``header || payload`` follows the payload.  The receiver verifies the
tag with a constant-time compare **before unpickling a single payload
byte**, so a peer without the key -- or an on-path tamperer flipping bits
-- produces :class:`AuthenticationError`, never an unpickle of attacker
bytes.  The two magics keep the stream self-describing in both
directions:

* an *unauthenticated* frame arriving at a keyed receiver is rejected on
  the header (and answered with a plaintext ``ERROR`` the keyless peer
  can actually read, instead of leaving it hanging);
* an *authenticated* frame arriving at a keyless receiver is likewise a
  header-level :class:`AuthenticationError`;
* a keyed receiver that sees a plaintext ``ERROR`` frame (the handshake
  rejection of a keyless peer) reports the mismatch *without unpickling
  the untrusted payload*.

The HELLO payloads additionally carry an ``"auth"`` flag, so a mismatch
that somehow survives the frame layer still fails the handshake.  HMAC
authenticates peers and frame integrity; the payloads remain pickled, so
the key must be a *shared secret among mutually trusting hosts* -- anyone
holding it can execute code on the workers.  Without a key the transport
trusts its network exactly like ``multiprocessing`` pipes do: only bind
workers on networks you trust.

Message types
-------------

``HELLO``
    Handshake, both directions.  The coordinator speaks first; payloads
    carry ``{"role", "version", "pid", "auth"}`` (workers add
    ``"capacity"``, their relative dispatch weight) and a version or auth
    mismatch is a :class:`ProtocolError`.
``SPEC``
    Coordinator -> worker: ``(spec_id, InstanceSpec)``.  Sent at most
    once per spec per connection (the worker caches it, mirroring the
    process pool's one-initializer-per-worker shipping); later ``TASK``
    frames reference the id only.
``TASK``
    Coordinator -> worker: ``(task_id, kind, args)``.  Task kinds are the
    shard bodies of :mod:`repro.runtime.shards` plus generic calls; see
    :mod:`repro.cluster.worker`.
``RESULT``
    Worker -> coordinator: ``(task_id, result)``.
``HEARTBEAT``
    Coordinator -> worker, echoed back verbatim.  The coordinator uses
    the echo (or any other traffic) as liveness; a silent worker past the
    heartbeat timeout is declared dead and its tasks are requeued.
``ERROR``
    Worker -> coordinator: ``(task_id, message)`` for a failed task, or
    ``(None, message)`` for a connection-level protocol failure.

The payloads are pickled (protocol :data:`pickle.HIGHEST_PROTOCOL`); the
transport therefore carries exactly what the process backend's pipes
carry -- picklable specs, compiled balls, marginal dicts.

Fault injection
---------------

:func:`send_message` accepts a ``faults=`` hook (a
:class:`repro.cluster.chaos.FaultPlan`) consulted once per outgoing frame:
the plan can *drop* the frame, *delay* it, *corrupt* a deterministic bit
of its magic or payload, or *truncate* it mid-payload and tear the
connection down.  The hook sits below the worker/coordinator logic, so
chaos tests exercise exactly the code paths a flaky network would.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_module
import logging
import os
import pickle
import socket
import struct
import time
from typing import Optional, Tuple

from repro import obs

_log = obs.get_logger("cluster.protocol")

#: Frame magic: rejects peers that are not speaking this protocol.
MAGIC = b"RCW1"
#: Magic of *authenticated* frames (a 32-byte HMAC tag follows the payload).
MAGIC_AUTH = b"RCA1"
#: Bumped on incompatible wire changes; checked during the HELLO handshake.
PROTOCOL_VERSION = 1
#: Bytes of the HMAC-SHA256 tag appended to authenticated frames.
TAG_BYTES = 32
#: Environment variable both sides read for a default shared auth key.
AUTH_KEY_ENV = "REPRO_CLUSTER_AUTH_KEY"
#: Refuse frames above this payload size (a corrupt length field would
#: otherwise make the receiver try to allocate petabytes).
MAX_FRAME_BYTES = 1 << 30
#: Tighter ceiling for *control* frames (HELLO, HEARTBEAT): their payloads
#: are a role dict or a timestamp -- never remotely megabytes.  Enforcing
#: the small limit per kind means a stray or malicious peer cannot make the
#: receiver buffer a giant allocation *during the handshake*, before it has
#: proven it speaks the protocol at all.  Data frames (SPEC/TASK/RESULT)
#: keep the large limit, since they legitimately carry compiled balls and
#: chain blocks -- and so does ERROR, for wire compatibility within
#: PROTOCOL_VERSION 1: previous-release workers send untruncated traceback
#: reports (current workers cap theirs well below this constant, see
#: :data:`repro.cluster.worker._ERROR_TEXT_LIMIT`).
MAX_CONTROL_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">4sBQ")

# message types ---------------------------------------------------------
HELLO = 1
SPEC = 2
TASK = 3
RESULT = 4
HEARTBEAT = 5
ERROR = 6

MESSAGE_NAMES = {
    HELLO: "HELLO",
    SPEC: "SPEC",
    TASK: "TASK",
    RESULT: "RESULT",
    HEARTBEAT: "HEARTBEAT",
    ERROR: "ERROR",
}


class ProtocolError(RuntimeError):
    """A malformed frame, unknown message type, or handshake mismatch."""


class AuthenticationError(ProtocolError):
    """A frame failed (or lacked) HMAC authentication.

    ``peer_plain`` distinguishes the two directions: ``True`` when the
    *peer* sent unauthenticated frames to a keyed receiver (the rejection
    reply must then be plaintext so the keyless peer can read it),
    ``False`` when the peer sent authenticated frames this side cannot
    verify (missing key or bad tag).
    """

    def __init__(self, message: str, peer_plain: bool = False) -> None:
        super().__init__(message)
        self.peer_plain = peer_plain


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (EOF mid-frame or between frames)."""


def normalize_auth_key(key) -> Optional[bytes]:
    """Normalise an auth key argument: ``None``, ``str`` (UTF-8) or bytes.

    The empty string/bytes count as "no key", so ``auth_key=os.environ.get(
    AUTH_KEY_ENV, "")`` composes without surprises.
    """
    if key is None:
        return None
    if isinstance(key, str):
        key = key.encode("utf-8")
    if not isinstance(key, (bytes, bytearray)):
        raise TypeError(f"auth key must be str or bytes, got {type(key).__name__}")
    return bytes(key) or None


def auth_key_from_env() -> Optional[bytes]:
    """The shared key of :data:`AUTH_KEY_ENV`, or ``None`` when unset."""
    return normalize_auth_key(os.environ.get(AUTH_KEY_ENV))


def _tag(key: bytes, header: bytes, data: bytes) -> bytes:
    """The HMAC-SHA256 tag over one frame's header and payload."""
    mac = hmac_module.new(key, header, hashlib.sha256)
    mac.update(data)
    return mac.digest()


def frame_limit(kind: int) -> int:
    """The maximum payload size accepted for a message kind.

    Control frames (HELLO, HEARTBEAT) are capped at
    :data:`MAX_CONTROL_FRAME_BYTES`; data frames -- ERROR included, for
    version-1 wire compatibility with workers that predate report
    truncation -- at :data:`MAX_FRAME_BYTES`.  Both sides enforce the
    limit: the sender before the first byte touches the socket, the
    receiver after reading the fixed header and *before* reading (let
    alone unpickling) any payload bytes.
    """
    if kind in (HELLO, HEARTBEAT):
        return MAX_CONTROL_FRAME_BYTES
    return MAX_FRAME_BYTES


def send_message(
    sock: socket.socket, kind: int, payload=None, key: Optional[bytes] = None,
    faults=None,
) -> None:
    """Send one framed message, optionally authenticated and fault-injected.

    Parameters
    ----------
    sock : socket.socket
        A connected stream socket.  Callers serialise concurrent senders
        themselves (one lock per connection).
    kind : int
        One of the message-type constants of this module.
    payload : object
        Any picklable payload (``None`` is fine).
    key : bytes, optional
        Shared HMAC key; when given the frame carries :data:`MAGIC_AUTH`
        and a :data:`TAG_BYTES`-byte tag over header and payload.
    faults : repro.cluster.chaos.FaultPlan, optional
        Deterministic fault-injection hook consulted once per frame (test
        harness only; production paths pass ``None``).

    Raises
    ------
    ProtocolError
        For unknown message kinds or payloads above the per-kind limit.
    OSError
        When the socket write fails (the peer is gone) -- including the
        injected mid-frame truncation of a fault plan.
    """
    if kind not in MESSAGE_NAMES:
        raise ProtocolError(f"unknown message type {kind!r}")
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    limit = frame_limit(kind)
    if len(data) > limit:
        raise ProtocolError(
            f"refusing to send a {len(data)}-byte {MESSAGE_NAMES[kind]} frame "
            f"(limit {limit})"
        )
    magic = MAGIC if key is None else MAGIC_AUTH
    header = _HEADER.pack(magic, kind, len(data))
    tag = b"" if key is None else _tag(key, header, data)
    if faults is not None:
        action = faults.frame_action(kind)
        if action is not None:
            name = action[0]
            if name == "drop":
                return  # the frame silently never reaches the wire
            if name == "delay":
                time.sleep(action[1])
            elif name == "corrupt":
                where, position = action[1], action[2]
                if where == "magic":
                    header = bytes([header[0] ^ 0x01]) + header[1:]
                    if key is not None:
                        # The tag covered the original header; keep it so
                        # only the magic byte is wrong on the wire.
                        pass
                elif data:
                    position %= len(data)
                    data = (
                        data[:position]
                        + bytes([data[position] ^ 0x01])
                        + data[position + 1 :]
                    )
                    # Deliberately NOT recomputing the tag: a tamperer does
                    # not hold the key, so the tag no longer matches.
            elif name == "truncate":
                keep = min(action[1], len(data))
                sock.sendall(header)
                if keep:
                    sock.sendall(data[:keep])
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError as error:
                    # The socket may already be torn down by the peer; the
                    # truncation is reported via the OSError below either way.
                    obs.log_event(
                        _log, logging.DEBUG, "protocol.truncate_shutdown_failed",
                        error=error,
                    )
                raise OSError("fault injection: frame truncated mid-payload")
    # Separate sends instead of one concatenation: prepending 13 header
    # bytes must not transiently double the memory of a large payload.
    # Callers hold a per-connection lock, so the frame stays contiguous on
    # the wire.
    sock.sendall(header)
    sock.sendall(data)
    if tag:
        sock.sendall(tag)
    handle = obs.active()
    if handle is not None:
        handle.metrics.counter(f"cluster.frames_sent.{MESSAGE_NAMES[kind]}").inc()
        handle.metrics.counter("cluster.bytes_sent").inc(len(header) + len(data) + len(tag))


def _recv_exact(sock: socket.socket, count: int, on_data=None) -> bytes:
    """Read exactly ``count`` bytes, raising :class:`ConnectionClosed` on EOF.

    ``on_data`` (if given) is invoked after every received chunk -- the
    coordinator uses it to refresh a worker's liveness timestamp *while* a
    large frame is still streaming, so a slow transfer is never mistaken
    for a dead peer.
    """
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"connection closed with {remaining} of {count} bytes unread"
            )
        if on_data is not None:
            on_data()
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(
    sock: socket.socket, on_data=None, key: Optional[bytes] = None
) -> Tuple[int, object]:
    """Receive one framed message, validating header (and tag) before unpickling.

    Parameters
    ----------
    sock : socket.socket
        A connected stream socket.
    on_data : callable, optional
        Progress callback invoked per received chunk (see
        :func:`_recv_exact`).
    key : bytes, optional
        Shared HMAC key.  With a key, only :data:`MAGIC_AUTH` frames with
        a valid tag are accepted -- except a plaintext ``ERROR`` frame,
        which is reported as an auth-mismatch rejection *without its
        payload being unpickled* (it is how a keyless peer says no).
        Without a key, authenticated frames are rejected.

    Returns
    -------
    (int, object)
        The message type and the unpickled payload.

    Raises
    ------
    ProtocolError
        Bad magic bytes, unknown message type, oversized length field, or
        an unpicklable payload -- the frame is rejected without being
        interpreted.
    AuthenticationError
        Tag verification failure or an auth-mode mismatch between the
        peers; raised before any payload byte is unpickled.
    ConnectionClosed
        EOF from the peer (between frames or mid-frame).
    """
    header = _recv_exact(sock, _HEADER.size, on_data)
    magic, kind, length = _HEADER.unpack(header)
    if magic not in (MAGIC, MAGIC_AUTH):
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if kind not in MESSAGE_NAMES:
        raise ProtocolError(f"unknown message type {kind}")
    limit = frame_limit(kind)
    if length > limit:
        # Reject oversize frames on the header alone: no payload byte is
        # read, buffered or unpickled for a length the kind cannot carry.
        raise ProtocolError(
            f"{MESSAGE_NAMES[kind]} frame length {length} exceeds the "
            f"{limit}-byte limit"
        )
    authenticated = magic == MAGIC_AUTH
    if authenticated and key is None:
        # Drain payload + tag (bounded by the per-kind limit) without
        # unpickling: rejecting on the header alone would leave the frame
        # unread in the kernel buffer, and the later shutdown would then
        # RST the connection under a peer still mid-send -- its rejection
        # reply must travel on a clean stream.
        _recv_exact(sock, length + TAG_BYTES, on_data)
        raise AuthenticationError(
            f"authenticated {MESSAGE_NAMES[kind]} frame received but no auth "
            "key is configured on this side; payload discarded unread"
        )
    if not authenticated and key is not None:
        if kind == ERROR:
            # A keyless peer rejecting the connection: drain the frame so
            # the stream stays parseable, but never unpickle its untrusted
            # payload.
            _recv_exact(sock, length, on_data)
            raise AuthenticationError(
                "peer rejected the connection with an unauthenticated ERROR "
                "frame (authentication mismatch: this side has an auth key, "
                "the peer does not); payload discarded unread"
            )
        raise AuthenticationError(
            f"unauthenticated {MESSAGE_NAMES[kind]} frame rejected: this side "
            "requires HMAC-authenticated frames",
            peer_plain=True,
        )
    data = _recv_exact(sock, length, on_data)
    if authenticated:
        tag = _recv_exact(sock, TAG_BYTES, on_data)
        if not hmac_module.compare_digest(tag, _tag(key, header, data)):
            raise AuthenticationError(
                f"HMAC verification failed on a {MESSAGE_NAMES[kind]} frame "
                "(wrong key or tampered payload); payload not unpickled"
            )
    try:
        payload = pickle.loads(data)
    except Exception as error:
        raise ProtocolError(f"undecodable {MESSAGE_NAMES[kind]} payload: {error}")
    handle = obs.active()
    if handle is not None:
        handle.metrics.counter(f"cluster.frames_received.{MESSAGE_NAMES[kind]}").inc()
        handle.metrics.counter("cluster.bytes_received").inc(len(header) + length)
    return kind, payload


def hello_payload(role: str, auth: bool = False, capacity: Optional[int] = None) -> dict:
    """The handshake payload each side announces itself with.

    ``auth`` states whether this side sends authenticated frames (belt and
    braces on top of the per-frame magic); workers additionally announce a
    ``capacity`` -- their relative weight in least-loaded dispatch.
    """
    payload = {"role": role, "version": PROTOCOL_VERSION, "pid": os.getpid(),
               "auth": bool(auth)}
    if capacity is not None:
        payload["capacity"] = int(capacity)
    return payload


def check_hello(payload, expected_role: str, auth: bool = False) -> dict:
    """Validate a received HELLO payload, raising :class:`ProtocolError`."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"malformed HELLO payload {payload!r}")
    if payload.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {payload.get('version')!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    if payload.get("role") != expected_role:
        raise ProtocolError(
            f"expected a {expected_role!r} peer, got {payload.get('role')!r}"
        )
    if bool(payload.get("auth")) != bool(auth):
        raise AuthenticationError(
            "authentication mismatch in HELLO: peer "
            f"{'sends' if payload.get('auth') else 'does not send'} "
            "authenticated frames, this side "
            f"{'does' if auth else 'does not'}",
            peer_plain=not payload.get("auth"),
        )
    return payload
