"""Deterministic fault injection for the cluster backend.

The Las Vegas contract of the paper's algorithms -- failures are locally
certifiable and never corrupt the output of non-failed nodes -- is only
worth claiming for ``runtime="cluster"`` if it survives *injected* faults,
not just happy-path runs.  This module provides the injection side: a
seeded, picklable-as-JSON :class:`FaultPlan` that the transport
(:func:`repro.cluster.protocol.send_message`), the worker loop
(:mod:`repro.cluster.worker`) and the localhost spawner
(:mod:`repro.cluster.local`) consult at well-defined points.

Determinism is the whole point.  Every fault is expressed as "the K-th
frame of this kind" or "after N completed tasks", counted with
thread-safe counters, and the only randomness (the corrupted byte's
position) comes from the plan's own seed.  Running the same test twice
injects byte-identical chaos, so a failure reproduces.

Faults
------

``kill_after_tasks=N``
    The worker process calls :func:`os._exit` after completing N tasks --
    a hard crash, not a clean shutdown, exactly like the OOM killer.
``stall_heartbeats_after=K``
    The worker stops echoing HEARTBEAT frames after the K-th echo, so the
    coordinator's liveness timeout (not EOF) must detect it.
``drop_frames=(K, ...)``
    The K-th outgoing frame (1-based, counted per plan across all kinds
    matched by ``frame_kinds``) is silently never written.
``delay_frames={K: seconds}``
    The K-th matched frame is written after sleeping.
``truncate_frames=(K, ...)``
    The K-th matched frame is cut mid-payload and the connection torn
    down -- the receiver sees EOF inside a frame, a
    :class:`~repro.cluster.protocol.ConnectionClosed`.
``corrupt_frames=(K, ...)`` with ``corrupt_target``
    One bit of the K-th matched frame is flipped: in the magic bytes
    (``"magic"`` -- detected by every receiver) or in the pickled payload
    (``"payload"`` -- detected *only* when HMAC authentication is on;
    without a key a payload flip is exactly the silent corruption the
    auth layer exists to catch, though pickle's framing usually still
    chokes on it).
``frame_kinds=(TASK, RESULT, ...)``
    Restricts which message kinds count toward (and can receive) the
    frame faults above; ``None`` matches every kind.

Plans cross process boundaries as JSON via the
:data:`CHAOS_ENV` environment variable, so
:func:`repro.cluster.local.spawn_workers` can arm a subprocess worker:
``env[CHAOS_ENV] = plan.to_json()`` and the worker's ``main()`` rebuilds
it with :func:`FaultPlan.from_json`.
"""

from __future__ import annotations

import json
import random
import threading
from typing import Dict, Optional, Tuple

#: Environment variable carrying a JSON fault plan into worker subprocesses.
CHAOS_ENV = "REPRO_CLUSTER_CHAOS"

#: Where a corrupted frame gets its bit flip.
CORRUPT_TARGETS = ("magic", "payload")


class FaultPlan:
    """A seeded, thread-safe schedule of faults for one process.

    All frame counts are 1-based and count only frames whose kind matches
    ``frame_kinds`` (every kind when ``None``).  A single plan instance is
    shared by all connections of the process it arms, so "the 3rd RESULT
    frame" means the 3rd across the whole process -- deterministic as long
    as the armed process itself behaves deterministically (single
    connection, ordered sends), which the cluster worker does.
    """

    def __init__(
        self,
        seed: int = 0,
        kill_after_tasks: Optional[int] = None,
        stall_heartbeats_after: Optional[int] = None,
        drop_frames: Tuple[int, ...] = (),
        delay_frames: Optional[Dict[int, float]] = None,
        truncate_frames: Tuple[int, ...] = (),
        corrupt_frames: Tuple[int, ...] = (),
        corrupt_target: str = "payload",
        frame_kinds: Optional[Tuple[int, ...]] = None,
    ) -> None:
        if corrupt_target not in CORRUPT_TARGETS:
            raise ValueError(
                f"corrupt_target must be one of {CORRUPT_TARGETS}, "
                f"got {corrupt_target!r}"
            )
        self.seed = int(seed)
        self.kill_after_tasks = kill_after_tasks
        self.stall_heartbeats_after = stall_heartbeats_after
        self.drop_frames = frozenset(int(k) for k in drop_frames)
        self.delay_frames = {int(k): float(v) for k, v in (delay_frames or {}).items()}
        self.truncate_frames = frozenset(int(k) for k in truncate_frames)
        self.corrupt_frames = frozenset(int(k) for k in corrupt_frames)
        self.corrupt_target = corrupt_target
        self.frame_kinds = (
            None if frame_kinds is None else frozenset(int(k) for k in frame_kinds)
        )
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._frames_sent = 0
        self._tasks_done = 0
        self._heartbeats = 0

    # frame-level hooks (called by protocol.send_message) ---------------

    def frame_action(self, kind: int):
        """The action for the next outgoing frame of ``kind``, or ``None``.

        Returns one of ``("drop",)``, ``("delay", seconds)``,
        ``("truncate", keep_bytes)`` or ``("corrupt", target, position)``.
        Counting and the corruption position draw from plan state under a
        lock, so concurrent senders stay deterministic in aggregate.
        """
        with self._lock:
            if self.frame_kinds is not None and kind not in self.frame_kinds:
                return None
            self._frames_sent += 1
            index = self._frames_sent
            if index in self.drop_frames:
                return ("drop",)
            if index in self.truncate_frames:
                # Keep a deterministic sliver of payload so the receiver
                # is mid-frame (not between frames) when EOF hits.
                return ("truncate", self._rng.randrange(1, 16))
            if index in self.corrupt_frames:
                return ("corrupt", self.corrupt_target, self._rng.randrange(1 << 20))
            if index in self.delay_frames:
                return ("delay", self.delay_frames[index])
        return None

    # worker-level hooks ------------------------------------------------

    def task_completed(self) -> bool:
        """Record one finished task; ``True`` when the worker must die now."""
        if self.kill_after_tasks is None:
            return False
        with self._lock:
            self._tasks_done += 1
            return self._tasks_done >= self.kill_after_tasks

    def stall_heartbeat(self) -> bool:
        """Record one heartbeat; ``True`` when the echo must be swallowed."""
        if self.stall_heartbeats_after is None:
            return False
        with self._lock:
            self._heartbeats += 1
            return self._heartbeats > self.stall_heartbeats_after

    # value semantics ---------------------------------------------------

    def _schedule(self):
        """The schedule fields -- everything but the runtime counters."""
        return (
            self.seed,
            self.kill_after_tasks,
            self.stall_heartbeats_after,
            self.drop_frames,
            tuple(sorted(self.delay_frames.items())),
            self.truncate_frames,
            self.corrupt_frames,
            self.corrupt_target,
            self.frame_kinds,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._schedule() == other._schedule()

    def __hash__(self) -> int:
        return hash(self._schedule())

    # serialisation (environment hand-off to worker subprocesses) -------

    def to_json(self) -> str:
        """A JSON form that :func:`from_json` round-trips exactly."""
        return json.dumps(
            {
                "seed": self.seed,
                "kill_after_tasks": self.kill_after_tasks,
                "stall_heartbeats_after": self.stall_heartbeats_after,
                "drop_frames": sorted(self.drop_frames),
                "delay_frames": {str(k): v for k, v in self.delay_frames.items()},
                "truncate_frames": sorted(self.truncate_frames),
                "corrupt_frames": sorted(self.corrupt_frames),
                "corrupt_target": self.corrupt_target,
                "frame_kinds": (
                    None if self.frame_kinds is None else sorted(self.frame_kinds)
                ),
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan serialised by :meth:`to_json` (fresh counters)."""
        raw = json.loads(text)
        return cls(
            seed=raw.get("seed", 0),
            kill_after_tasks=raw.get("kill_after_tasks"),
            stall_heartbeats_after=raw.get("stall_heartbeats_after"),
            drop_frames=tuple(raw.get("drop_frames", ())),
            delay_frames={int(k): v for k, v in raw.get("delay_frames", {}).items()},
            truncate_frames=tuple(raw.get("truncate_frames", ())),
            corrupt_frames=tuple(raw.get("corrupt_frames", ())),
            corrupt_target=raw.get("corrupt_target", "payload"),
            frame_kinds=(
                None
                if raw.get("frame_kinds") is None
                else tuple(raw["frame_kinds"])
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"seed={self.seed}"]
        if self.kill_after_tasks is not None:
            parts.append(f"kill_after_tasks={self.kill_after_tasks}")
        if self.stall_heartbeats_after is not None:
            parts.append(f"stall_heartbeats_after={self.stall_heartbeats_after}")
        for name in ("drop_frames", "truncate_frames", "corrupt_frames"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={tuple(sorted(value))}")
        if self.delay_frames:
            parts.append(f"delay_frames={self.delay_frames}")
        return f"FaultPlan({', '.join(parts)})"
