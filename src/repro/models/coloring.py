"""Proper q-colorings and list-colorings.

The uniform distribution over proper colorings is the running example of the
paper (Section 1 and Remark 2.2).  Conditioning a q-coloring distribution on
a partial coloring is exactly a list-coloring instance on the remaining
nodes, which is how self-reducibility shows up for this model.

The distribution is locally admissible precisely when every node always has a
spare color -- the classical condition ``q >= Delta + 1`` for q-colorings, or
``|L_v| >= deg(v) + 1`` for list-colorings -- because then any partial proper
coloring extends greedily.  The paper's application (via Gamarnik, Katz,
Misra 2013) needs the stronger condition ``q >= alpha * Delta`` with
``alpha > alpha* ~ 1.763`` on triangle-free graphs for strong spatial mixing.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import networkx as nx

from repro.gibbs.distribution import GibbsDistribution
from repro.gibbs.factors import Factor
from repro.graphs.generators import is_triangle_free
from repro.models.thresholds import ALPHA_STAR

Node = Hashable


def coloring_model(graph: nx.Graph, num_colors: int) -> GibbsDistribution:
    """Uniform distribution over proper ``num_colors``-colorings of ``graph``."""
    if num_colors < 1:
        raise ValueError("need at least one color")

    def different(color_u: int, color_v: int) -> float:
        return 0.0 if color_u == color_v else 1.0

    factors = [
        Factor((u, v), different, name=f"proper[{u!r},{v!r}]") for u, v in graph.edges()
    ]
    degrees = [d for _, d in graph.degree()]
    max_degree = max(degrees, default=0)
    triangle_free = is_triangle_free(graph)
    metadata = {
        "model": "coloring",
        "num_colors": num_colors,
        "max_degree": max_degree,
        "local": True,
        "locally_admissible": num_colors >= max_degree + 1,
        "triangle_free": triangle_free,
        # Strong spatial mixing regime of Gamarnik-Katz-Misra: triangle-free
        # graphs with q >= alpha * Delta for some alpha > alpha*.
        "ssm_regime": triangle_free and num_colors > ALPHA_STAR * max_degree,
    }
    return GibbsDistribution(
        graph,
        alphabet=tuple(range(num_colors)),
        factors=factors,
        name=f"coloring(q={num_colors})",
        metadata=metadata,
    )


def list_coloring_model(
    graph: nx.Graph, color_lists: Mapping[Node, Sequence[int]]
) -> GibbsDistribution:
    """Uniform distribution over proper list-colorings of ``graph``.

    ``color_lists`` maps each node to its list ``L_v`` of available colors.
    The global alphabet is the union of all lists; a unary hard factor at
    each node restricts it to its own list, and binary factors enforce
    properness.  This is the self-reduced form of the q-coloring model
    described in Remark 2.2 of the paper.
    """
    missing = [node for node in graph.nodes() if node not in color_lists]
    if missing:
        raise ValueError(f"color lists missing for nodes {missing}")
    empty = [node for node, colors in color_lists.items() if len(colors) == 0]
    if empty:
        raise ValueError(f"nodes {empty} have empty color lists")

    alphabet = sorted({color for colors in color_lists.values() for color in colors})

    factors = []
    for node in graph.nodes():
        allowed = frozenset(color_lists[node])

        def in_list(color: int, _allowed=allowed) -> float:
            return 1.0 if color in _allowed else 0.0

        factors.append(Factor((node,), in_list, name=f"list[{node!r}]"))

    def different(color_u: int, color_v: int) -> float:
        return 0.0 if color_u == color_v else 1.0

    for u, v in graph.edges():
        factors.append(Factor((u, v), different, name=f"proper[{u!r},{v!r}]"))

    admissible = all(
        len(set(color_lists[node])) >= graph.degree(node) + 1 for node in graph.nodes()
    )
    degrees = [d for _, d in graph.degree()]
    metadata = {
        "model": "list-coloring",
        "max_degree": max(degrees, default=0),
        "local": True,
        "locally_admissible": admissible,
        "list_sizes": {node: len(set(colors)) for node, colors in color_lists.items()},
    }
    return GibbsDistribution(
        graph,
        alphabet=tuple(alphabet),
        factors=factors,
        name="list-coloring",
        metadata=metadata,
    )
