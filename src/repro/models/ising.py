"""Two-spin models: Ising and general (anti-)ferromagnetic two-spin systems.

A two-spin model assigns each node a value in ``{-1, +1}`` (we use ``0`` for
``-`` and ``1`` for ``+`` internally, exposed through the alphabet
``(SPIN_MINUS, SPIN_PLUS)``).  Each edge carries the weight matrix
``[[beta, 1], [1, gamma]]`` (``beta`` for ``++``, ``gamma`` for ``--``) and
each node carries an external field ``lambda`` on the ``+`` spin.  The model
is anti-ferromagnetic when ``beta * gamma < 1``; the paper's application is
exact sampling in ``O(log^3 n)`` rounds throughout the interior of the
uniqueness regime (Li, Lu, Yin 2013).
"""

from __future__ import annotations

import math

import networkx as nx

from repro.gibbs.distribution import GibbsDistribution
from repro.gibbs.factors import Factor
from repro.models.thresholds import is_two_spin_uniqueness

SPIN_MINUS = 0
SPIN_PLUS = 1


def two_spin_model(
    graph: nx.Graph,
    beta: float,
    gamma: float,
    field: float = 1.0,
) -> GibbsDistribution:
    """General two-spin model with edge weights ``(beta, gamma)`` and field ``lambda``.

    A configuration ``sigma in {0, 1}^V`` has weight
    ``prod_{uv in E} A(sigma_u, sigma_v) * prod_v lambda^{sigma_v}`` where
    ``A(1, 1) = beta``, ``A(0, 0) = gamma`` and ``A(0, 1) = A(1, 0) = 1``.
    The model is soft (hence trivially locally admissible) whenever both
    ``beta`` and ``gamma`` are positive; ``beta = 0`` recovers the hardcore
    model.
    """
    if beta < 0 or gamma < 0:
        raise ValueError("edge weights beta and gamma must be non-negative")
    if field <= 0:
        raise ValueError("the external field must be positive")

    def vertex_weight(value: int) -> float:
        return field if value == SPIN_PLUS else 1.0

    def edge_weight(value_u: int, value_v: int) -> float:
        if value_u == SPIN_PLUS and value_v == SPIN_PLUS:
            return beta
        if value_u == SPIN_MINUS and value_v == SPIN_MINUS:
            return gamma
        return 1.0

    factors = []
    for node in graph.nodes():
        factors.append(Factor((node,), vertex_weight, name=f"field[{node!r}]"))
    for u, v in graph.edges():
        factors.append(Factor((u, v), edge_weight, name=f"coupling[{u!r},{v!r}]"))

    degrees = [d for _, d in graph.degree()]
    max_degree = max(degrees, default=0)
    soft = beta > 0 and gamma > 0
    metadata = {
        "model": "two-spin",
        "beta": beta,
        "gamma": gamma,
        "field": field,
        "max_degree": max_degree,
        "antiferromagnetic": beta * gamma < 1.0,
        "local": True,
        # A soft model never forbids any configuration, so every partial
        # configuration is feasible; with hard constraints (beta or gamma
        # zero) admissibility matches the hardcore argument.
        "locally_admissible": True,
        "uniqueness": is_two_spin_uniqueness(beta, gamma, field, max_degree) if soft or beta == 0 else True,
    }
    return GibbsDistribution(
        graph,
        alphabet=(SPIN_MINUS, SPIN_PLUS),
        factors=factors,
        name=f"two-spin(beta={beta}, gamma={gamma}, lambda={field})",
        metadata=metadata,
    )


def ising_model(
    graph: nx.Graph,
    interaction: float,
    external_field: float = 0.0,
) -> GibbsDistribution:
    """Classical Ising model with inverse-temperature ``interaction``.

    The edge weight of a configuration is ``exp(interaction * s_u * s_v)``
    with spins ``s in {-1, +1}`` and the vertex weight is
    ``exp(external_field * s_v)``.  Negative ``interaction`` gives the
    anti-ferromagnetic Ising model.  Internally this is the two-spin model
    with ``beta = gamma = exp(2 * interaction)`` and
    ``lambda = exp(2 * external_field)`` (after factoring out a constant).
    """
    beta = math.exp(2.0 * interaction)
    gamma = beta
    field = math.exp(2.0 * external_field)
    distribution = two_spin_model(graph, beta=beta, gamma=gamma, field=field)
    distribution.metadata.update(
        {
            "model": "ising",
            "interaction": interaction,
            "external_field": external_field,
        }
    )
    distribution.name = f"ising(J={interaction}, h={external_field})"
    return distribution
