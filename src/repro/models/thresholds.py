"""Uniqueness thresholds and decay-rate constants.

The paper's applications plug state-of-the-art strong-spatial-mixing results
into its reductions; the regimes in which those results hold are delimited by
the constants computed here:

* the hardcore uniqueness threshold ``lambda_c(Delta)`` (Weitz 2006),
* the weighted-hypergraph-matching threshold ``lambda_c(r, Delta)``
  (Song, Yin, Zhao 2016),
* the coloring constant ``alpha* ~= 1.763...`` solving ``x = e^{1/x}``
  (Gamarnik, Katz, Misra 2013),
* a numerical uniqueness test for general anti-ferromagnetic two-spin models
  (Li, Lu, Yin 2013),
* the matching SSM decay rate ``1 - Omega(1/sqrt(Delta))`` (Bayati et al.
  2007), which is where the ``O(sqrt(Delta) log^3 n)`` round bound comes
  from.
"""

from __future__ import annotations

import math
from typing import Tuple


def _solve_alpha_star() -> float:
    """Solve ``x = exp(1/x)`` by bisection; the root is ~1.76322."""
    low, high = 1.0, 3.0
    for _ in range(200):
        mid = (low + high) / 2.0
        if mid - math.exp(1.0 / mid) < 0.0:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


#: The constant alpha* ~ 1.763... : q >= alpha * Delta colorings of
#: triangle-free graphs exhibit SSM for every alpha > alpha*.
ALPHA_STAR: float = _solve_alpha_star()


def hardcore_uniqueness_threshold(max_degree: int) -> float:
    """The hardcore uniqueness threshold ``lambda_c(Delta)``.

    ``lambda_c(Delta) = (Delta - 1)^(Delta - 1) / (Delta - 2)^Delta`` for
    ``Delta >= 3``; for ``Delta <= 2`` the model is in uniqueness for every
    finite fugacity, so the threshold is infinite.
    """
    if max_degree < 0:
        raise ValueError("max_degree must be non-negative")
    if max_degree <= 2:
        return math.inf
    delta = max_degree
    return (delta - 1) ** (delta - 1) / (delta - 2) ** delta


def hypergraph_matching_uniqueness_threshold(rank: int, max_degree: int) -> float:
    """The weighted hypergraph matching threshold ``lambda_c(r, Delta)``.

    ``lambda_c(r, Delta) = (Delta - 1)^(Delta - 1) / ((r - 1) (Delta - 2)^Delta)``
    where ``r`` is the rank of the hypergraph (Song, Yin, Zhao 2016).  For
    ``Delta <= 2`` the threshold is infinite; ``rank`` must be at least 2.
    """
    if rank < 2:
        raise ValueError("hypergraph rank must be at least 2")
    if max_degree < 0:
        raise ValueError("max_degree must be non-negative")
    if max_degree <= 2:
        return math.inf
    delta = max_degree
    return (delta - 1) ** (delta - 1) / ((rank - 1) * (delta - 2) ** delta)


def matching_ssm_decay_rate(max_degree: int, edge_weight: float = 1.0) -> float:
    """Decay rate of strong spatial mixing for the monomer--dimer model.

    Bayati, Gamarnik, Katz, Nair and Tetali (2007) prove SSM with exponential
    decay at rate ``1 - Omega(1/sqrt(Delta))`` for matchings with edge weight
    ``lambda``; the explicit rate used here is
    ``1 - 2 / (sqrt(1 + 4 * lambda * Delta) + 1)``, which reproduces the
    ``O(sqrt(Delta))`` dependence the paper's matching application quotes.
    """
    if max_degree < 1:
        return 0.0
    if edge_weight <= 0:
        raise ValueError("edge_weight must be positive")
    return 1.0 - 2.0 / (math.sqrt(1.0 + 4.0 * edge_weight * max_degree) + 1.0)


def _two_spin_tree_recursion(beta: float, gamma: float, lam: float, degree: int):
    """The tree recursion ``f(x) = lam * ((beta x + 1) / (x + gamma))^d``.

    ``x`` is the ratio ``mu(+) / mu(-)`` at the root of an infinite
    ``(degree + 1)``-regular tree with ``degree`` children per node.
    """

    def recursion(x: float) -> float:
        return lam * ((beta * x + 1.0) / (x + gamma)) ** degree

    def derivative(x: float) -> float:
        numerator = beta * (x + gamma) - (beta * x + 1.0)
        base = (beta * x + 1.0) / (x + gamma)
        return lam * degree * base ** (degree - 1) * numerator / (x + gamma) ** 2

    return recursion, derivative


def two_spin_tree_fixed_point(
    beta: float, gamma: float, lam: float, degree: int, iterations: int = 5000
) -> float:
    """Numerically locate the fixed point of the two-spin tree recursion.

    For anti-ferromagnetic models (``beta * gamma < 1``) the recursion is
    monotonically decreasing, so ``f(f(x))`` is increasing and the fixed
    point is unique; damped iteration converges to it.
    """
    recursion, _ = _two_spin_tree_recursion(beta, gamma, lam, degree)
    x = lam
    for _ in range(iterations):
        x = 0.5 * x + 0.5 * recursion(x)
    return x


def is_two_spin_uniqueness(
    beta: float, gamma: float, lam: float, max_degree: int
) -> bool:
    """Whether an anti-ferromagnetic two-spin model is in the uniqueness regime.

    The model ``(beta, gamma, lambda)`` is in uniqueness for graphs of
    maximum degree ``Delta`` when, for every ``d <= Delta - 1``, the tree
    recursion on the ``d``-ary tree has ``|f'(x*)| < 1`` at its fixed point
    ``x*`` (Li, Lu, Yin 2013).  ``beta`` is the weight of a (+,+) edge,
    ``gamma`` of a (-,-) edge and ``lambda`` the external field on +.
    """
    if beta < 0 or gamma < 0 or lam <= 0:
        raise ValueError("two-spin parameters must be non-negative (lambda positive)")
    if beta * gamma >= 1.0:
        # Ferromagnetic-or-critical: treat via the same criterion at Delta-1.
        pass
    if max_degree <= 1:
        return True
    for degree in range(1, max_degree):
        recursion, derivative = _two_spin_tree_recursion(beta, gamma, lam, degree)
        fixed_point = two_spin_tree_fixed_point(beta, gamma, lam, degree)
        if abs(derivative(fixed_point)) >= 1.0:
            return False
    return True


def hardcore_uniqueness_margin(fugacity: float, max_degree: int) -> Tuple[bool, float]:
    """Classify a hardcore model against its uniqueness threshold.

    Returns ``(in_uniqueness, ratio)`` where ``ratio = fugacity / lambda_c``;
    a ratio below 1 means the model is in the tractable (uniqueness) regime
    where the paper's O(log^3 n)-round exact sampler applies, above 1 means
    the Omega(diam) lower bound regime.
    """
    if fugacity <= 0:
        raise ValueError("fugacity must be positive")
    threshold = hardcore_uniqueness_threshold(max_degree)
    if math.isinf(threshold):
        return True, 0.0
    ratio = fugacity / threshold
    return ratio < 1.0, ratio
