"""Weighted hypergraph matchings via the hypergraph dual graph.

A matching of a hypergraph ``H`` is a set of pairwise disjoint hyperedges;
with activity ``lambda`` per chosen hyperedge this is exactly the hardcore
model on the *dual graph* of ``H`` (one vertex per hyperedge, adjacent when
the hyperedges intersect).  Song, Yin and Zhao (2016) prove strong spatial
mixing for this model up to the threshold ``lambda_c(r, Delta)``; plugged
into the paper's reduction machinery this gives an ``O(log^3 n)``-round
exact sampler in that regime (Section 5).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Mapping

from repro.gibbs.distribution import GibbsDistribution
from repro.gibbs.factors import Factor
from repro.graphs.duality import Hypergraph, hypergraph_dual_graph
from repro.models.thresholds import hypergraph_matching_uniqueness_threshold

Node = Hashable

CHOSEN = 1
NOT_CHOSEN = 0


def hypergraph_matching_model(
    hypergraph: Hypergraph, activity: float = 1.0
) -> GibbsDistribution:
    """Weighted hypergraph matching model with the given hyperedge activity.

    The distribution lives on the dual graph of the hypergraph; metadata
    carries the hypergraph, the node -> hyperedge map and the uniqueness
    threshold ``lambda_c(rank, max_degree)``.
    """
    if activity <= 0:
        raise ValueError("activity must be positive")
    if not hypergraph.hyperedges:
        raise ValueError("the hypergraph has no hyperedges")

    dual, hyperedge_of_node = hypergraph_dual_graph(hypergraph)

    def hyperedge_activity(value: int) -> float:
        return activity if value == CHOSEN else 1.0

    def disjointness(value_a: int, value_b: int) -> float:
        return 0.0 if (value_a == CHOSEN and value_b == CHOSEN) else 1.0

    factors: List[Factor] = []
    for node in dual.nodes():
        factors.append(Factor((node,), hyperedge_activity, name=f"activity[{node}]"))
    for a, b in dual.edges():
        factors.append(Factor((a, b), disjointness, name=f"disjoint[{a},{b}]"))

    rank = max(hypergraph.rank, 2)
    max_degree = hypergraph.max_degree
    threshold = hypergraph_matching_uniqueness_threshold(rank, max_degree)
    metadata = {
        "model": "hypergraph-matching",
        "activity": activity,
        "hypergraph": hypergraph,
        "hyperedge_of_node": hyperedge_of_node,
        "rank": hypergraph.rank,
        "hypergraph_max_degree": max_degree,
        "max_degree": max((d for _, d in dual.degree()), default=0),
        "local": True,
        "locally_admissible": True,
        "uniqueness_threshold": threshold,
        "uniqueness": activity < threshold,
    }
    return GibbsDistribution(
        dual,
        alphabet=(NOT_CHOSEN, CHOSEN),
        factors=factors,
        name=f"hypergraph-matching(lambda={activity})",
        metadata=metadata,
    )


def configuration_to_hypergraph_matching(
    distribution: GibbsDistribution, configuration: Mapping[int, int]
) -> List[FrozenSet[Node]]:
    """Translate a dual-graph configuration into the chosen hyperedges."""
    hyperedge_of_node: Dict[int, FrozenSet[Node]] = distribution.metadata["hyperedge_of_node"]
    return [
        hyperedge_of_node[node]
        for node, value in configuration.items()
        if value == CHOSEN
    ]


def is_valid_hypergraph_matching(
    hypergraph: Hypergraph, chosen: List[FrozenSet[Node]]
) -> bool:
    """Whether the chosen hyperedges are pairwise disjoint members of the hypergraph."""
    edge_set = set(hypergraph.hyperedges)
    used: set = set()
    for hyperedge in chosen:
        members = frozenset(hyperedge)
        if members not in edge_set:
            return False
        if members & used:
            return False
        used |= members
    return True
