"""The monomer--dimer model (weighted matchings) via the line-graph duality.

A matching of ``G`` with edge weight ``lambda`` per matched edge is exactly a
hardcore-style configuration on the line graph ``L(G)``: one binary variable
per edge, with the hard constraint that no two incident edges are both
matched.  Since the line-graph construction changes distances by at most a
constant factor, LOCAL round complexities transfer between the two views --
this is the duality the paper invokes for its ``O(sqrt(Delta) log^3 n)``
matching sampler (Section 5).

The returned distribution lives on the line graph; its metadata carries the
original graph and the node -> original-edge map, and helper functions
translate configurations back and forth.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Tuple

import networkx as nx

from repro.gibbs.distribution import GibbsDistribution
from repro.gibbs.factors import Factor
from repro.graphs.duality import line_graph_with_map
from repro.models.thresholds import matching_ssm_decay_rate

Node = Hashable
Edge = Tuple[Node, Node]

MATCHED = 1
UNMATCHED = 0


def matching_model(graph: nx.Graph, edge_weight: float = 1.0) -> GibbsDistribution:
    """Monomer--dimer model on ``graph`` with activity ``edge_weight`` per dimer.

    The distribution is over the line graph of ``graph``; use
    :func:`configuration_to_matching` to translate a sample back to a set of
    edges of the original graph.  ``edge_weight = 1`` gives the uniform
    distribution over all matchings (including the empty matching).
    """
    if edge_weight <= 0:
        raise ValueError("edge_weight must be positive")
    if graph.number_of_edges() == 0:
        raise ValueError("the graph has no edges, the matching model is empty")

    line_graph, edge_of_node = line_graph_with_map(graph)

    def dimer_activity(value: int) -> float:
        return edge_weight if value == MATCHED else 1.0

    def no_shared_endpoint(value_a: int, value_b: int) -> float:
        return 0.0 if (value_a == MATCHED and value_b == MATCHED) else 1.0

    factors: List[Factor] = []
    for node in line_graph.nodes():
        factors.append(Factor((node,), dimer_activity, name=f"dimer[{node}]"))
    for a, b in line_graph.edges():
        factors.append(Factor((a, b), no_shared_endpoint, name=f"disjoint[{a},{b}]"))

    degrees = [d for _, d in graph.degree()]
    max_degree = max(degrees, default=0)
    metadata = {
        "model": "matching",
        "edge_weight": edge_weight,
        "original_graph": graph,
        "edge_of_node": edge_of_node,
        "original_max_degree": max_degree,
        "max_degree": max((d for _, d in line_graph.degree()), default=0),
        "local": True,
        # Any partial matching extends by leaving remaining edges unmatched.
        "locally_admissible": True,
        "ssm_decay_rate": matching_ssm_decay_rate(max_degree, edge_weight),
        # The monomer-dimer model exhibits SSM for every finite edge weight.
        "uniqueness": True,
    }
    return GibbsDistribution(
        line_graph,
        alphabet=(UNMATCHED, MATCHED),
        factors=factors,
        name=f"matching(lambda={edge_weight})",
        metadata=metadata,
    )


def configuration_to_matching(
    distribution: GibbsDistribution, configuration: Mapping[int, int]
) -> List[Edge]:
    """Translate a line-graph configuration into a list of matched edges."""
    edge_of_node: Dict[int, Edge] = distribution.metadata["edge_of_node"]
    return [edge_of_node[node] for node, value in configuration.items() if value == MATCHED]


def matching_to_configuration(
    distribution: GibbsDistribution, matching: List[Edge]
) -> Dict[int, int]:
    """Translate a set of edges of the original graph into a line-graph configuration."""
    edge_of_node: Dict[int, Edge] = distribution.metadata["edge_of_node"]
    inverse = {edge: node for node, edge in edge_of_node.items()}
    normalized = set()
    for u, v in matching:
        key = (u, v) if (u, v) in inverse else (v, u)
        if key not in inverse:
            raise ValueError(f"({u!r}, {v!r}) is not an edge of the original graph")
        normalized.add(key)
    return {
        node: (MATCHED if edge in normalized else UNMATCHED)
        for node, edge in edge_of_node.items()
    }


def is_valid_matching(graph: nx.Graph, matching: List[Edge]) -> bool:
    """Whether the given edge set is a matching of ``graph``."""
    seen = set()
    for u, v in matching:
        if not graph.has_edge(u, v):
            return False
        if u in seen or v in seen:
            return False
        seen.add(u)
        seen.add(v)
    return True
