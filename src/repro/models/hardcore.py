"""The hardcore model (weighted independent sets).

Configurations assign each node a value in ``{0, 1}``; a configuration is
feasible iff the occupied nodes (value 1) form an independent set, and its
weight is ``lambda^{#occupied}``.  The paper's flagship application is an
``O(log^3 n)``-round exact sampler for this model whenever the fugacity is
below the uniqueness threshold ``lambda_c(Delta)``, and the matching
``Omega(diam)`` lower bound above the threshold -- together the first
computational phase transition for distributed sampling.
"""

from __future__ import annotations

import networkx as nx

from repro.gibbs.distribution import GibbsDistribution
from repro.gibbs.factors import Factor
from repro.models.thresholds import hardcore_uniqueness_margin

OCCUPIED = 1
EMPTY = 0


def hardcore_model(graph: nx.Graph, fugacity: float = 1.0) -> GibbsDistribution:
    """Build the hardcore model on ``graph`` with the given fugacity.

    The model is a local Gibbs distribution (edge factors have scope diameter
    one) and is locally admissible: any partial independent set extends to a
    full one by leaving the remaining nodes empty.

    Parameters
    ----------
    graph:
        The underlying simple undirected graph.
    fugacity:
        The activity ``lambda > 0`` of an occupied node; ``lambda = 1`` gives
        the uniform distribution over independent sets.
    """
    if fugacity <= 0:
        raise ValueError("fugacity must be positive")

    def vertex_weight(value: int) -> float:
        return fugacity if value == OCCUPIED else 1.0

    def edge_constraint(value_u: int, value_v: int) -> float:
        return 0.0 if (value_u == OCCUPIED and value_v == OCCUPIED) else 1.0

    factors = []
    for node in graph.nodes():
        factors.append(Factor((node,), vertex_weight, name=f"activity[{node!r}]"))
    for u, v in graph.edges():
        factors.append(Factor((u, v), edge_constraint, name=f"independent[{u!r},{v!r}]"))

    degrees = [d for _, d in graph.degree()]
    max_degree = max(degrees, default=0)
    in_uniqueness, ratio = hardcore_uniqueness_margin(fugacity, max_degree)
    metadata = {
        "model": "hardcore",
        "fugacity": fugacity,
        "max_degree": max_degree,
        "local": True,
        "locally_admissible": True,
        "uniqueness": in_uniqueness,
        "uniqueness_ratio": ratio,
    }
    return GibbsDistribution(
        graph,
        alphabet=(EMPTY, OCCUPIED),
        factors=factors,
        name=f"hardcore(lambda={fugacity})",
        metadata=metadata,
    )
