"""Concrete spin and edge models used by the paper's applications (Section 5).

Every constructor returns a :class:`~repro.gibbs.GibbsDistribution` whose
``metadata`` records the model parameters and the two structural flags the
reductions care about:

* ``"local"`` -- the factors have constant scope diameter (Definition 2.4);
* ``"locally_admissible"`` -- every locally feasible partial configuration is
  feasible (Definition 2.5), which is what makes the SSM characterisation of
  Theorem 5.1 applicable.

Models provided: the hardcore model (weighted independent sets), the
anti-ferromagnetic two-spin / Ising model, proper q-colorings and
list-colorings, the monomer--dimer model of matchings (via the line-graph
duality), and weighted hypergraph matchings (via the hypergraph dual graph).
The uniqueness thresholds that delimit the tractable regimes live in
:mod:`repro.models.thresholds`.
"""

from repro.models.hardcore import hardcore_model
from repro.models.ising import ising_model, two_spin_model
from repro.models.coloring import coloring_model, list_coloring_model
from repro.models.matching import matching_model
from repro.models.hypergraph_matching import hypergraph_matching_model
from repro.models.thresholds import (
    ALPHA_STAR,
    hardcore_uniqueness_threshold,
    hypergraph_matching_uniqueness_threshold,
    is_two_spin_uniqueness,
    matching_ssm_decay_rate,
)

__all__ = [
    "hardcore_model",
    "ising_model",
    "two_spin_model",
    "coloring_model",
    "list_coloring_model",
    "matching_model",
    "hypergraph_matching_model",
    "ALPHA_STAR",
    "hardcore_uniqueness_threshold",
    "hypergraph_matching_uniqueness_threshold",
    "is_two_spin_uniqueness",
    "matching_ssm_decay_rate",
]
