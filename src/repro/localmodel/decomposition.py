"""Network decomposition (Linial--Saks style).

A ``(C, D)``-network decomposition partitions the nodes into clusters, each
of (weak) diameter at most ``D``, and colors the clusters with ``C`` colors
so that clusters of the same color are non-adjacent.  Lemma 3.1 of the paper
turns any SLOCAL algorithm of locality ``r`` into a LOCAL algorithm by
building an ``(O(log n), O(log n))`` decomposition of the power graph
``G^{r+1}`` and processing color classes one after the other ("chromatic
scheduling").

We implement the classic randomized construction of Linial and Saks (1993):
in each of ``O(log n)`` phases every still-unclustered node draws a truncated
geometric radius; a node joins the cluster of the highest-priority center
whose ball covers it, and is *finalised* in this phase only if it lies
strictly inside that ball.  Same-phase clusters are therefore non-adjacent,
each phase finalises a constant fraction of the remaining nodes in
expectation, and every cluster has radius ``O(log n)``.  Nodes that survive
all phases (an event of polynomially small probability for the default phase
budget) are placed in singleton fallback clusters and flagged, which is how
the locally certifiable failures of Lemma 3.1 arise in the simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

import networkx as nx
import numpy as np

from repro.graphs.structure import distances_from

Node = Hashable


@dataclass
class NetworkDecomposition:
    """A ``(C, D)`` decomposition: cluster membership, colors and quality stats."""

    #: Cluster label of every node.  Labels are ``(phase, center)`` pairs so
    #: that a node acting as a center in two different phases yields two
    #: distinct clusters (clusters of different phases get different colors).
    cluster_of: Dict[Node, tuple]
    #: Color (phase index) of every cluster label.
    color_of_cluster: Dict[tuple, int]
    #: Nodes that were not clustered by the main construction and were placed
    #: in fallback singleton clusters (these count as local failures in the
    #: Lemma 3.1 simulation).
    fallback_nodes: Set[Node] = field(default_factory=set)
    #: Radius bound used by the construction.
    radius_bound: int = 0

    @property
    def num_colors(self) -> int:
        """Number of colors ``C`` actually used."""
        if not self.color_of_cluster:
            return 0
        return max(self.color_of_cluster.values()) + 1

    @property
    def clusters(self) -> Dict[tuple, List[Node]]:
        """Mapping from cluster label to the list of member nodes."""
        result: Dict[tuple, List[Node]] = {}
        for node, label in self.cluster_of.items():
            result.setdefault(label, []).append(node)
        return result

    def color_of(self, node: Node) -> int:
        """Color of the cluster containing ``node``."""
        return self.color_of_cluster[self.cluster_of[node]]

    def center_of(self, node: Node) -> Node:
        """The center node of the cluster containing ``node``."""
        return self.cluster_of[node][1]

    def max_cluster_diameter(self, graph: nx.Graph) -> int:
        """Largest weak diameter (measured in ``graph``) over all clusters."""
        worst = 0
        for members in self.clusters.values():
            for source in members:
                lengths = distances_from(graph, source)
                for target in members:
                    worst = max(worst, lengths.get(target, 0))
        return worst

    def validate(self, graph: nx.Graph) -> None:
        """Check the defining properties; raises ``AssertionError`` on violation.

        Verifies that every node is clustered and that adjacent nodes in
        different clusters of the same color do not exist.
        """
        missing = set(graph.nodes()) - set(self.cluster_of)
        assert not missing, f"nodes {missing} are not assigned to any cluster"
        for u, v in graph.edges():
            cluster_u, cluster_v = self.cluster_of[u], self.cluster_of[v]
            if cluster_u != cluster_v:
                assert self.color_of_cluster[cluster_u] != self.color_of_cluster[cluster_v], (
                    f"adjacent nodes {u!r}, {v!r} lie in different clusters of the same color"
                )


def linial_saks_decomposition(
    graph: nx.Graph,
    seed: int = 0,
    radius_bound: Optional[int] = None,
    max_phases: Optional[int] = None,
    survival_probability: float = 0.5,
) -> NetworkDecomposition:
    """Build an ``(O(log n), O(log n))`` network decomposition of ``graph``.

    Parameters
    ----------
    graph:
        The graph to decompose (for Lemma 3.1 this is a power graph
        ``G^{r+1}``, but any graph works).
    seed:
        Randomness seed; the construction is Las Vegas so the seed only
        affects which (valid) decomposition is produced and whether fallback
        clusters are needed.
    radius_bound:
        Truncation radius ``B`` of the geometric radii; defaults to
        ``ceil(2 * log2(n)) + 1``.
    max_phases:
        Number of phases (= color budget); defaults to ``ceil(4 * log2(n)) + 2``.
    survival_probability:
        Parameter of the geometric radius distribution; 0.5 reproduces the
        textbook analysis.
    """
    n = graph.number_of_nodes()
    if n == 0:
        return NetworkDecomposition(cluster_of={}, color_of_cluster={})
    log_n = max(1.0, math.log2(max(n, 2)))
    if radius_bound is None:
        radius_bound = int(math.ceil(2.0 * log_n)) + 1
    if max_phases is None:
        max_phases = int(math.ceil(4.0 * log_n)) + 2
    if not 0.0 < survival_probability < 1.0:
        raise ValueError("survival_probability must be in (0, 1)")

    rng = np.random.default_rng(seed)
    try:
        priority = {node: index for index, node in enumerate(sorted(graph.nodes()))}
    except TypeError:
        priority = {node: index for index, node in enumerate(sorted(graph.nodes(), key=repr))}

    cluster_of: Dict[Node, Node] = {}
    color_of_cluster: Dict[Node, int] = {}
    remaining: Set[Node] = set(graph.nodes())

    for phase in range(max_phases):
        if not remaining:
            break
        # Every remaining node draws a truncated geometric radius.
        radii: Dict[Node, int] = {}
        for node in sorted(remaining, key=priority.get):
            radius = int(rng.geometric(1.0 - survival_probability)) - 1
            radii[node] = min(radius, radius_bound)
        # Each remaining node looks for the highest-priority center whose
        # ball covers it; it is finalised only if strictly inside that ball.
        finalised: Dict[Node, Node] = {}
        for node in remaining:
            best_center = None
            best_distance = None
            lengths = distances_from(graph, node, radius_bound)
            for center, distance in lengths.items():
                if center not in remaining:
                    continue
                if distance > radii[center]:
                    continue
                if best_center is None or priority[center] < priority[best_center]:
                    best_center = center
                    best_distance = distance
            if best_center is not None and best_distance < radii[best_center]:
                finalised[node] = best_center
        for node, center in finalised.items():
            label = (phase, center)
            cluster_of[node] = label
            color_of_cluster[label] = phase
        remaining -= set(finalised)

    fallback = set(remaining)
    next_color = (max(color_of_cluster.values()) + 1) if color_of_cluster else 0
    for node in sorted(fallback, key=priority.get):
        label = (next_color, node)
        cluster_of[node] = label
        color_of_cluster[label] = next_color
        next_color += 1

    return NetworkDecomposition(
        cluster_of=cluster_of,
        color_of_cluster=color_of_cluster,
        fallback_nodes=fallback,
        radius_bound=radius_bound,
    )
