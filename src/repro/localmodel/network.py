"""The simulated distributed network: IDs, private randomness, ball views.

A :class:`Network` wraps the problem graph and gives every node the three
resources the LOCAL model grants it: a unique identifier, an arbitrarily long
private random string (modelled as a per-node :class:`numpy.random.Generator`
derived deterministically from a master seed), and -- after ``t`` rounds of
communication -- complete knowledge of its radius-``t`` ball.

Locality is enforced *by construction*: algorithms receive
:class:`LocalView` objects that only contain the ball subgraph and the data
of the nodes inside it, so a node algorithm cannot accidentally read remote
information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Optional, Set

import networkx as nx
import numpy as np

from repro.graphs.structure import ball_subgraph, distances_from, node_ids

Node = Hashable


@dataclass
class LocalView:
    """Everything a node can see after ``radius`` rounds of communication.

    Attributes
    ----------
    center:
        The node whose view this is.
    radius:
        The number of communication rounds the view corresponds to.
    subgraph:
        A copy of the subgraph induced by ``B_radius(center)``.
    ids:
        The unique identifiers of the nodes in the ball.
    distances:
        Graph distance from the centre to every node in the ball.
    inputs:
        Local inputs ``x_v`` of the nodes in the ball (whatever the problem
        attaches: pinned values, factor descriptions, error bounds...).
    seeds:
        The random seeds of the nodes in the ball -- the LOCAL model lets the
        centre read its neighbours' random bits once it has heard from them.
    """

    center: Node
    radius: int
    subgraph: nx.Graph
    ids: Dict[Node, int]
    distances: Dict[Node, int]
    inputs: Dict[Node, object] = field(default_factory=dict)
    seeds: Dict[Node, int] = field(default_factory=dict)

    @property
    def nodes(self) -> Set[Node]:
        """The nodes visible in this view."""
        return set(self.subgraph.nodes())

    def rng(self, node: Optional[Node] = None, salt: int = 0) -> np.random.Generator:
        """A deterministic random generator for a node inside the view.

        Different ``salt`` values give independent streams for different
        purposes (different passes of a multi-pass algorithm, for example),
        mirroring the "arbitrarily long random bit string" of the model.
        """
        target = self.center if node is None else node
        if target not in self.seeds:
            raise KeyError(f"node {target!r} is outside this view")
        return np.random.default_rng((self.seeds[target], salt))


class Network:
    """A simulated LOCAL-model network over a problem graph."""

    def __init__(
        self,
        graph: nx.Graph,
        seed: int = 0,
        inputs: Optional[Dict[Node, object]] = None,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("the network needs at least one node")
        self.graph = graph
        self.seed = seed
        self.ids = node_ids(graph)
        self.inputs: Dict[Node, object] = dict(inputs or {})
        # Each node receives an independent random stream; deriving the
        # per-node seed from (master seed, node id) keeps runs reproducible.
        self._node_seeds: Dict[Node, int] = {
            node: int(np.random.SeedSequence([seed, node_id]).generate_state(1)[0])
            for node, node_id in self.ids.items()
        }

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes in the network."""
        return self.graph.number_of_nodes()

    @property
    def nodes(self):
        """Nodes in deterministic (ID) order."""
        return sorted(self.ids, key=self.ids.get)

    def node_seed(self, node: Node) -> int:
        """The random seed of a node (its private random string)."""
        return self._node_seeds[node]

    def rng(self, node: Node, salt: int = 0) -> np.random.Generator:
        """A fresh generator over the node's private random string."""
        return np.random.default_rng((self._node_seeds[node], salt))

    def set_input(self, node: Node, value: object) -> None:
        """Attach the local input ``x_v`` to a node."""
        if node not in self.ids:
            raise KeyError(f"{node!r} is not a node of the network")
        self.inputs[node] = value

    # ------------------------------------------------------------------
    def view(self, center: Node, radius: int) -> LocalView:
        """The radius-``radius`` view of ``center`` (what ``t`` rounds reveal)."""
        if center not in self.ids:
            raise KeyError(f"{center!r} is not a node of the network")
        if radius < 0:
            raise ValueError("radius must be non-negative")
        # Cap at the graph size: more rounds than the diameter reveal nothing new.
        capped = min(radius, self.size)
        subgraph = ball_subgraph(self.graph, center, capped)
        members = set(subgraph.nodes())
        return LocalView(
            center=center,
            radius=radius,
            subgraph=subgraph,
            ids={node: self.ids[node] for node in members},
            distances=distances_from(self.graph, center, capped),
            inputs={node: self.inputs[node] for node in members if node in self.inputs},
            seeds={node: self._node_seeds[node] for node in members},
        )

    def views(self, radius: int) -> Dict[Node, LocalView]:
        """Views of every node at the same radius (one communication phase)."""
        return {node: self.view(node, radius) for node in self.nodes}

    def restrict_inputs(self, nodes: Iterable[Node]) -> Dict[Node, object]:
        """The inputs of a subset of nodes (used when spawning sub-networks)."""
        node_set = set(nodes)
        return {node: value for node, value in self.inputs.items() if node in node_set}
