"""SLOCAL -> LOCAL transformation (Lemma 3.1, after Ghaffari--Kuhn--Maus).

Given an SLOCAL algorithm of locality ``r``, the LOCAL simulation

1. builds an ``(O(log n), O(log n))`` network decomposition of the power
   graph ``G^{r+1}``,
2. processes the color classes of the decomposition one after another; all
   clusters of one color are handled in parallel (they are non-adjacent in
   ``G^{r+1}``, hence at pairwise distance more than ``r`` in ``G``, so the
   parallel execution is equivalent to *some* sequential ordering ``pi``),
3. charges ``O(C * (D + 1) * (r + 1)) = O(r log^2 n)`` rounds, where ``C``
   and ``D`` are the decomposition's colors and cluster diameter.

Nodes in fallback clusters of the decomposition are marked as failed
(``F''_v = 1``); those failures are independent of the algorithm's own
failures and of its outputs, so conditioning on global success preserves the
SLOCAL output distribution -- exactly the statement of Lemma 3.1, and the
property the distributed JVV sampler relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.graphs.structure import power_graph
from repro.localmodel.decomposition import NetworkDecomposition, linial_saks_decomposition
from repro.localmodel.network import Network
from repro.localmodel.slocal import SLocalAlgorithm, run_slocal_algorithm

Node = Hashable


@dataclass
class ScheduledRunResult:
    """Outcome of simulating an SLOCAL algorithm in the LOCAL model."""

    outputs: Dict[Node, object]
    #: Combined failure indicators ``F_v = F'_v (algorithm) OR F''_v (scheduling)``.
    failures: Dict[Node, bool]
    #: Failures caused by the network decomposition alone.
    scheduling_failures: Dict[Node, bool]
    #: Round complexity charged to the LOCAL simulation.
    rounds: int
    #: The sequential ordering the chromatic schedule is equivalent to.
    ordering: List[Node]
    #: The decomposition used by the schedule (for quality statistics).
    decomposition: NetworkDecomposition
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def success(self) -> bool:
        """True when no node failed (neither algorithm nor scheduling)."""
        return not any(self.failures.values())

    @property
    def failure_count(self) -> int:
        """Number of failed nodes."""
        return sum(1 for failed in self.failures.values() if failed)


def effective_locality(algorithm: SLocalAlgorithm, network: Network) -> int:
    """Single-pass locality of a (possibly multi-pass) SLOCAL algorithm.

    Lemma 4.4 (2) of the paper: a ``k``-pass algorithm with locality ``r``
    per pass collapses to a single pass of locality ``r + 2 (k - 1) r``.
    """
    base = algorithm.locality(network)
    passes = max(1, algorithm.passes)
    return base + 2 * (passes - 1) * base


def simulate_slocal_as_local(
    algorithm: SLocalAlgorithm,
    network: Network,
    seed: int = 0,
    decomposition: Optional[NetworkDecomposition] = None,
) -> ScheduledRunResult:
    """Simulate an SLOCAL algorithm in the LOCAL model (Lemma 3.1).

    Parameters
    ----------
    algorithm:
        The SLOCAL algorithm to simulate.
    network:
        The network to run on.
    seed:
        Seed for the randomized network decomposition (independent of the
        nodes' private randomness, as in the paper).
    decomposition:
        Optionally, a pre-computed decomposition of ``G^{r+1}`` (used by the
        tests to exercise corner cases); by default a Linial--Saks
        decomposition is built.
    """
    locality = effective_locality(algorithm, network)
    graph = network.graph
    if decomposition is None:
        scheduling_graph = power_graph(graph, locality + 1) if locality > 0 else graph
        decomposition = linial_saks_decomposition(scheduling_graph, seed=seed)
    decomposition.validate(power_graph(graph, locality + 1) if locality > 0 else graph)

    ids = network.ids
    # Chromatic schedule: colors in increasing order; within a color clusters
    # run in parallel, which is equivalent to processing them in any relative
    # order because same-color clusters are at distance > r in G.  Inside a
    # cluster the nodes are processed in ID order by the cluster leader.
    def schedule_key(node: Node):
        center = decomposition.center_of(node)
        return (
            decomposition.color_of(node),
            ids.get(center, ids[node]),
            ids[node],
        )

    ordering = sorted(network.nodes, key=schedule_key)
    sequential = run_slocal_algorithm(algorithm, network, ordering)

    scheduling_failures = {
        node: (node in decomposition.fallback_nodes) for node in network.nodes
    }
    failures = {
        node: bool(sequential.failures[node] or scheduling_failures[node])
        for node in network.nodes
    }

    num_colors = decomposition.num_colors
    cluster_radius_in_g = decomposition.radius_bound * (locality + 1)
    rounds = max(1, num_colors * (2 * cluster_radius_in_g + locality + 1))

    return ScheduledRunResult(
        outputs=sequential.outputs,
        failures=failures,
        scheduling_failures=scheduling_failures,
        rounds=rounds,
        ordering=ordering,
        decomposition=decomposition,
        details={
            "slocal_locality": algorithm.locality(network),
            "effective_locality": locality,
            "num_colors": num_colors,
            "radius_bound": decomposition.radius_bound,
            "fallback_nodes": len(decomposition.fallback_nodes),
        },
    )
