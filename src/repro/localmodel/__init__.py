"""Simulators for the LOCAL and SLOCAL models of distributed computing.

The LOCAL model (Linial / Peleg): the network is the problem graph itself;
in ``t`` rounds a node learns exactly the topology, inputs and random bits of
its radius-``t`` ball and then performs arbitrary local computation.  The
SLOCAL model (Ghaffari, Kuhn, Maus 2017): nodes are processed sequentially in
an adversarial order; when processed, a node reads the states of nodes within
its locality radius, updates its own state and commits its output.

This package provides:

* :class:`~repro.localmodel.network.Network` -- per-node IDs, independent
  randomness, and *enforced* locality through ball views;
* :class:`~repro.localmodel.local.LocalNodeAlgorithm` and the driver
  :func:`~repro.localmodel.local.run_local_algorithm`;
* :class:`~repro.localmodel.slocal.SLocalAlgorithm` and the sequential driver;
* an (O(log n), O(log n)) network decomposition (Linial--Saks style) in
  :mod:`~repro.localmodel.decomposition`;
* the SLOCAL -> LOCAL transformation of Lemma 3.1 (chromatic scheduling over
  the decomposition of the power graph) in
  :mod:`~repro.localmodel.scheduler`.
"""

from repro.localmodel.network import LocalView, Network
from repro.localmodel.local import LocalNodeAlgorithm, LocalRunResult, run_local_algorithm
from repro.localmodel.slocal import SLocalAlgorithm, SLocalRunResult, run_slocal_algorithm
from repro.localmodel.decomposition import NetworkDecomposition, linial_saks_decomposition
from repro.localmodel.scheduler import ScheduledRunResult, simulate_slocal_as_local

__all__ = [
    "Network",
    "LocalView",
    "LocalNodeAlgorithm",
    "LocalRunResult",
    "run_local_algorithm",
    "SLocalAlgorithm",
    "SLocalRunResult",
    "run_slocal_algorithm",
    "NetworkDecomposition",
    "linial_saks_decomposition",
    "ScheduledRunResult",
    "simulate_slocal_as_local",
]
