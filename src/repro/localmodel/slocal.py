"""The SLOCAL model of Ghaffari, Kuhn and Maus.

An SLOCAL algorithm with locality ``r`` processes the nodes one by one in an
order ``pi`` chosen by an adversary.  When node ``v`` is processed the
algorithm reads the current states of all nodes within distance ``r`` of
``v``, performs unbounded computation, updates states and fixes ``v``'s
output.  (Following Lemma 4.4 of the paper, we allow the algorithm to write
the states of nodes within its radius and to make several passes -- both
conveniences that do not change the model's power and that the local-JVV
sampler uses.)

The sequential driver here is used directly by the reductions' proofs; the
transformation to the LOCAL model lives in
:mod:`repro.localmodel.scheduler`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.graphs.structure import ball
from repro.localmodel.network import Network

Node = Hashable


class StateAccess:
    """Controlled access to node states within a locality ball.

    The driver hands one of these to the algorithm when processing a node;
    reads and writes outside the allowed ball raise immediately, which is how
    the simulator enforces SLOCAL locality.
    """

    def __init__(self, states: Dict[Node, dict], allowed: set, center: Node) -> None:
        self._states = states
        self._allowed = allowed
        self._center = center

    @property
    def center(self) -> Node:
        """The node currently being processed."""
        return self._center

    @property
    def visible_nodes(self) -> set:
        """Nodes whose state may be read or written while processing the centre."""
        return set(self._allowed)

    def read(self, node: Node) -> dict:
        """Read (a reference to) the state dictionary of a visible node."""
        if node not in self._allowed:
            raise PermissionError(
                f"SLOCAL locality violation: {self._center!r} tried to read {node!r}"
            )
        return self._states[node]

    def write(self, node: Node, key: str, value: object) -> None:
        """Write one entry of a visible node's state."""
        if node not in self._allowed:
            raise PermissionError(
                f"SLOCAL locality violation: {self._center!r} tried to write {node!r}"
            )
        self._states[node][key] = value


@dataclass
class SLocalRunResult:
    """Outcome of a sequential SLOCAL run."""

    outputs: Dict[Node, object]
    failures: Dict[Node, bool]
    locality: int
    ordering: List[Node]
    states: Dict[Node, dict] = field(default_factory=dict)

    @property
    def success(self) -> bool:
        """True when no node reported a local failure."""
        return not any(self.failures.values())

    @property
    def failure_count(self) -> int:
        """Number of nodes that reported a local failure."""
        return sum(1 for failed in self.failures.values() if failed)


class SLocalAlgorithm(abc.ABC):
    """A (possibly multi-pass) SLOCAL algorithm."""

    #: Number of sequential passes over the node ordering (Lemma 4.4 allows
    #: any constant; the local-JVV sampler uses three).
    passes: int = 1

    @abc.abstractmethod
    def locality(self, network: Network) -> int:
        """The locality radius ``r`` used in every pass."""

    @abc.abstractmethod
    def process(
        self,
        pass_index: int,
        node: Node,
        access: StateAccess,
        rng: np.random.Generator,
        network: Network,
    ) -> None:
        """Process ``node`` during pass ``pass_index`` (0-based).

        The algorithm communicates results by writing into node states via
        ``access``; the driver collects each node's final output from the
        state keys ``"output"`` and ``"failed"`` after the last pass.
        """

    def initial_state(self, node: Node, network: Network) -> dict:
        """Initial local state of a node (input and private randomness live
        in the network; algorithms may override to add fields)."""
        return {}

    def name(self) -> str:
        """Human-readable name used in reports."""
        return type(self).__name__


def run_slocal_algorithm(
    algorithm: SLocalAlgorithm,
    network: Network,
    ordering: Optional[Sequence[Node]] = None,
) -> SLocalRunResult:
    """Run an SLOCAL algorithm sequentially on the given (adversarial) ordering.

    The default ordering is by node ID, but every reduction in the paper must
    work for *any* ordering, and the tests exercise several.
    """
    order = list(network.nodes) if ordering is None else list(ordering)
    if set(order) != set(network.nodes):
        raise ValueError("the ordering must be a permutation of the network's nodes")
    radius = algorithm.locality(network)
    if radius < 0:
        raise ValueError("algorithm declared a negative locality")
    states: Dict[Node, dict] = {
        node: algorithm.initial_state(node, network) for node in network.nodes
    }
    graph: nx.Graph = network.graph
    for pass_index in range(algorithm.passes):
        for node in order:
            allowed = ball(graph, node, radius)
            access = StateAccess(states, allowed, node)
            rng = network.rng(node, salt=pass_index)
            algorithm.process(pass_index, node, access, rng, network)
    outputs = {node: states[node].get("output") for node in network.nodes}
    failures = {node: bool(states[node].get("failed", False)) for node in network.nodes}
    return SLocalRunResult(
        outputs=outputs,
        failures=failures,
        locality=radius,
        ordering=order,
        states=states,
    )
