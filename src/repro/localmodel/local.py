"""The LOCAL model: round-bounded node algorithms and their driver.

A :class:`LocalNodeAlgorithm` declares how many rounds it needs and computes
each node's output from that node's :class:`~repro.localmodel.network.LocalView`
alone.  The driver :func:`run_local_algorithm` collects the views (one
"communication phase") and invokes the node computation everywhere,
recording outputs, the Las-Vegas failure indicators the paper requires
(Section 2, "all failures are locally certifiable"), and the number of
rounds charged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from repro.localmodel.network import LocalView, Network

Node = Hashable


@dataclass
class LocalRunResult:
    """Outcome of running a LOCAL algorithm on a network.

    Attributes
    ----------
    outputs:
        Per-node outputs (``None`` where the node failed without output).
    failures:
        Per-node Boolean failure indicators ``F_v``.
    rounds:
        The number of communication rounds charged to the run.
    """

    outputs: Dict[Node, object]
    failures: Dict[Node, bool]
    rounds: int
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def failed_nodes(self):
        """Nodes at which the algorithm failed locally."""
        return sorted((node for node, failed in self.failures.items() if failed), key=repr)

    @property
    def success(self) -> bool:
        """True when no node reported a local failure."""
        return not any(self.failures.values())

    @property
    def failure_count(self) -> int:
        """Number of nodes that reported a local failure."""
        return sum(1 for failed in self.failures.values() if failed)


class LocalNodeAlgorithm(abc.ABC):
    """A LOCAL algorithm: a per-node computation on a bounded-radius view."""

    @abc.abstractmethod
    def radius(self, network: Network) -> int:
        """The number of rounds (= view radius) the algorithm needs."""

    @abc.abstractmethod
    def compute(self, view: LocalView) -> Tuple[object, bool]:
        """Compute this node's output from its view.

        Returns ``(output, failed)``; ``failed`` is the locally certifiable
        failure indicator ``F_v`` of the paper's Las-Vegas convention.
        """

    def name(self) -> str:
        """Human-readable name used in reports."""
        return type(self).__name__


def run_local_algorithm(
    algorithm: LocalNodeAlgorithm,
    network: Network,
    nodes: Optional[list] = None,
    runtime=None,
) -> LocalRunResult:
    """Run a LOCAL algorithm at every node (or a subset) of the network.

    Each node's computation receives only its own radius-``t`` view, so the
    simulation cannot leak non-local information.  The round count charged is
    exactly the declared radius.

    ``runtime`` selects the execution backend (see :mod:`repro.runtime`).
    Per-node computations are independent by definition of the LOCAL model,
    so a process runtime fans them out across forked workers (the algorithm
    and network are inherited, so only each node's output crosses the pipe
    and must pickle); the default serial runtime is today's in-process loop.
    """
    radius = algorithm.radius(network)
    if radius < 0:
        raise ValueError("algorithm declared a negative radius")
    targets = list(network.nodes) if nodes is None else list(nodes)
    outputs: Dict[Node, object] = {}
    failures: Dict[Node, bool] = {}
    if runtime is not None:
        from repro.runtime import resolve_runtime

        resolved = resolve_runtime(runtime)
        if resolved.is_process and len(targets) > 1:
            from repro.runtime.shards import process_map

            def compute_at(node):
                output, failed = algorithm.compute(network.view(node, radius))
                return output, bool(failed)

            results = process_map(compute_at, targets, n_workers=resolved.n_workers)
            for node, (output, failed) in zip(targets, results):
                outputs[node] = output
                failures[node] = failed
            return LocalRunResult(outputs=outputs, failures=failures, rounds=radius)
    for node in targets:
        view = network.view(node, radius)
        output, failed = algorithm.compute(view)
        outputs[node] = output
        failures[node] = bool(failed)
    return LocalRunResult(outputs=outputs, failures=failures, rounds=radius)
