"""Gibbs-distribution (weighted CSP / factor graph) substrate.

This package implements Definition 2.3 -- 2.5 of the paper:

* :class:`~repro.gibbs.factors.Factor` -- a constraint ``(f, S)`` with a
  non-negative weight function on the scope ``S``;
* :class:`~repro.gibbs.distribution.GibbsDistribution` -- the joint
  distribution ``mu(sigma) = prod_f f(sigma_S) / Z`` over ``Sigma^V``,
  with feasibility, local feasibility, and local admissibility checks;
* :class:`~repro.gibbs.pinning.Pinning` -- a partial configuration ``tau``
  on a subset ``Lambda`` (the self-reducibility handle of Definition 2.2);
* :class:`~repro.gibbs.instance.SamplingInstance` -- an instance
  ``(G, x, tau)`` whose target distribution is ``mu^tau``;
* an exact inference engine (variable elimination) used as ground truth by
  the tests and by the brute-force LOCAL inference algorithm.
"""

from repro.gibbs.factors import Factor
from repro.gibbs.pinning import Pinning
from repro.gibbs.distribution import GibbsDistribution
from repro.gibbs.elimination import (
    eliminate_partition_function,
    eliminate_marginal,
)
from repro.gibbs.instance import SamplingInstance

__all__ = [
    "Factor",
    "Pinning",
    "GibbsDistribution",
    "SamplingInstance",
    "eliminate_partition_function",
    "eliminate_marginal",
]
