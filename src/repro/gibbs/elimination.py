"""Exact inference by variable elimination.

The tests and the brute-force LOCAL inference algorithm need exact partition
functions and exact marginals as ground truth.  Plain enumeration over
``Sigma^V`` is exponential in ``n``; variable elimination is exponential only
in the induced width of the elimination order, which is tiny for the paths,
cycles, trees and narrow grids used throughout the experiments.

The engine works on the factor representation of
:class:`~repro.gibbs.distribution.GibbsDistribution` but is standalone: it
takes a list of (scope, table) pairs so it can also be used on sub-instances
restricted to a ball (as the SSM-based inference algorithm of Theorem 5.1
does).

Two interchangeable backends implement the elimination (see
:mod:`repro.engine` for the selection convention):

* ``"compiled"`` (default) -- the array-backed engine of
  :mod:`repro.engine`: integer-indexed variables, dense NumPy factor
  arrays, tensor-contraction joins;
* ``"dict"`` -- the reference dict-of-tuples implementation in this module,
  kept as independently-written ground truth for the equivalence suite.

Hot paths should not call the module-level functions repeatedly on the same
sub-instance: :class:`~repro.gibbs.distribution.GibbsDistribution` caches its
compiled form (and a ball-compilation cache) and should be queried through
:meth:`~repro.gibbs.distribution.GibbsDistribution.marginal`,
:meth:`~repro.gibbs.distribution.GibbsDistribution.partition_function` or
:meth:`~repro.gibbs.distribution.GibbsDistribution.ball_marginal` instead.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.engine import resolve_engine
from repro.engine.compiled import CompiledGibbs

Node = Hashable
Value = Hashable


class _Table:
    """A dense-by-dictionary potential over an ordered tuple of variables."""

    __slots__ = ("variables", "entries")

    def __init__(self, variables: Tuple[Node, ...], entries: Dict[Tuple[Value, ...], float]):
        self.variables = variables
        self.entries = entries

    @classmethod
    def constant(cls, weight: float) -> "_Table":
        return cls((), {(): weight})

    def restrict(self, pinning: Mapping[Node, Value]) -> "_Table":
        """Apply a pinning: drop pinned variables, keep consistent rows."""
        if not any(v in pinning for v in self.variables):
            return self
        keep_positions = [i for i, v in enumerate(self.variables) if v not in pinning]
        new_vars = tuple(self.variables[i] for i in keep_positions)
        new_entries: Dict[Tuple[Value, ...], float] = {}
        for key, weight in self.entries.items():
            consistent = all(
                key[i] == pinning[v]
                for i, v in enumerate(self.variables)
                if v in pinning
            )
            if not consistent:
                continue
            new_key = tuple(key[i] for i in keep_positions)
            # Distinct consistent rows keep distinct keys after dropping the
            # pinned positions, so plain assignment is safe here.
            new_entries[new_key] = weight
        return _Table(new_vars, new_entries)


def _multiply(tables: Sequence[_Table]) -> _Table:
    """Product of potentials, joining on shared variables."""
    variables: List[Node] = []
    for table in tables:
        for var in table.variables:
            if var not in variables:
                variables.append(var)
    var_tuple = tuple(variables)
    index_maps = [
        [var_tuple.index(v) for v in table.variables] for table in tables
    ]
    result = _Table(var_tuple, {})
    # Build by extending joint keys table by table; start with the first.
    partial: Dict[Tuple[Value, ...], float] = {(): 1.0}
    known_positions: List[int] = []
    for table, positions in zip(tables, index_maps):
        new_positions = [p for p in positions if p not in known_positions]
        next_partial: Dict[Tuple[Value, ...], float] = {}
        for key, weight in partial.items():
            known = dict(zip(known_positions, key))
            for t_key, t_weight in table.entries.items():
                consistent = True
                assignment = dict(known)
                for pos, value in zip(positions, t_key):
                    if pos in assignment:
                        if assignment[pos] != value:
                            consistent = False
                            break
                    else:
                        assignment[pos] = value
                if not consistent:
                    continue
                new_key = tuple(assignment[p] for p in known_positions + new_positions)
                combined = weight * t_weight
                if combined == 0.0:
                    continue
                # The join key determines every factor row that produced it,
                # so there are no collisions to accumulate.
                next_partial[new_key] = combined
        known_positions = known_positions + new_positions
        partial = next_partial
    # Reorder keys to var_tuple order.
    order = [known_positions.index(i) for i in range(len(var_tuple))] if var_tuple else []
    for key, weight in partial.items():
        full_key = tuple(key[order[i]] for i in range(len(var_tuple)))
        result.entries[full_key] = result.entries.get(full_key, 0.0) + weight
    if not var_tuple:
        total = sum(partial.values()) if partial else 0.0
        result.entries = {(): total}
    return result


def _sum_out(table: _Table, variable: Node) -> _Table:
    """Marginalise ``variable`` out of ``table``."""
    if variable not in table.variables:
        return table
    position = table.variables.index(variable)
    new_vars = table.variables[:position] + table.variables[position + 1:]
    new_entries: Dict[Tuple[Value, ...], float] = {}
    for key, weight in table.entries.items():
        new_key = key[:position] + key[position + 1:]
        new_entries[new_key] = new_entries.get(new_key, 0.0) + weight
    return _Table(new_vars, new_entries)


def _build_tables(
    factors: Sequence[Tuple[Sequence[Node], Mapping[Tuple[Value, ...], float]]],
    pinning: Mapping[Node, Value],
) -> List[_Table]:
    tables = []
    for scope, entries in factors:
        table = _Table(tuple(scope), dict(entries))
        tables.append(table.restrict(pinning))
    return tables


def _free_variables(tables: Sequence[_Table], all_nodes: Sequence[Node], pinning) -> List[Node]:
    free = [node for node in all_nodes if node not in pinning]
    return free


def _elimination_order(tables: Sequence[_Table], free: Sequence[Node]) -> List[Node]:
    """Min-degree elimination order on the interaction graph of the tables."""
    neighbors: Dict[Node, set] = {node: set() for node in free}
    for table in tables:
        in_free = [v for v in table.variables if v in neighbors]
        for u in in_free:
            neighbors[u].update(w for w in in_free if w != u)
    order: List[Node] = []
    remaining = set(free)
    while remaining:
        node = min(remaining, key=lambda v: (len(neighbors[v] & remaining), repr(v)))
        order.append(node)
        # Connect node's remaining neighbours (simulate fill-in).
        live = neighbors[node] & remaining
        for u in live:
            neighbors[u].update(w for w in live if w != u)
        remaining.discard(node)
    return order


def _run_elimination(
    factors,
    all_nodes: Sequence[Node],
    alphabet: Sequence[Value],
    pinning: Mapping[Node, Value],
    keep: Sequence[Node] = (),
) -> _Table:
    """Eliminate all free variables except ``keep``; return the final table."""
    tables = _build_tables(factors, pinning)
    free = _free_variables(tables, all_nodes, pinning)
    covered = set()
    for table in tables:
        covered.update(table.variables)
    # Variables that appear in no factor contribute a factor |alphabet| each
    # (or 1 if they are kept, handled via an explicit uniform table).
    keep_set = set(keep)
    loose = [node for node in free if node not in covered]
    for node in loose:
        tables.append(_Table((node,), {(value,): 1.0 for value in alphabet}))
    to_eliminate = [node for node in _elimination_order(tables, free) if node not in keep_set]
    for variable in to_eliminate:
        involved = [t for t in tables if variable in t.variables]
        untouched = [t for t in tables if variable not in t.variables]
        if involved:
            product = _multiply(involved)
            tables = untouched + [_sum_out(product, variable)]
        else:  # pragma: no cover - loose variables already have tables
            tables = untouched
    final = _multiply(tables) if tables else _Table.constant(1.0)
    return final


def eliminate_partition_function(
    factors,
    all_nodes: Sequence[Node],
    alphabet: Sequence[Value],
    pinning: Mapping[Node, Value],
    engine: Optional[str] = None,
) -> float:
    """Exact conditional partition function ``Z(tau)`` by variable elimination.

    ``factors`` is a sequence of ``(scope, table)`` pairs where ``table`` maps
    value tuples (in scope order) to non-negative weights.  ``Z(tau)`` sums
    the product of factor weights over all configurations consistent with the
    pinning ``tau``.  ``engine`` selects the backend (``"compiled"`` /
    ``"dict"``, default compiled -- see :mod:`repro.engine`).
    """
    if resolve_engine(engine) == "compiled":
        compiled = CompiledGibbs.from_tables(all_nodes, alphabet, factors)
        return compiled.partition_function(pinning)
    final = _run_elimination(factors, all_nodes, alphabet, pinning, keep=())
    return sum(final.entries.values())


def eliminate_marginal(
    factors,
    all_nodes: Sequence[Node],
    alphabet: Sequence[Value],
    pinning: Mapping[Node, Value],
    node: Node,
    engine: Optional[str] = None,
) -> Dict[Value, float]:
    """Exact conditional marginal ``mu^tau_v`` by variable elimination.

    Returns a dict over the alphabet summing to 1.  Raises ``ValueError`` if
    the pinning is infeasible (conditional partition function is zero) or if
    ``node`` is pinned (the marginal would be a point mass -- callers should
    handle that case directly, but we return the point mass for convenience).
    ``engine`` selects the backend (``"compiled"`` / ``"dict"``).
    """
    if node in pinning:
        return {value: (1.0 if value == pinning[node] else 0.0) for value in alphabet}
    if resolve_engine(engine) == "compiled":
        compiled = CompiledGibbs.from_tables(all_nodes, alphabet, factors)
        return compiled.marginal(node, pinning)
    final = _run_elimination(factors, all_nodes, alphabet, pinning, keep=(node,))
    weights: Dict[Value, float] = {value: 0.0 for value in alphabet}
    if final.variables == ():
        raise ValueError(f"node {node!r} is not part of the instance")
    position = final.variables.index(node)
    for key, weight in final.entries.items():
        weights[key[position]] += weight
    total = sum(weights.values())
    if total <= 0.0:
        raise ValueError("infeasible pinning: conditional partition function is zero")
    return {value: weight / total for value, weight in weights.items()}


def factor_tables_from(factor_list, alphabet: Sequence[Value]):
    """Materialise :class:`~repro.gibbs.factors.Factor` objects as weight tables.

    Helper shared by :class:`~repro.gibbs.distribution.GibbsDistribution` and
    the ball-restricted inference code.
    """
    tables = []
    for factor in factor_list:
        entries: Dict[Tuple[Value, ...], float] = {}
        for values in itertools.product(alphabet, repeat=len(factor.scope)):
            weight = factor.evaluate_values(values)
            if weight != 0.0:
                entries[values] = weight
        tables.append((factor.scope, entries))
    return tables
