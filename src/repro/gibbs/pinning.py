"""Partial configurations (pinnings).

The paper's instances are tuples ``(G, x, tau)`` where ``tau`` is a feasible
configuration on an arbitrary subset ``Lambda`` of the nodes.  Pinnings are
what makes the problems *self-reducible* (Remark 2.2): conditioning on a
pinning yields another valid instance.  :class:`Pinning` is an immutable
mapping from pinned nodes to their values with the set-algebra operations
the reductions need.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Mapping, Optional

Node = Hashable
Value = Hashable


class Pinning(Mapping[Node, Value]):
    """An immutable partial configuration ``tau`` on a subset of nodes."""

    __slots__ = ("_assignment",)

    def __init__(self, assignment: Optional[Mapping[Node, Value]] = None) -> None:
        self._assignment: Dict[Node, Value] = dict(assignment or {})

    @classmethod
    def empty(cls) -> "Pinning":
        """The empty pinning (no node is fixed)."""
        return cls({})

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, node: Node) -> Value:
        return self._assignment[node]

    def __iter__(self) -> Iterator[Node]:
        return iter(self._assignment)

    def __len__(self) -> int:
        return len(self._assignment)

    def __contains__(self, node: object) -> bool:
        return node in self._assignment

    # -- pinning algebra ---------------------------------------------------
    @property
    def domain(self) -> frozenset:
        """The pinned subset ``Lambda``."""
        return frozenset(self._assignment)

    def extend(self, node: Node, value: Value) -> "Pinning":
        """A new pinning that additionally fixes ``node`` to ``value``.

        Re-pinning a node to a *different* value is an error; re-pinning to
        the same value is a no-op (this matches how the sequential sampler
        and the JVV passes extend configurations).
        """
        if node in self._assignment and self._assignment[node] != value:
            raise ValueError(
                f"node {node!r} is already pinned to {self._assignment[node]!r}, "
                f"cannot re-pin to {value!r}"
            )
        merged = dict(self._assignment)
        merged[node] = value
        return Pinning(merged)

    def union(self, other: Mapping[Node, Value]) -> "Pinning":
        """Union of two pinnings; overlapping nodes must agree."""
        merged = dict(self._assignment)
        for node, value in other.items():
            if node in merged and merged[node] != value:
                raise ValueError(f"pinnings disagree on node {node!r}")
            merged[node] = value
        return Pinning(merged)

    def restrict(self, nodes) -> "Pinning":
        """The pinning restricted to the given node set."""
        node_set = set(nodes)
        return Pinning({n: v for n, v in self._assignment.items() if n in node_set})

    def drop(self, nodes) -> "Pinning":
        """The pinning with the given nodes removed."""
        node_set = set(nodes)
        return Pinning({n: v for n, v in self._assignment.items() if n not in node_set})

    def agrees_with(self, other: Mapping[Node, Value]) -> bool:
        """True when the two pinnings assign equal values to every common node."""
        for node, value in self._assignment.items():
            if node in other and other[node] != value:
                return False
        return True

    def difference_domain(self, other: Mapping[Node, Value]) -> frozenset:
        """Nodes pinned by both on which the two pinnings disagree.

        This is the set ``D`` in the strong-spatial-mixing definition
        (Definition 5.1): the decay is measured in the distance to the
        disagreement set.
        """
        disagree = set()
        for node, value in self._assignment.items():
            if node in other and other[node] != value:
                disagree.add(node)
        return frozenset(disagree)

    def as_dict(self) -> Dict[Node, Value]:
        """A plain (mutable) dict copy of the pinning."""
        return dict(self._assignment)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Pinning):
            return self._assignment == other._assignment
        if isinstance(other, Mapping):
            return self._assignment == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._assignment.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pinning({self._assignment!r})"
