"""The Gibbs distribution of a weighted constraint satisfaction problem.

:class:`GibbsDistribution` implements Definition 2.3 of the paper: a graph
``G = (V, E)``, an alphabet ``Sigma``, and a collection of factors; the
distribution assigns each configuration ``sigma in Sigma^V`` the probability
``w(sigma) / Z`` where ``w`` is the product of the factor weights and ``Z``
the partition function.

The class exposes exactly the operations the paper's algorithms rely on:

* weights, partition functions and exact marginals (ground truth, via
  variable elimination);
* feasibility and *local* feasibility of partial configurations, and the
  locally-admissible check of Definition 2.5;
* the locality of the factor collection (Definition 2.4);
* ball-restricted weights ``w_B(sigma)`` used by the boosting lemma, the
  JVV sampler and the SSM-based inference algorithm.

Evaluation backends
-------------------

All exact queries accept an ``engine`` keyword (default ``"compiled"``):
``"compiled"`` routes through the array-backed engine of
:mod:`repro.engine` (integer-indexed nodes, dense factor arrays, tensor
contractions, memoised repeat queries), ``"dict"`` selects the reference
dict-of-tuples eliminator of :mod:`repro.gibbs.elimination`.  Each
distribution lazily caches one compiled form of the full instance plus a
:class:`~repro.engine.cache.BallCache` of compiled ball restrictions shared
by every ball-local algorithm (see :meth:`ball_marginal`).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.engine import resolve_engine
from repro.engine.cache import BallCache
from repro.engine.compiled import CompiledGibbs
from repro.gibbs.elimination import (
    eliminate_marginal,
    eliminate_partition_function,
    factor_tables_from,
)
from repro.gibbs.factors import Factor
from repro.gibbs.pinning import Pinning

Node = Hashable
Value = Hashable
Configuration = Mapping[Node, Value]


class GibbsDistribution:
    """A Gibbs distribution specified by ``(G, Sigma, F)``.

    Parameters
    ----------
    graph:
        The underlying simple undirected graph ``G = (V, E)``.
    alphabet:
        The alphabet ``Sigma`` shared by all nodes.  Per-node restrictions
        (e.g. color lists) are expressed through unary factors.
    factors:
        The constraint collection ``F``; every factor scope must be a subset
        of the graph's nodes.
    name:
        Optional label used by reports and benchmarks.
    """

    def __init__(
        self,
        graph: nx.Graph,
        alphabet: Sequence[Value],
        factors: Sequence[Factor],
        name: str = "gibbs",
        metadata: Optional[Mapping[str, object]] = None,
    ) -> None:
        if len(alphabet) == 0:
            raise ValueError("the alphabet must be non-empty")
        if len(set(alphabet)) != len(alphabet):
            raise ValueError("the alphabet contains duplicate symbols")
        node_set = set(graph.nodes())
        for factor in factors:
            missing = [node for node in factor.scope if node not in node_set]
            if missing:
                raise ValueError(
                    f"factor {factor.name!r} references nodes {missing} outside the graph"
                )
        self.graph = graph
        self.alphabet: Tuple[Value, ...] = tuple(alphabet)
        self.factors: Tuple[Factor, ...] = tuple(factors)
        self.name = name
        #: Model-level annotations set by the constructors in ``repro.models``
        #: (e.g. ``fugacity``, ``locally_admissible``, ``uniqueness``).
        self.metadata: Dict[str, object] = dict(metadata or {})
        self._factor_tables = None
        self._nodes: Optional[Tuple[Node, ...]] = None
        self._compiled: Optional[CompiledGibbs] = None
        self._ball_cache: Optional[BallCache] = None
        self._locality: Optional[int] = None
        self._factors_by_node: Dict[Node, List[Factor]] = {node: [] for node in graph.nodes()}
        for factor in self.factors:
            for node in factor.scope:
                self._factors_by_node[node].append(factor)

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """The nodes of the underlying graph, in deterministic order.

        The ordering is computed once and cached (the sort used to sit inside
        every sampler loop); a fresh list is returned so callers may mutate
        it freely.
        """
        if self._nodes is None:
            try:
                self._nodes = tuple(sorted(self.graph.nodes()))
            except TypeError:
                self._nodes = tuple(sorted(self.graph.nodes(), key=repr))
        return list(self._nodes)

    @property
    def size(self) -> int:
        """Number of nodes ``n``."""
        return self.graph.number_of_nodes()

    @property
    def alphabet_size(self) -> int:
        """Alphabet size ``q``."""
        return len(self.alphabet)

    def factors_at(self, node: Node) -> List[Factor]:
        """All factors whose scope contains ``node``."""
        return list(self._factors_by_node.get(node, []))

    def factors_within(self, nodes: Iterable[Node]) -> List[Factor]:
        """All factors whose scope is entirely inside the node set."""
        node_set = nodes if isinstance(nodes, (set, frozenset)) else set(nodes)
        return [factor for factor in self.factors if factor.scope_set <= node_set]

    def locality(self) -> int:
        """Maximum scope diameter over all factors (Definition 2.4).

        Local Gibbs distributions have ``locality() = O(1)``; every model in
        this repository has locality 0 or 1.  The value is computed once and
        cached -- it involves one BFS per multi-node scope, and ball-local
        algorithms query it on every marginal call.
        """
        if self._locality is None:
            if not self.factors:
                self._locality = 0
            else:
                self._locality = max(
                    factor.scope_diameter(self.graph) for factor in self.factors
                )
        return self._locality

    def max_degree(self) -> int:
        """Maximum degree of the underlying graph."""
        degrees = [degree for _, degree in self.graph.degree()]
        return max(degrees, default=0)

    # ------------------------------------------------------------------
    # weights and partition functions
    # ------------------------------------------------------------------
    def weight(
        self, configuration: Configuration, engine: Optional[str] = None
    ) -> float:
        """Unnormalised weight ``w(sigma)`` of a full configuration."""
        self._require_full(configuration)
        if resolve_engine(engine) == "compiled":
            compiled = self.compiled_engine()
            try:
                # Fast path: every value is an alphabet symbol, so the
                # compiled factor arrays apply (one gather per factor, no
                # dict building).  Only out-of-alphabet values fall back.
                return compiled.configuration_weight(configuration)
            except KeyError:
                pass
        weight = 1.0
        for factor in self.factors:
            weight *= factor.evaluate(configuration)
            if weight == 0.0:
                return 0.0
        return weight

    def log_weight(
        self, configuration: Configuration, engine: Optional[str] = None
    ) -> float:
        """Natural logarithm of ``w(sigma)`` (``-inf`` for weight zero)."""
        weight = self.weight(configuration, engine=engine)
        return math.log(weight) if weight > 0.0 else float("-inf")

    def weight_within(self, nodes: Iterable[Node], configuration: Configuration) -> float:
        """Ball-restricted weight ``w_B(sigma) = prod_{scope(f) subseteq B} f(sigma)``.

        The configuration only needs to be defined on the node set; this is
        the quantity the boosting lemma and the SSM inference algorithm
        compute inside a ball ``B``.
        """
        node_set = set(nodes)
        weight = 1.0
        for factor in self.factors_within(node_set):
            weight *= factor.evaluate(configuration)
            if weight == 0.0:
                return 0.0
        return weight

    def partition_function(
        self,
        pinning: Optional[Mapping[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> float:
        """Exact conditional partition function ``Z(tau)``."""
        pinning = self._check_pinning(pinning)
        if resolve_engine(engine) == "compiled":
            return self.compiled_engine().partition_function(pinning)
        return eliminate_partition_function(
            self._tables(), self.nodes, self.alphabet, pinning, engine="dict"
        )

    # ------------------------------------------------------------------
    # probabilities and marginals (exact, used as ground truth)
    # ------------------------------------------------------------------
    def probability(
        self,
        configuration: Configuration,
        pinning: Optional[Mapping[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> float:
        """Conditional probability ``mu^tau(sigma)`` of a full configuration."""
        pinning = self._check_pinning(pinning)
        self._require_full(configuration)
        z_value = self.partition_function(pinning, engine=engine)
        if z_value <= 0.0:
            raise ValueError("infeasible pinning: conditional partition function is zero")
        for node, value in pinning.items():
            if configuration[node] != value:
                return 0.0
        return self.weight(configuration, engine=engine) / z_value

    def marginal(
        self,
        node: Node,
        pinning: Optional[Mapping[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> Dict[Value, float]:
        """Exact conditional marginal ``mu^tau_v`` at a single node."""
        pinning = self._check_pinning(pinning)
        if resolve_engine(engine) == "compiled":
            return self.compiled_engine().marginal(node, pinning)
        return eliminate_marginal(
            self._tables(), self.nodes, self.alphabet, pinning, node, engine="dict"
        )

    def joint_marginal(
        self,
        nodes: Sequence[Node],
        pinning: Optional[Mapping[Node, Value]] = None,
        engine: Optional[str] = None,
    ) -> Dict[Tuple[Value, ...], float]:
        """Exact conditional joint marginal over a small tuple of nodes.

        The compiled backend (default) builds *one* contraction schedule with
        multiple kept axes and reads every joint weight out of a single
        execution; the dict backend retains the chain-rule loop
        ``Z(tau ∪ sigma_R) / Z(tau)`` over value tuples as the independent
        reference.  Either way the result is exponential in ``len(nodes)``,
        so this is intended for small node tuples (pair correlation
        measurements, conditional-independence tests).
        """
        pinning_obj = Pinning(self._check_pinning(pinning))
        if resolve_engine(engine) == "compiled":
            return self._joint_marginal_compiled(nodes, pinning_obj)
        base = self.partition_function(pinning_obj, engine=engine)
        if base <= 0.0:
            raise ValueError("infeasible pinning: conditional partition function is zero")
        result: Dict[Tuple[Value, ...], float] = {}
        free_nodes = [node for node in nodes if node not in pinning_obj]
        fixed_positions = {i: pinning_obj[node] for i, node in enumerate(nodes) if node in pinning_obj}
        for values in itertools.product(self.alphabet, repeat=len(free_nodes)):
            assignment = dict(zip(free_nodes, values))
            extended = pinning_obj.union(assignment)
            weight = self.partition_function(extended, engine=engine)
            key_values = []
            free_iter = iter(values)
            for i, node in enumerate(nodes):
                if i in fixed_positions:
                    key_values.append(fixed_positions[i])
                else:
                    key_values.append(next(free_iter))
            result[tuple(key_values)] = weight / base
        return result

    def _joint_marginal_compiled(
        self, nodes: Sequence[Node], pinning_obj: Pinning
    ) -> Dict[Tuple[Value, ...], float]:
        """Joint marginal via one multi-kept-axis contraction schedule."""
        compiled = self.compiled_engine()
        base = compiled.partition_function(pinning_obj)
        if base <= 0.0:
            raise ValueError("infeasible pinning: conditional partition function is zero")
        free_query, array = compiled.joint_marginal_weights(nodes, pinning_obj)
        result: Dict[Tuple[Value, ...], float] = {}
        for values in itertools.product(self.alphabet, repeat=len(free_query)):
            assignment = dict(zip(free_query, values))
            codes = tuple(compiled.symbol_index[value] for value in values)
            weight = float(array[codes]) if free_query else float(array)
            key = tuple(
                pinning_obj[node] if node in pinning_obj else assignment[node]
                for node in nodes
            )
            result[key] = weight / base
        return result

    def support(
        self, pinning: Optional[Mapping[Node, Value]] = None
    ) -> Iterator[Dict[Node, Value]]:
        """Iterate over all feasible full configurations consistent with ``tau``.

        Brute force over ``Sigma^{V \\ Lambda}``; only for small instances.
        """
        pinning = self._check_pinning(pinning)
        free_nodes = [node for node in self.nodes if node not in pinning]
        for values in itertools.product(self.alphabet, repeat=len(free_nodes)):
            configuration = dict(pinning)
            configuration.update(zip(free_nodes, values))
            if self.weight(configuration) > 0.0:
                yield configuration

    # ------------------------------------------------------------------
    # feasibility (Definition 2.5)
    # ------------------------------------------------------------------
    def is_feasible(
        self, pinning: Mapping[Node, Value], engine: Optional[str] = None
    ) -> bool:
        """Whether the partial configuration has a feasible extension."""
        pinning = self._check_pinning(pinning)
        return self.partition_function(pinning, engine=engine) > 0.0

    def is_locally_feasible(self, pinning: Mapping[Node, Value]) -> bool:
        """Whether the partial configuration violates no constraint it covers.

        A configuration ``sigma`` on ``Lambda`` is locally feasible when the
        product of all factors with scope inside ``Lambda`` is positive.
        """
        pinning = self._check_pinning(pinning)
        domain = set(pinning)
        for factor in self.factors_within(domain):
            if factor.evaluate(pinning) == 0.0:
                return False
        return True

    def is_locally_admissible(self, max_subset_size: Optional[int] = None) -> bool:
        """Exhaustively check local admissibility (Definition 2.5).

        The distribution is locally admissible when every locally feasible
        partial configuration is feasible.  The check enumerates all subsets
        up to ``max_subset_size`` (default: all of them), so it is only
        practical on small instances; model constructors instead declare
        admissibility analytically via their ``locally_admissible`` flag.
        """
        nodes = self.nodes
        limit = len(nodes) if max_subset_size is None else min(max_subset_size, len(nodes))
        for size in range(1, limit + 1):
            for subset in itertools.combinations(nodes, size):
                for values in itertools.product(self.alphabet, repeat=size):
                    partial = dict(zip(subset, values))
                    if self.is_locally_feasible(partial) and not self.is_feasible(partial):
                        return False
        return True

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def restricted_tables(self, nodes: Iterable[Node]):
        """(scope, table) pairs for all factors fully inside the node set.

        Used by the LOCAL algorithms to run exact inference *inside a ball*
        without ever touching information outside it.
        """
        return factor_tables_from(self.factors_within(nodes), self.alphabet)

    def compiled_engine(self) -> CompiledGibbs:
        """The array-backed compiled form of the full instance (lazy, cached)."""
        if self._compiled is None:
            self._compiled = CompiledGibbs.from_factors(
                self.nodes, self.alphabet, self.factors
            )
        return self._compiled

    def update_factors(self, factors: Sequence[Factor]) -> None:
        """Swap in reweighted factors, invalidating value-dependent caches.

        The learning subsystem re-evaluates the model at a new parameter
        vector every gradient step; the graph, alphabet and factor *scopes*
        are fixed, only the weights change.  This method therefore requires
        the replacement factors to match the existing ones scope-for-scope
        (in order), and then invalidates exactly the caches whose contents
        depend on weight values: the dict factor tables, the ball cache
        (compiled balls and their marginal memos embed the old arrays), and
        the compiled full instance -- rebuilt cheaply via
        :meth:`~repro.engine.compiled.CompiledGibbs.reweighted`, which keeps
        the structural elimination-order and schedule caches warm.
        """
        if len(factors) != len(self.factors):
            raise ValueError(
                f"expected {len(self.factors)} factors, got {len(factors)}"
            )
        for old, new in zip(self.factors, factors):
            if tuple(new.scope) != tuple(old.scope):
                raise ValueError(
                    f"replacement factor {new.name!r} has scope {tuple(new.scope)}, "
                    f"expected {tuple(old.scope)} (scopes must match in order)"
                )
        self.factors = tuple(factors)
        self._factor_tables = None
        self._factors_by_node = {node: [] for node in self.graph.nodes()}
        for factor in self.factors:
            for node in factor.scope:
                self._factors_by_node[node].append(factor)
        if self._ball_cache is not None:
            self._ball_cache.clear()
        if self._compiled is not None:
            self._compiled = self._compiled.reweighted(
                [factor.dense_table(self.alphabet) for factor in self.factors]
            )

    def ball_cache(self) -> BallCache:
        """The memoised ball-compilation cache shared by ball-local algorithms."""
        if self._ball_cache is None:
            self._ball_cache = BallCache(self)
        return self._ball_cache

    def ball_marginal(
        self,
        center: Node,
        radius: int,
        pinning: Mapping[Node, Value],
        node: Node,
        engine: Optional[str] = None,
    ) -> Dict[Value, float]:
        """Exact marginal of ``node`` in the sub-instance restricted to
        ``B_radius(center)`` (only factors fully inside the ball, pinning
        restricted to the ball).

        This is the primitive behind Theorem 5.1's inference algorithm and
        the boosting lemma.  The compiled backend memoises the ball
        compilation by ``(center, radius)`` and the result by the pinning
        signature, so repeated queries across nodes and rounds are cache
        hits; the dict backend recomputes from scratch (reference behaviour).
        """
        if resolve_engine(engine) == "compiled":
            return self.ball_cache().ball_marginal(center, radius, pinning, node)
        from repro.graphs.structure import ball as _ball

        nodes = _ball(self.graph, center, radius)
        restricted = {n: v for n, v in pinning.items() if n in nodes}
        tables = self.restricted_tables(nodes)
        ordered = sorted(nodes, key=repr)
        # eliminate_marginal returns the point mass itself when ``node`` is
        # pinned, so no special case is needed here.
        return eliminate_marginal(
            tables, ordered, self.alphabet, restricted, node, engine="dict"
        )

    def _tables(self):
        if self._factor_tables is None:
            self._factor_tables = factor_tables_from(self.factors, self.alphabet)
        return self._factor_tables

    def _check_pinning(self, pinning: Optional[Mapping[Node, Value]]) -> Dict[Node, Value]:
        if pinning is None:
            return {}
        node_set = set(self.graph.nodes())
        alphabet_set = set(self.alphabet)
        checked = {}
        for node, value in pinning.items():
            if node not in node_set:
                raise ValueError(f"pinned node {node!r} is not in the graph")
            if value not in alphabet_set:
                raise ValueError(f"pinned value {value!r} is not in the alphabet")
            checked[node] = value
        return checked

    def _require_full(self, configuration: Configuration) -> None:
        for node in self.graph.nodes():
            if node not in configuration:
                raise ValueError(f"configuration is missing node {node!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GibbsDistribution(name={self.name!r}, n={self.size}, "
            f"q={self.alphabet_size}, factors={len(self.factors)})"
        )
