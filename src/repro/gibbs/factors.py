"""Constraints (factors) of a Gibbs distribution.

A constraint ``(f, S)`` consists of a non-negative function ``f`` on the
configurations of its scope ``S`` (Definition 2.3).  A constraint is *soft*
when ``f`` is strictly positive and *hard* otherwise.  The locality of a
Gibbs distribution (Definition 2.4) is the maximum diameter of a scope in
the underlying graph, which for every model in this repository is a small
constant (1 for edge factors, 0 for vertex factors).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Sequence, Tuple

import networkx as nx

Node = Hashable
Value = Hashable
Assignment = Mapping[Node, Value]


class Factor:
    """A weighted constraint ``(f, S)`` of a Gibbs distribution.

    Parameters
    ----------
    scope:
        The ordered tuple of nodes the constraint reads.  Order only matters
        for how ``function`` receives its arguments.
    function:
        A callable taking one value per scope node (in scope order) and
        returning a non-negative weight.
    name:
        Optional human-readable label used in ``repr`` and error messages.
    """

    __slots__ = ("scope", "scope_set", "function", "name", "_table_cache", "_dense_cache")

    def __init__(
        self,
        scope: Sequence[Node],
        function: Callable[..., float],
        name: str = "factor",
    ) -> None:
        if len(scope) == 0:
            raise ValueError("a factor needs a non-empty scope")
        if len(set(scope)) != len(scope):
            raise ValueError("factor scope contains duplicate nodes")
        self.scope: Tuple[Node, ...] = tuple(scope)
        #: Frozen scope set, precomputed because containment tests against it
        #: sit inside every sampler and feasibility loop.
        self.scope_set = frozenset(self.scope)
        self.function = function
        self.name = name
        self._table_cache: Dict[Tuple[Value, ...], float] = {}
        self._dense_cache: Dict[Tuple[Value, ...], object] = {}

    @classmethod
    def from_table(
        cls,
        scope: Sequence[Node],
        table: Mapping[Tuple[Value, ...], float],
        default: float = 0.0,
        name: str = "table-factor",
    ) -> "Factor":
        """Build a factor from an explicit weight table.

        Entries absent from ``table`` get weight ``default``.
        """
        frozen = dict(table)

        def lookup(*values: Value) -> float:
            return frozen.get(tuple(values), default)

        return cls(scope, lookup, name=name)

    def evaluate(self, assignment: Assignment) -> float:
        """Weight of ``assignment`` restricted to this factor's scope.

        ``assignment`` must define a value for every scope node.
        """
        key = tuple(assignment[node] for node in self.scope)
        cached = self._table_cache.get(key)
        if cached is None:
            cached = float(self.function(*key))
            if cached < 0:
                raise ValueError(
                    f"factor {self.name!r} returned a negative weight {cached} on {key}"
                )
            self._table_cache[key] = cached
        return cached

    def evaluate_values(self, values: Sequence[Value]) -> float:
        """Weight of an explicit value tuple given in scope order."""
        return self.evaluate(dict(zip(self.scope, values)))

    def dense_table(self, alphabet: Sequence[Value]):
        """The factor as a dense NumPy array with one axis per scope node.

        Entry ``[i, j, ...]`` is the weight of assigning the scope nodes the
        alphabet symbols with codes ``i, j, ...``.  Cached per alphabet, so
        the compiled evaluation engine materialises each factor at most once
        no matter how many (ball-restricted) compilations reference it.
        """
        key = tuple(alphabet)
        cached = self._dense_cache.get(key)
        if cached is None:
            from repro.engine.compiled import dense_table_from_callable

            cached = dense_table_from_callable(self, key)
            self._dense_cache[key] = cached
        return cached

    def is_satisfied(self, assignment: Assignment) -> bool:
        """Whether the assignment has strictly positive weight under this factor."""
        return self.evaluate(assignment) > 0.0

    def is_hard(self, alphabet: Sequence[Value]) -> bool:
        """Whether the factor assigns weight zero to some configuration.

        This is an exhaustive check over ``|alphabet| ** len(scope)``
        configurations, so it is only meaningful for the constant-size scopes
        used throughout the paper.
        """
        import itertools

        for values in itertools.product(alphabet, repeat=len(self.scope)):
            if self.evaluate_values(values) == 0.0:
                return True
        return False

    def scope_diameter(self, graph: nx.Graph) -> int:
        """Diameter of the scope inside ``graph`` (Definition 2.4)."""
        if len(self.scope) == 1:
            return 0
        best = 0
        for i, u in enumerate(self.scope):
            lengths = nx.single_source_shortest_path_length(graph, u)
            for v in self.scope[i + 1:]:
                if v not in lengths:
                    raise nx.NetworkXNoPath(f"scope nodes {u!r}, {v!r} are disconnected")
                best = max(best, lengths[v])
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Factor(name={self.name!r}, scope={self.scope!r})"
