"""Problem instances ``(G, x, tau)`` for distributed sampling and counting.

Definition 2.2 of the paper: an instance is a labeled graph (which here is a
:class:`~repro.gibbs.distribution.GibbsDistribution`, since the labels ``x``
are exactly the local factor descriptions) together with a feasible pinning
``tau`` on an arbitrary subset.  The *target distribution* of the instance is
the conditional distribution ``mu^tau``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional

from repro.gibbs.distribution import GibbsDistribution
from repro.gibbs.pinning import Pinning

Node = Hashable
Value = Hashable


class SamplingInstance:
    """An instance ``(G, x, tau)`` whose target distribution is ``mu^tau``."""

    def __init__(
        self,
        distribution: GibbsDistribution,
        pinning: Optional[Mapping[Node, Value]] = None,
        check_feasible: bool = False,
    ) -> None:
        self.distribution = distribution
        self.pinning = pinning if isinstance(pinning, Pinning) else Pinning(pinning or {})
        self._free_nodes = None
        if check_feasible and len(self.pinning) > 0:
            if not distribution.is_feasible(self.pinning):
                raise ValueError("the pinning tau is infeasible for the distribution")

    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The underlying network graph ``G``."""
        return self.distribution.graph

    @property
    def alphabet(self):
        """The alphabet ``Sigma``."""
        return self.distribution.alphabet

    @property
    def free_nodes(self):
        """Nodes not fixed by the pinning, in deterministic order.

        Computed once per instance (both the pinning and the distribution's
        node set are immutable); a fresh list is returned on every access so
        callers may mutate it.
        """
        if self._free_nodes is None:
            self._free_nodes = tuple(
                node for node in self.distribution.nodes if node not in self.pinning
            )
        return list(self._free_nodes)

    @property
    def size(self) -> int:
        """Number of nodes ``n`` of the network."""
        return self.distribution.size

    # ------------------------------------------------------------------
    def conditioned(self, extra: Mapping[Node, Value]) -> "SamplingInstance":
        """The self-reduced instance obtained by additionally pinning ``extra``.

        This is the self-reducibility operation of Remark 2.2: conditioning
        on more variables yields another valid instance of the same class.
        """
        return SamplingInstance(self.distribution, self.pinning.union(extra))

    def target_marginal(self, node: Node) -> Dict[Value, float]:
        """Exact marginal ``mu^tau_v`` (ground truth, via variable elimination)."""
        return self.distribution.marginal(node, self.pinning)

    def target_probability(self, configuration: Mapping[Node, Value]) -> float:
        """Exact probability ``mu^tau(sigma)`` of a full configuration."""
        return self.distribution.probability(configuration, self.pinning)

    def is_feasible_extension(self, extra: Mapping[Node, Value]) -> bool:
        """Whether pinning ``extra`` on top of ``tau`` stays feasible."""
        return self.distribution.is_feasible(self.pinning.union(extra))

    def full_configuration(self, assignment: Mapping[Node, Value]) -> Dict[Node, Value]:
        """Merge a free-node assignment with the pinning into a full configuration."""
        configuration = self.pinning.as_dict()
        configuration.update(assignment)
        return configuration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SamplingInstance(distribution={self.distribution.name!r}, "
            f"n={self.size}, pinned={len(self.pinning)})"
        )
