"""Distances between finite distributions and empirical estimation.

Distributions are represented throughout the library as plain dictionaries
mapping outcomes to probabilities.  Outcomes may be single alphabet symbols
(marginals) or hashable full configurations (joint distributions encoded as
tuples of ``(node, value)`` pairs).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Hashable, Iterable, Mapping, Sequence

Outcome = Hashable


def normalize(weights: Mapping[Outcome, float]) -> Dict[Outcome, float]:
    """Normalise non-negative weights into a probability distribution."""
    total = float(sum(weights.values()))
    if total <= 0.0:
        raise ValueError("cannot normalise: total weight is not positive")
    if any(value < 0 for value in weights.values()):
        raise ValueError("cannot normalise: negative weight present")
    return {outcome: value / total for outcome, value in weights.items()}


def total_variation(mu: Mapping[Outcome, float], nu: Mapping[Outcome, float]) -> float:
    """Total variation distance ``d_TV(mu, nu) = 1/2 * ||mu - nu||_1``.

    Outcomes missing from one of the distributions are treated as having
    probability zero there.
    """
    outcomes = set(mu) | set(nu)
    return 0.5 * sum(abs(mu.get(o, 0.0) - nu.get(o, 0.0)) for o in outcomes)


def multiplicative_error(mu: Mapping[Outcome, float], nu: Mapping[Outcome, float]) -> float:
    """The multiplicative error ``err(mu, nu) = max_x |ln mu(x) - ln nu(x)|``.

    Follows the paper's convention (equation (2)) that ``ln 0 - ln 0 = 0``;
    if exactly one of the distributions puts zero mass on an outcome the
    error is infinite.
    """
    outcomes = set(mu) | set(nu)
    worst = 0.0
    for outcome in outcomes:
        p = mu.get(outcome, 0.0)
        q = nu.get(outcome, 0.0)
        if p == 0.0 and q == 0.0:
            continue
        if p == 0.0 or q == 0.0:
            return math.inf
        worst = max(worst, abs(math.log(p) - math.log(q)))
    return worst


def empirical_distribution(samples: Iterable[Outcome]) -> Dict[Outcome, float]:
    """Empirical distribution of a sequence of hashable outcomes."""
    counts = Counter(samples)
    total = sum(counts.values())
    if total == 0:
        raise ValueError("cannot build an empirical distribution from zero samples")
    return {outcome: count / total for outcome, count in counts.items()}


def configuration_key(configuration: Mapping[Hashable, Hashable]) -> tuple:
    """A canonical hashable key for a full configuration.

    Used when estimating joint distributions from samples: two configurations
    are the same outcome iff they assign equal values to every node.
    """
    try:
        items = sorted(configuration.items())
    except TypeError:
        items = sorted(configuration.items(), key=lambda kv: repr(kv[0]))
    return tuple(items)


def marginal_from_joint(
    joint: Mapping[tuple, float], node: Hashable
) -> Dict[Hashable, float]:
    """Marginal of a single node from a joint distribution over configuration keys."""
    marginal: Dict[Hashable, float] = {}
    for key, probability in joint.items():
        value = dict(key)[node]
        marginal[value] = marginal.get(value, 0.0) + probability
    return marginal


def expectation(distribution: Mapping[Outcome, float], values: Mapping[Outcome, float]) -> float:
    """Expected value of ``values`` under ``distribution``."""
    return sum(probability * values.get(outcome, 0.0) for outcome, probability in distribution.items())


def hellinger_distance(mu: Mapping[Outcome, float], nu: Mapping[Outcome, float]) -> float:
    """Hellinger distance, used by tests as a second, independent discrepancy check."""
    outcomes = set(mu) | set(nu)
    acc = 0.0
    for outcome in outcomes:
        acc += (math.sqrt(mu.get(outcome, 0.0)) - math.sqrt(nu.get(outcome, 0.0))) ** 2
    return math.sqrt(acc / 2.0)


def sample_from(distribution: Mapping[Outcome, float], rng) -> Outcome:
    """Draw one outcome from a dictionary distribution using a numpy Generator.

    The outcomes are ordered deterministically (by ``repr``) so that a fixed
    seed always produces the same draw.
    """
    outcomes = sorted(distribution.keys(), key=repr)
    probabilities = [max(distribution[o], 0.0) for o in outcomes]
    total = sum(probabilities)
    if total <= 0.0:
        raise ValueError("cannot sample from a distribution with zero total mass")
    point = rng.random() * total
    cumulative = 0.0
    for outcome, probability in zip(outcomes, probabilities):
        cumulative += probability
        if point <= cumulative:
            return outcome
    return outcomes[-1]
