"""Multi-chain convergence diagnostics over batched chain traces.

The batched chain runner (:class:`repro.runtime.chains.ChainBatch`) records
a scalar statistic of every chain after every round, yielding a
``(chains, draws)`` trace matrix.  The two standard diagnostics here decide
from such a matrix whether the chains have mixed:

* :func:`split_r_hat` -- the split-chain potential scale reduction factor
  ``R-hat`` (Gelman--Rubin, with each chain split in half so within-chain
  trends are detected too).  Values near 1 indicate that between-chain and
  within-chain variability agree, i.e. the chains have forgotten their
  common initial state.
* :func:`effective_sample_size` -- the multi-chain effective sample size:
  the nominal ``chains * draws`` draws discounted by the autocorrelation of
  the traces (Geyer initial positive sequence, the estimator popularised by
  Stan).

Both return ``nan`` when the trace is too short to say anything (fewer than
four draws), which callers should treat as "not mixed yet".
"""

from __future__ import annotations

import numpy as np

#: R-hat below this threshold is the conventional "chains have mixed" call.
MIXED_R_HAT_THRESHOLD = 1.1


def _as_trace_matrix(traces) -> np.ndarray:
    matrix = np.asarray(traces, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("traces must be a (chains, draws) matrix")
    return matrix


def split_r_hat(traces) -> float:
    """Split-chain potential scale reduction factor over a trace matrix.

    Each chain's trace is split into halves (so a single trending chain
    inflates the statistic) and the classic ``sqrt(pooled / within)``
    variance ratio is computed over the split chains.  Returns ``nan`` for
    traces shorter than four draws, 1.0 for perfectly constant traces and
    ``inf`` when chains are constant but disagree.
    """
    matrix = _as_trace_matrix(traces)
    chains, draws = matrix.shape
    half = draws // 2
    if half < 2:
        return float("nan")
    split = matrix[:, : 2 * half].reshape(2 * chains, half)
    if split.shape[0] < 2:
        return float("nan")
    count = split.shape[1]
    means = split.mean(axis=1)
    within = float(split.var(axis=1, ddof=1).mean())
    between = float(count * means.var(ddof=1))
    if within <= 0.0:
        return 1.0 if between <= 0.0 else float("inf")
    pooled = (count - 1) / count * within + between / count
    return float(np.sqrt(pooled / within))


def effective_sample_size(traces) -> float:
    """Multi-chain effective sample size of a trace matrix.

    Discounts the nominal ``chains * draws`` sample count by the chain
    autocorrelation, estimated per lag across chains and truncated by
    Geyer's initial positive sequence (stop at the first non-positive sum
    of an even/odd autocorrelation pair).  Returns ``nan`` for traces
    shorter than four draws or with no variability at all.
    """
    matrix = _as_trace_matrix(traces)
    chains, draws = matrix.shape
    if draws < 4:
        return float("nan")
    total = chains * draws
    within = float(matrix.var(axis=1, ddof=1).mean())
    between_over_n = float(matrix.mean(axis=1).var(ddof=1)) if chains > 1 else 0.0
    pooled = (draws - 1) / draws * within + between_over_n
    if pooled <= 0.0:
        return float("nan")
    centered = matrix - matrix.mean(axis=1, keepdims=True)

    def autocovariance(lag: int) -> float:
        # Biased (divide by draws) per-chain estimate, averaged over chains,
        # as in the Stan reference implementation.
        return float(
            (centered[:, : draws - lag] * centered[:, lag:]).sum(axis=1).mean() / draws
        )

    tau = 1.0
    lag = 1
    while lag + 1 < draws:
        even = 1.0 - (within - autocovariance(lag)) / pooled
        odd = 1.0 - (within - autocovariance(lag + 1)) / pooled
        pair = even + odd
        if pair <= 0.0:
            break
        tau += 2.0 * pair
        lag += 2
    return float(min(total, total / tau))


def chains_mixed(traces, threshold: float = MIXED_R_HAT_THRESHOLD) -> bool:
    """Whether the split R-hat of the traces is below the mixing threshold.

    ``nan`` (trace too short) counts as *not* mixed.
    """
    value = split_r_hat(traces)
    return bool(np.isfinite(value) and value < threshold)
