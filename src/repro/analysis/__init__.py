"""Statistical utilities shared by the algorithms, tests and benchmarks.

Implements the two error measures the paper uses -- total variation distance
and the multiplicative error ``err(mu, nu) = max_x |ln mu(x) - ln nu(x)|``
(equation (2)) -- plus empirical-distribution estimation from samples, the
curve-fitting helpers the experiments use to check decay rates and round
complexity scaling, and multi-chain convergence diagnostics (split R-hat,
effective sample size) over batched chain traces.
"""

from repro.analysis.convergence import (
    chains_mixed,
    effective_sample_size,
    split_r_hat,
)
from repro.analysis.distances import (
    empirical_distribution,
    multiplicative_error,
    normalize,
    total_variation,
)
from repro.analysis.fitting import (
    fit_exponential_decay,
    fit_power_law,
    sample_complexity_for_tv,
)

__all__ = [
    "chains_mixed",
    "effective_sample_size",
    "split_r_hat",
    "empirical_distribution",
    "multiplicative_error",
    "normalize",
    "total_variation",
    "fit_exponential_decay",
    "fit_power_law",
    "sample_complexity_for_tv",
]
