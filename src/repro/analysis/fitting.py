"""Curve fitting helpers for the experiments.

The benchmarks verify *shapes*, not absolute constants: exponential decay of
correlations with distance, and polynomial / poly-logarithmic growth of round
complexity with the instance size.  Both reduce to least-squares fits in log
space, implemented here with numpy only.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np


def fit_exponential_decay(
    distances: Sequence[float], errors: Sequence[float], floor: float = 1e-12
) -> Tuple[float, float]:
    """Fit ``error ~= C * alpha^distance`` and return ``(alpha, C)``.

    Zero errors are clamped to ``floor`` before taking logarithms (an exactly
    zero measurement means the decay is faster than we can resolve).  The fit
    is an ordinary least squares line in ``(distance, log error)`` space.
    """
    if len(distances) != len(errors):
        raise ValueError("distances and errors must have equal length")
    if len(distances) < 2:
        raise ValueError("need at least two points to fit a decay rate")
    xs = np.asarray(distances, dtype=float)
    ys = np.log(np.maximum(np.asarray(errors, dtype=float), floor))
    slope, intercept = np.polyfit(xs, ys, 1)
    return float(math.exp(slope)), float(math.exp(intercept))


def fit_power_law(
    sizes: Sequence[float], costs: Sequence[float]
) -> Tuple[float, float]:
    """Fit ``cost ~= C * size^exponent`` and return ``(exponent, C)``."""
    if len(sizes) != len(costs):
        raise ValueError("sizes and costs must have equal length")
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit a power law")
    xs = np.log(np.asarray(sizes, dtype=float))
    ys = np.log(np.asarray(costs, dtype=float))
    slope, intercept = np.polyfit(xs, ys, 1)
    return float(slope), float(math.exp(intercept))


def fit_polylog_exponent(
    sizes: Sequence[float], costs: Sequence[float]
) -> float:
    """Fit ``cost ~= C * (log size)^k`` and return the exponent ``k``.

    Used to check the ``O(log^3 n)`` round bounds: the measured exponent
    should stay bounded (and far below a polynomial fit in ``n``).
    """
    if len(sizes) < 2:
        raise ValueError("need at least two points")
    xs = np.log(np.log(np.asarray(sizes, dtype=float)))
    ys = np.log(np.asarray(costs, dtype=float))
    slope, _ = np.polyfit(xs, ys, 1)
    return float(slope)


def sample_complexity_for_tv(target_tv: float, num_outcomes: int, confidence: float = 0.9) -> int:
    """Number of i.i.d. samples so the empirical distribution is within ``target_tv``.

    Uses the standard bound ``E[d_TV] <= sqrt(k / (4 m))`` for ``k`` outcomes
    and ``m`` samples plus a McDiarmid deviation term; adequate for sizing
    Monte-Carlo checks in the tests and benchmarks.
    """
    if not 0 < target_tv < 1:
        raise ValueError("target_tv must be in (0, 1)")
    if num_outcomes < 1:
        raise ValueError("num_outcomes must be positive")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    deviation = math.sqrt(math.log(1.0 / (1.0 - confidence)) / 2.0)
    # Solve sqrt(k / (4 m)) + deviation / sqrt(m) <= target_tv for m.
    numerator = math.sqrt(num_outcomes) / 2.0 + deviation
    return int(math.ceil((numerator / target_tv) ** 2))
