"""E12 -- Baseline comparison: local-JVV versus Markov-chain samplers.

The prior approach to distributed sampling (Feng--Sun--Yin 2017) parallelises
Glauber dynamics (LubyGlauber); the paper's JVV-based sampler instead has a
fixed round budget and certifiable failures, and is *exact* conditioned on
success.  On a small hardcore instance we compare, at matched sample counts:

* the total-variation distance of each sampler's empirical output
  distribution from the enumerated target, and
* the LOCAL round complexity charged (chain rounds for LubyGlauber, the
  3-pass locality for JVV, 1 SLOCAL scan for the sequential sampler).

With a batched runtime (``runtime="batched"``, see :mod:`repro.runtime`)
the LubyGlauber chains advance as one ``(chains, n)`` code matrix -- the
per-seed samples are bit-identical to the serial loop, so the reported TV
numbers do not change -- and each row additionally reports the multi-chain
convergence diagnostics of :mod:`repro.analysis.convergence` (split R-hat
and effective sample size of the per-chain occupancy traces), which show
*when* the chains have actually mixed.

All chain workloads go through the unified kernel execution path
(:meth:`repro.runtime.executor.Runtime.run_chains`): the LubyGlauber rows
run the ``luby-glauber`` kernel, and a ``jvv-kernel`` row runs the
rejection-resampling kernel of :class:`repro.sampling.jvv.JVVKernel` --
one full scan per chain with per-chain acceptance masks, reporting the
rejected-chain fraction against the ``e^{-3/n}`` law on every runtime.
Each row's samples are bit-identical on every backend
(serial/batched/process/cluster).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis import (
    chains_mixed,
    effective_sample_size,
    empirical_distribution,
    split_r_hat,
    total_variation,
)
from repro.analysis.distances import configuration_key
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.inference import ExactInference, correlation_decay_for
from repro.models import hardcore_model
from repro.sampling import (
    enumerate_target_distribution,
    luby_glauber_sample,
    sample_approximate_slocal,
    sample_exact_slocal,
)


def run(
    cycle_size: int = 6,
    fugacity: float = 1.0,
    samples: int = 250,
    glauber_rounds=(2, 10, 40),
    runtime=None,
) -> List[Dict]:
    """Run E12 and return one row per sampler configuration."""
    from repro.runtime import resolve_runtime

    runtime_obj = resolve_runtime(runtime)
    distribution = hardcore_model(cycle_graph(cycle_size), fugacity=fugacity)
    instance = SamplingInstance(distribution)
    truth = enumerate_target_distribution(instance)
    noise = math.sqrt(len(truth) / (4.0 * samples))
    rows: List[Dict] = []

    # LubyGlauber at several round budgets: TV error decreases as the chain mixes.
    for rounds in glauber_rounds:
        diagnostics: Dict[str, object] = {}
        if runtime_obj.is_batched:
            from repro.runtime import ChainBatch

            # One chain per serial seed: the batch is bit-identical to the
            # serial loop below, and the per-round occupancy traces feed the
            # convergence diagnostics for free.
            batch = ChainBatch(instance, seeds=range(samples))
            traces = batch.luby_rounds(
                rounds, statistic=lambda codes: codes.mean(axis=1)
            )
            keys = [
                configuration_key(configuration)
                for configuration in batch.configurations()
            ]
            diagnostics = {
                "split_r_hat": split_r_hat(traces),
                "ess": effective_sample_size(traces),
                "mixed": chains_mixed(traces),
            }
        else:
            # The unified kernel path: per-seed results equal the serial
            # luby_glauber_sample loop on every backend (integer seeds kept
            # for continuity with the historical rows).
            keys = [
                configuration_key(configuration)
                for configuration in runtime_obj.run_chains(
                    "luby-glauber", instance, rounds, seeds=range(samples)
                )
            ]
        row = {
            "sampler": f"luby-glauber({rounds} rounds)",
            "rounds": rounds,
            "samples": samples,
            "tv_to_target": total_variation(empirical_distribution(keys), truth),
            "noise_floor": noise,
            "exact_conditional": False,
        }
        row.update(diagnostics)
        rows.append(row)

    # Sequential sampler (Theorem 3.2) with a correlation-decay engine.
    engine = correlation_decay_for(distribution)
    keys = [
        configuration_key(
            sample_approximate_slocal(instance, engine, 0.05, seed=seed).configuration
        )
        for seed in range(samples)
    ]
    rows.append(
        {
            "sampler": "sequential (Thm 3.2)",
            "rounds": engine.locality(instance, 0.05 / cycle_size),
            "samples": samples,
            "tv_to_target": total_variation(empirical_distribution(keys), truth),
            "noise_floor": noise,
            "exact_conditional": False,
        }
    )

    # Local-JVV with an exact oracle: exact conditioned on acceptance.
    accepted = []
    runs = 0
    while len(accepted) < samples and runs < 6 * samples:
        result = sample_exact_slocal(instance, ExactInference(), seed=runs)
        if result.success:
            accepted.append(configuration_key(result.configuration))
        runs += 1
    rows.append(
        {
            "sampler": "local-JVV (Thm 4.2)",
            "rounds": 3 * cycle_size + 1,
            "samples": len(accepted),
            "tv_to_target": total_variation(empirical_distribution(accepted), truth),
            "noise_floor": math.sqrt(len(truth) / (4.0 * max(1, len(accepted)))),
            "exact_conditional": True,
        }
    )

    # JVV rejection kernel: one full scan per chain through the unified
    # run_chains path (same samples on every backend; conditioning on
    # acceptance is what the row above does with the SLOCAL machinery).
    from repro.sampling.jvv import jvv_chain_stats

    scan_steps = len(instance.free_nodes)
    configurations, failure_counts = jvv_chain_stats(
        instance, scan_steps, n_chains=samples, seed=0, runtime=runtime_obj
    )
    keys = [configuration_key(configuration) for configuration in configurations]
    rows.append(
        {
            "sampler": "jvv-kernel (1 scan)",
            "rounds": scan_steps,
            "samples": len(keys),
            "tv_to_target": total_variation(empirical_distribution(keys), truth),
            "noise_floor": math.sqrt(len(truth) / (4.0 * max(1, len(keys)))),
            "exact_conditional": False,
            # Same row schema on every runtime: the counts come from the
            # batched acceptance masks or the serial reference identically.
            "rejected_fraction": sum(1 for c in failure_counts if c > 0) / len(keys),
            "predicted_rejected": 1.0
            - math.exp(-3.0 * scan_steps / max(2, instance.size) ** 2),
        }
    )
    return rows
