"""E10 -- Application: anti-ferromagnetic two-spin models in the uniqueness regime.

Sweep the anti-ferromagnetic interaction strength of an Ising model on a
bounded-degree graph across its uniqueness boundary and record (a) whether
the model is classified as unique (Li--Lu--Yin criterion), (b) the accuracy
of correlation-decay inference at a fixed depth, and (c) the measured SSM
decay rate.  The claim is that accuracy degrades sharply once uniqueness
fails, while inside the regime a constant depth already gives small error.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis import total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import random_regular_graph
from repro.inference import correlation_decay_for
from repro.models import ising_model, is_two_spin_uniqueness
from repro.spatialmixing import estimate_decay_rate, ssm_profile


def run(
    interactions=(-0.1, -0.3, -0.6, -1.2),
    degree: int = 3,
    nodes: int = 14,
    depth: int = 4,
    probes: int = 3,
) -> List[Dict]:
    """Run E10 and return one row per interaction strength."""
    graph = random_regular_graph(degree, nodes, seed=7)
    rows: List[Dict] = []
    for interaction in interactions:
        distribution = ising_model(graph, interaction=interaction)
        instance = SamplingInstance(distribution, {0: 1})
        engine = correlation_decay_for(distribution, decay_rate=None, max_depth=depth)
        engine.decay_rate = 0.99  # force the explicit depth cap to be binding
        worst = 0.0
        for node in instance.free_nodes[:probes]:
            estimate = engine.marginal(instance, node, 0.05)
            truth = instance.target_marginal(node)
            worst = max(worst, total_variation(estimate, truth))
        beta = math.exp(2.0 * interaction)
        unique = is_two_spin_uniqueness(beta, beta, 1.0, degree)
        profile = ssm_profile(distribution, 1, radii=[1, 2, 3], max_configs=16)
        rows.append(
            {
                "interaction": interaction,
                "uniqueness": unique,
                "depth": depth,
                "worst_marginal_tv": worst,
                "ssm_decay_rate": estimate_decay_rate(profile) if len(profile) >= 2 else 0.0,
            }
        )
    return rows
