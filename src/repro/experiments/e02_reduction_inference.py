"""E2 -- Theorem 3.4: approximate sampling implies approximate inference.

Build an inference engine out of the Theorem 3.2 sampler (Monte-Carlo
estimation of the sampler's marginals, see
:mod:`repro.sampling.sampling_to_inference`) and compare its output with the
exact marginals.  The theorem's claim is that the recovered marginals are
within ``delta + epsilon_0`` of the target, with the sampler's failure
probability ``epsilon_0`` and the estimation noise reported separately.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis import total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.inference import correlation_decay_for
from repro.models import hardcore_model, matching_model
from repro.sampling import InferenceFromSampling, sample_approximate_slocal


def _workloads():
    hardcore = hardcore_model(cycle_graph(9), fugacity=1.0)
    matching = matching_model(path_graph(7), edge_weight=1.0)
    return [
        ("hardcore-C9", SamplingInstance(hardcore, {0: 1}), correlation_decay_for(hardcore)),
        ("matching-P7", SamplingInstance(matching), correlation_decay_for(matching)),
    ]


def run(delta: float = 0.05, num_samples: int = 250, probes_per_model: int = 3) -> List[Dict]:
    """Run E2 and return one row per probed node."""
    rows: List[Dict] = []
    for name, instance, engine in _workloads():

        def sampler(inner_instance, error, seed, _engine=engine):
            result = sample_approximate_slocal(inner_instance, _engine, error, seed=seed)
            return result.configuration, result.rounds

        recovered = InferenceFromSampling(sampler, num_samples=num_samples, seed=1)
        probes = instance.free_nodes[:: max(1, len(instance.free_nodes) // probes_per_model)]
        for node in probes[:probes_per_model]:
            estimate = recovered.marginal(instance, node, delta)
            truth = instance.target_marginal(node)
            rows.append(
                {
                    "model": name,
                    "node": str(node),
                    "delta": delta,
                    "samples": num_samples,
                    "marginal_tv": total_variation(estimate, truth),
                    "rounds": recovered.locality(instance, delta),
                }
            )
    return rows
