"""Shared helpers for the reproduction experiments."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render experiment rows as a fixed-width text table.

    Used by the benchmark harness to print the regenerated "table" of each
    experiment in a form comparable to EXPERIMENTS.md.
    """
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(rows[0].keys())
    rendered_rows = [
        {column: _render(row.get(column)) for column in columns} for row in rows
    ]
    widths = {
        column: max(len(column), max(len(row[column]) for row in rendered_rows))
        for column in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rendered_rows:
        lines.append(" | ".join(row[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def geometric_sizes(start: int, factor: float, count: int) -> List[int]:
    """A geometric sequence of instance sizes (rounded, strictly increasing)."""
    if start < 1 or factor <= 1.0 or count < 1:
        raise ValueError("need start >= 1, factor > 1 and count >= 1")
    sizes: List[int] = []
    current = float(start)
    for _ in range(count):
        size = int(round(current))
        if sizes and size <= sizes[-1]:
            size = sizes[-1] + 1
        sizes.append(size)
        current *= factor
    return sizes
