"""E9 -- Application: colorings of triangle-free graphs with q >= alpha * Delta.

Gamarnik--Katz--Misra prove strong spatial mixing for proper q-colorings of
triangle-free graphs once ``q > alpha* * Delta`` (``alpha* ~ 1.763``); the
paper turns this into an ``O(log^3 n)``-round exact sampler.  We measure, on
triangle-free (bipartite regular) graphs, the accuracy of the BP-based
inference and the validity of the samples as the number of colors crosses
``alpha* * Delta``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis import total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import random_bipartite_regular_graph
from repro.inference import BeliefPropagationInference
from repro.models import ALPHA_STAR, coloring_model
from repro.sampling import sample_approximate_slocal


def run(
    color_counts=(3, 4, 6),
    degree: int = 2,
    half_size: int = 6,
    error: float = 0.05,
    probes: int = 3,
) -> List[Dict]:
    """Run E9 and return one row per number of colors."""
    graph = random_bipartite_regular_graph(degree, half_size, seed=1)
    rows: List[Dict] = []
    for q in color_counts:
        distribution = coloring_model(graph, num_colors=q)
        pinned_node = next(iter(sorted(graph.nodes(), key=repr)))
        instance = SamplingInstance(distribution, {pinned_node: 0})
        engine = BeliefPropagationInference(iterations=12)
        worst = 0.0
        for node in instance.free_nodes[:probes]:
            estimate = engine.marginal(instance, node, error)
            truth = instance.target_marginal(node)
            worst = max(worst, total_variation(estimate, truth))
        sample = sample_approximate_slocal(instance, engine, error, seed=q)
        proper = all(
            sample.configuration[u] != sample.configuration[v] for u, v in graph.edges()
        )
        rows.append(
            {
                "colors": q,
                "alpha_star_times_delta": ALPHA_STAR * degree,
                "in_ssm_regime": distribution.metadata["ssm_regime"],
                "worst_marginal_tv": worst,
                "sample_is_proper": proper,
                "rounds": sample.rounds,
            }
        )
    return rows
