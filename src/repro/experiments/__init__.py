"""Reproduction experiments.

The paper is a theory paper and has no numeric tables or figures; its
"evaluation" is the set of theorems and the application corollaries of
Section 5.  Each module here turns one of those claims into a measurable
experiment (see DESIGN.md, Section 3, for the experiment index E1 -- E12).
The benchmark harness under ``benchmarks/`` is a thin wrapper that runs these
functions through pytest-benchmark and prints the resulting rows;
EXPERIMENTS.md records the measured outcomes next to the paper's claims.

Every experiment function returns a list of plain dictionaries (one per row
of the "table" it regenerates) so the output can be printed, asserted on and
serialised without extra machinery.
"""

from repro.experiments.common import format_table, geometric_sizes
from repro.experiments import (
    e01_reduction_sampling,
    e02_reduction_inference,
    e03_boosting,
    e04_jvv,
    e05_ssm_inference,
    e06_hardcore_rounds,
    e07_matching_rounds,
    e08_phase_transition,
    e09_coloring,
    e10_ising,
    e11_decomposition,
    e12_baselines,
    e13_learning,
)

__all__ = [
    "format_table",
    "geometric_sizes",
    "e01_reduction_sampling",
    "e02_reduction_inference",
    "e03_boosting",
    "e04_jvv",
    "e05_ssm_inference",
    "e06_hardcore_rounds",
    "e07_matching_rounds",
    "e08_phase_transition",
    "e09_coloring",
    "e10_ising",
    "e11_decomposition",
    "e12_baselines",
    "e13_learning",
]
