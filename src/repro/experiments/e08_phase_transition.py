"""E8 -- The computational phase transition for distributed sampling.

The paper's headline: hardcore sampling takes ``O(log^3 n)`` rounds below the
uniqueness threshold ``lambda_c(Delta)`` and ``Omega(diam)`` rounds above it
(combining Corollary 5.3 with the lower bound of Feng--Sun--Yin 2017).

We reproduce the transition on trees (where ``lambda_c`` is sharp):
for fugacities on both sides of the threshold we measure

* the long-range correlation between the root's marginal and a boundary at
  distance ``Theta(depth)`` -- it decays to ~0 below the threshold and stays
  bounded away from 0 above it;
* the locality a ball-local inference algorithm needs for a fixed accuracy --
  it stays small below the threshold and grows to the full depth above it.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

from repro.gibbs import SamplingInstance
from repro.models import hardcore_model, hardcore_uniqueness_threshold
from repro.spatialmixing import long_range_correlation


def complete_binary_tree(depth: int) -> nx.Graph:
    """A complete binary tree of the given depth (root has label 0)."""
    return nx.balanced_tree(2, depth)


def run(
    fugacity_ratios=(0.2, 0.5, 2.0, 5.0),
    depth: int = 4,
    error: float = 0.05,
    runtime=None,
) -> List[Dict]:
    """Run E8 and return one row per fugacity ratio ``lambda / lambda_c``.

    Two measurements per ratio:

    * ``boundary_influence`` -- the worst-case influence of the boundary at
      distance = depth on the root's marginal (Definition 5.1's inner
      maximum).  Below the threshold it decays with the depth; above it it
      stays bounded away from zero.
    * ``radius_lower_bound`` -- the information-theoretic locality lower
      bound implied by those influences: the smallest radius ``r`` such that
      the boundary influence at every distance beyond ``r`` is at most
      ``2 * error``.  If boundary configurations beyond radius ``r`` still
      move the root's marginal by more than ``2 * error``, no ``r``-round
      algorithm can be ``error``-accurate on all of them -- this is exactly
      the long-range-correlation argument behind the Omega(diam) lower bound.

    The per-distance influence measurements are independent LOCAL
    computations, so a process runtime (see :mod:`repro.runtime`) fans them
    out across forked workers; the default serial runtime runs today's loop.
    """
    from repro.runtime import resolve_runtime

    runtime_obj = resolve_runtime(runtime)
    graph = complete_binary_tree(depth)
    max_degree = 3
    threshold = hardcore_uniqueness_threshold(max_degree)
    root = 0
    rows: List[Dict] = []
    for ratio in fugacity_ratios:
        fugacity = ratio * threshold
        distribution = hardcore_model(graph, fugacity=fugacity)
        instance = SamplingInstance(distribution)
        distances = list(range(1, depth + 1))
        influences = dict(
            zip(
                distances,
                runtime_obj.map(
                    lambda distance: long_range_correlation(
                        instance, root, distance=distance, max_configs=24
                    ),
                    distances,
                ),
            )
        )
        radius_lower_bound = depth
        for radius in range(0, depth + 1):
            if all(influences[d] <= 2.0 * error for d in influences if d > radius):
                radius_lower_bound = radius
                break
        rows.append(
            {
                "lambda_over_lambda_c": ratio,
                "fugacity": fugacity,
                "uniqueness": ratio < 1.0,
                "depth": depth,
                "boundary_influence": influences[depth],
                "radius_lower_bound": radius_lower_bound,
                "radius_hit_diameter": radius_lower_bound >= depth - 1,
            }
        )
    return rows


def transition_gap(rows: List[Dict]) -> Dict[str, float]:
    """Summary of the transition: worst uniqueness-side vs best non-uniqueness-side."""
    below = [row for row in rows if row["uniqueness"]]
    above = [row for row in rows if not row["uniqueness"]]
    return {
        "max_radius_below": max((row["radius_lower_bound"] for row in below), default=0.0),
        "min_radius_above": min((row["radius_lower_bound"] for row in above), default=0.0),
        "max_influence_below": max((row["boundary_influence"] for row in below), default=0.0),
        "min_influence_above": min((row["boundary_influence"] for row in above), default=0.0),
    }
