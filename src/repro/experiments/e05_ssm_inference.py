"""E5 -- Theorem 5.1: strong spatial mixing versus locality of inference.

Measure (a) the SSM decay profile of the hardcore model at several fugacities
and (b) the radius at which ball-local inference reaches a fixed accuracy.
The theorem's claim is that the two quantities track each other: fast decay
means small required radius, slow decay means large required radius.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.models import hardcore_model
from repro.spatialmixing import estimate_decay_rate, locality_required, ssm_profile


def run(
    fugacities=(0.3, 1.0, 3.0, 8.0),
    cycle_size: int = 16,
    error: float = 0.02,
    radii=(1, 2, 3, 4, 5),
    runtime=None,
) -> List[Dict]:
    """Run E5 and return one row per fugacity.

    ``runtime`` selects the execution backend (see :mod:`repro.runtime`):
    a process runtime shards the ball compilations of the locality sweep
    across workers and merges them into the distribution cache before the
    serial measurement replays over the warmed cache.
    """
    from repro.runtime import resolve_runtime

    runtime_obj = resolve_runtime(runtime)
    rows: List[Dict] = []
    probe = cycle_size // 2
    for fugacity in fugacities:
        distribution = hardcore_model(cycle_graph(cycle_size), fugacity=fugacity)
        profile = ssm_profile(distribution, probe, radii=list(radii))
        rate = estimate_decay_rate(profile)
        instance = SamplingInstance(distribution, {0: 1})
        if runtime_obj.is_process:
            locality = distribution.locality()
            runtime_obj.warm_ball_cache(
                instance,
                [(probe, radius + locality) for radius in range(cycle_size // 2 + 1)],
            )
        radius_needed = locality_required(
            instance, probe, error=error, max_radius=cycle_size // 2
        )
        rows.append(
            {
                "fugacity": fugacity,
                "ssm_decay_rate": rate,
                "influence_at_r1": profile[0]["tv"],
                "influence_at_r4": profile[3]["tv"] if len(profile) > 3 else 0.0,
                "radius_for_eps": radius_needed,
                "error": error,
            }
        )
    return rows
