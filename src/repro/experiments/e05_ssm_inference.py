"""E5 -- Theorem 5.1: strong spatial mixing versus locality of inference.

Measure (a) the SSM decay profile of the hardcore model at several fugacities
and (b) the radius at which ball-local inference reaches a fixed accuracy.
The theorem's claim is that the two quantities track each other: fast decay
means small required radius, slow decay means large required radius.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.models import hardcore_model
from repro.spatialmixing import estimate_decay_rate, locality_required, ssm_profile


def run(
    fugacities=(0.3, 1.0, 3.0, 8.0),
    cycle_size: int = 16,
    error: float = 0.02,
    radii=(1, 2, 3, 4, 5),
    runtime=None,
) -> List[Dict]:
    """Run E5 and return one row per fugacity.

    ``runtime`` selects the execution backend (see :mod:`repro.runtime`):
    a process runtime runs the locality sweep *overlapped* -- the
    per-radius ball computations are submitted to worker processes up
    front and the radius-``r`` accuracy measurement starts the moment its
    shard streams back, while the radius-``r + 1`` balls are still
    compiling.  Worker results (compiled balls, boundary extensions,
    marginal memos) merge into the distribution cache as they arrive, and
    the reported radius is identical to the serial sweep.
    """
    from repro.runtime import resolve_runtime

    runtime_obj = resolve_runtime(runtime)
    rows: List[Dict] = []
    probe = cycle_size // 2
    for fugacity in fugacities:
        distribution = hardcore_model(cycle_graph(cycle_size), fugacity=fugacity)
        profile = ssm_profile(distribution, probe, radii=list(radii))
        rate = estimate_decay_rate(profile)
        instance = SamplingInstance(distribution, {0: 1})
        radius_needed = locality_required(
            instance,
            probe,
            error=error,
            max_radius=cycle_size // 2,
            runtime=runtime_obj,
        )
        rows.append(
            {
                "fugacity": fugacity,
                "ssm_decay_rate": rate,
                "influence_at_r1": profile[0]["tv"],
                "influence_at_r4": profile[3]["tv"] if len(profile) > 3 else 0.0,
                "radius_for_eps": radius_needed,
                "error": error,
            }
        )
    return rows
