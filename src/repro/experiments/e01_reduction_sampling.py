"""E1 -- Theorem 3.2: approximate inference implies approximate sampling.

For several models and target accuracies, draw repeated samples with the
sequential sampler built on a local inference engine and report (a) the
empirical per-node marginal error against the exact marginals and (b) the
LOCAL round complexity charged.  The theorem's claim is that the measured
error stays below the requested ``delta`` (up to Monte-Carlo noise) while the
rounds stay polylogarithmic.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis import total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.inference import correlation_decay_for, BoundaryPaddedInference
from repro.models import coloring_model, hardcore_model
from repro.sampling import sample_approximate_local, sample_approximate_slocal


def _workloads():
    hardcore = hardcore_model(cycle_graph(10), fugacity=0.8)
    coloring = coloring_model(cycle_graph(8), num_colors=3)
    return [
        ("hardcore-C10", SamplingInstance(hardcore, {0: 1}), correlation_decay_for(hardcore)),
        ("coloring-C8-q3", SamplingInstance(coloring, {0: 0}), BoundaryPaddedInference(decay_rate=0.5)),
    ]


def run(errors=(0.2, 0.05), samples_per_setting: int = 120, use_scheduler: bool = False) -> List[Dict]:
    """Run E1 and return one row per (model, delta) pair."""
    rows: List[Dict] = []
    for name, instance, engine in _workloads():
        truth = {node: instance.target_marginal(node) for node in instance.free_nodes}
        for delta in errors:
            counts = {node: {} for node in instance.free_nodes}
            rounds = 0
            for seed in range(samples_per_setting):
                if use_scheduler:
                    result = sample_approximate_local(instance, engine, delta, seed=seed)
                else:
                    result = sample_approximate_slocal(instance, engine, delta, seed=seed)
                rounds = result.rounds
                for node in instance.free_nodes:
                    value = result.configuration[node]
                    counts[node][value] = counts[node].get(value, 0) + 1
            worst = 0.0
            for node in instance.free_nodes:
                empirical = {
                    value: count / samples_per_setting for value, count in counts[node].items()
                }
                worst = max(worst, total_variation(empirical, truth[node]))
            rows.append(
                {
                    "model": name,
                    "delta": delta,
                    "samples": samples_per_setting,
                    "worst_marginal_tv": worst,
                    "rounds": rounds,
                    "mode": "local" if use_scheduler else "slocal",
                }
            )
    return rows
