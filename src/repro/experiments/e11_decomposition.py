"""E11 -- The Lemma 3.1 substrate: network decomposition quality and overhead.

Lemma 3.1's ``O(r log^2 n)`` round bound rests on an ``(O(log n), O(log n))``
network decomposition.  We sweep the instance size on two graph families and
record the measured number of colors, the largest cluster diameter, the
number of fallback (failed) nodes, and the resulting scheduling overhead for
an SLOCAL algorithm of locality 1.  The claim is that colors and diameter
grow like ``log n`` (their product like ``log^2 n``) and that fallback nodes
are rare.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.graphs import cycle_graph, torus_graph
from repro.localmodel import Network, linial_saks_decomposition, simulate_slocal_as_local
from repro.localmodel.slocal import SLocalAlgorithm


class _UnitLocalityAlgorithm(SLocalAlgorithm):
    """A trivial locality-1 SLOCAL algorithm used to measure scheduling overhead."""

    passes = 1

    def locality(self, network):
        return 1

    def process(self, pass_index, node, access, rng, network):
        access.write(node, "output", network.ids[node])


def _families(sizes):
    for n in sizes:
        yield f"cycle-{n}", cycle_graph(n)
    for side in (4, 6, 8):
        yield f"torus-{side}x{side}", torus_graph(side, side)


def run(sizes=(16, 32, 64, 128), seed: int = 0) -> List[Dict]:
    """Run E11 and return one row per graph."""
    rows: List[Dict] = []
    for name, graph in _families(sizes):
        n = graph.number_of_nodes()
        decomposition = linial_saks_decomposition(graph, seed=seed)
        decomposition.validate(graph)
        network = Network(graph, seed=seed)
        scheduled = simulate_slocal_as_local(_UnitLocalityAlgorithm(), network, seed=seed)
        rows.append(
            {
                "graph": name,
                "n": n,
                "log2_n": math.log2(n),
                "colors": decomposition.num_colors,
                "max_cluster_diameter": decomposition.max_cluster_diameter(graph),
                "fallback_nodes": len(decomposition.fallback_nodes),
                "scheduled_rounds": scheduled.rounds,
                "rounds_over_log2sq": scheduled.rounds / (math.log2(n) ** 2),
            }
        )
    return rows
