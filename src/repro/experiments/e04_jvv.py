"""E4 -- Theorem 4.2: the distributed JVV sampler is exact with failure O(1/n).

Three measurements:

* **Exactness.**  Conditioned on acceptance, the empirical distribution of
  the sampler's output must be within Monte-Carlo noise of the enumerated
  target distribution.
* **Failure probability.**  The per-run failure probability shrinks with the
  instance size (the per-node acceptance is ``exp(-Theta(1/n^2))``, so the
  global failure probability is ``1 - exp(-Theta(1/n)) = O(1/n)``).
* **Rejection-kernel failure law.**  The same acceptance mathematics through
  the chain-kernel API (:class:`repro.sampling.jvv.JVVKernel`): many
  independent rejection chains advance one full scan each and the fraction
  of chains with at least one rejected step is compared to the predicted
  ``1 - e^{-3 n_free / n^2}``.  With ``runtime="batched"`` the chains run
  as one ``(chains, n)`` code matrix with per-chain acceptance masks --
  bit-identical failure counts to the serial loop.

Every entry point takes a ``runtime=`` knob (see :mod:`repro.runtime`):
the SLOCAL measurements fan their independent runs out through
``runtime.map`` and the kernel measurement goes through the unified
``run_chains`` path.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis import empirical_distribution, total_variation
from repro.analysis.distances import configuration_key
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.inference import ExactInference
from repro.models import hardcore_model
from repro.sampling import enumerate_target_distribution, sample_exact_slocal


def run_exactness(
    sizes=(5, 6), target_accepted: int = 220, max_runs: int = 1200, runtime=None
) -> List[Dict]:
    """Exactness rows: empirical-vs-target TV, per instance size.

    Independent sampler runs fan out in waves through ``runtime.map`` (the
    serial default is the historical loop); the accepted-sample stream is
    identical across runtimes because runs are seeded by index.
    """
    from repro.runtime import resolve_runtime

    runtime_obj = resolve_runtime(runtime)
    rows: List[Dict] = []
    engine = ExactInference()
    for n in sizes:
        distribution = hardcore_model(cycle_graph(n), fugacity=1.0)
        instance = SamplingInstance(distribution)
        truth = enumerate_target_distribution(instance)
        accepted = []
        runs = 0
        # Only runtimes whose map actually fans out get waves (accepting a
        # bounded overshoot per wave).  That is the process backend alone:
        # serial/batched map is the plain in-process loop, and the cluster
        # transport cannot carry this closure, so its map falls back
        # in-process too -- those keep the run-at-a-time target check.
        wave = max(1, target_accepted // 4) if runtime_obj.is_process else 1
        while len(accepted) < target_accepted and runs < max_runs:
            seeds = range(runs, min(runs + wave, max_runs))
            results = runtime_obj.map(
                lambda seed: sample_exact_slocal(instance, engine, seed=seed), seeds
            )
            for result in results:
                runs += 1
                if result.success:
                    accepted.append(configuration_key(result.configuration))
                if len(accepted) >= target_accepted:
                    break
        empirical = empirical_distribution(accepted)
        noise = math.sqrt(len(truth) / (4.0 * max(1, len(accepted))))
        rows.append(
            {
                "model": f"hardcore-C{n}",
                "accepted": len(accepted),
                "runs": runs,
                "empirical_tv": total_variation(empirical, truth),
                "noise_floor": noise,
                "failure_rate": 1.0 - len(accepted) / runs,
            }
        )
    return rows


def run_failure_scaling(
    sizes=(4, 6, 8, 10, 12), runs_per_size: int = 50, runtime=None
) -> List[Dict]:
    """Failure-probability rows: failure rate and the O(1/n) prediction."""
    from repro.runtime import resolve_runtime

    runtime_obj = resolve_runtime(runtime)
    rows: List[Dict] = []
    engine = ExactInference()
    for n in sizes:
        distribution = hardcore_model(cycle_graph(n), fugacity=1.0)
        instance = SamplingInstance(distribution)
        successes = runtime_obj.map(
            lambda seed: sample_exact_slocal(instance, engine, seed=seed).success,
            range(runs_per_size),
        )
        failures = sum(1 for success in successes if not success)
        rows.append(
            {
                "n": n,
                "runs": runs_per_size,
                "failure_rate": failures / runs_per_size,
                "predicted_rate": 1.0 - math.exp(-3.0 / n),
            }
        )
    return rows


def run_rejection_kernel(
    sizes=(16, 32, 64), chains: int = 64, scans: int = 1, runtime=None
) -> List[Dict]:
    """Rejection-kernel rows: per-chain failure fraction vs the e^{-3/n} law.

    Each of ``chains`` independent rejection chains advances ``scans`` full
    scans (``scans * n_free`` kernel steps) of
    :class:`~repro.sampling.jvv.JVVKernel`; a chain *fails* when any of its
    steps rejected.  The failure fraction is compared against the paper's
    prediction ``1 - e^{-3 * steps / n^2}`` (Lemma 4.8 telescoped over the
    scan).  Failure counts are bit-identical across runtimes: the batched
    backend accumulates them through per-chain acceptance masks, the serial
    reference counts per chain -- both under the spawned-seed convention.
    """
    from repro.sampling.jvv import jvv_chain_stats

    rows: List[Dict] = []
    for n in sizes:
        distribution = hardcore_model(cycle_graph(n), fugacity=1.0)
        instance = SamplingInstance(distribution)
        steps = scans * len(instance.free_nodes)
        _, counts = jvv_chain_stats(
            instance, steps, n_chains=chains, seed=0, runtime=runtime
        )
        failed = sum(1 for count in counts if count > 0)
        rows.append(
            {
                "n": n,
                "chains": chains,
                "steps": steps,
                "failure_rate": failed / chains,
                "predicted_rate": 1.0 - math.exp(-3.0 * steps / max(2, n) ** 2),
                "mean_rejections": sum(counts) / chains,
            }
        )
    return rows
