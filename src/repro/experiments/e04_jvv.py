"""E4 -- Theorem 4.2: the distributed JVV sampler is exact with failure O(1/n).

Two measurements:

* **Exactness.**  Conditioned on acceptance, the empirical distribution of
  the sampler's output must be within Monte-Carlo noise of the enumerated
  target distribution.
* **Failure probability.**  The per-run failure probability shrinks with the
  instance size (the per-node acceptance is ``exp(-Theta(1/n^2))``, so the
  global failure probability is ``1 - exp(-Theta(1/n)) = O(1/n)``).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis import empirical_distribution, total_variation
from repro.analysis.distances import configuration_key
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.inference import ExactInference
from repro.models import hardcore_model
from repro.sampling import enumerate_target_distribution, sample_exact_slocal


def run_exactness(sizes=(5, 6), target_accepted: int = 220, max_runs: int = 1200) -> List[Dict]:
    """Exactness rows: empirical-vs-target TV, per instance size."""
    rows: List[Dict] = []
    engine = ExactInference()
    for n in sizes:
        distribution = hardcore_model(cycle_graph(n), fugacity=1.0)
        instance = SamplingInstance(distribution)
        truth = enumerate_target_distribution(instance)
        accepted = []
        runs = 0
        while len(accepted) < target_accepted and runs < max_runs:
            result = sample_exact_slocal(instance, engine, seed=runs)
            if result.success:
                accepted.append(configuration_key(result.configuration))
            runs += 1
        empirical = empirical_distribution(accepted)
        noise = math.sqrt(len(truth) / (4.0 * max(1, len(accepted))))
        rows.append(
            {
                "model": f"hardcore-C{n}",
                "accepted": len(accepted),
                "runs": runs,
                "empirical_tv": total_variation(empirical, truth),
                "noise_floor": noise,
                "failure_rate": 1.0 - len(accepted) / runs,
            }
        )
    return rows


def run_failure_scaling(sizes=(4, 6, 8, 10, 12), runs_per_size: int = 50) -> List[Dict]:
    """Failure-probability rows: failure rate and the O(1/n) prediction."""
    rows: List[Dict] = []
    engine = ExactInference()
    for n in sizes:
        distribution = hardcore_model(cycle_graph(n), fugacity=1.0)
        instance = SamplingInstance(distribution)
        failures = 0
        for seed in range(runs_per_size):
            if not sample_exact_slocal(instance, engine, seed=seed).success:
                failures += 1
        rows.append(
            {
                "n": n,
                "runs": runs_per_size,
                "failure_rate": failures / runs_per_size,
                "predicted_rate": 1.0 - math.exp(-3.0 / n),
            }
        )
    return rows
