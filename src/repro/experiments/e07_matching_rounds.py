"""E7 -- Application: sampling matchings in O(sqrt(Delta) log^3 n) rounds.

Sweep the maximum degree ``Delta`` at a (roughly) fixed number of edges and
record the locality that the correlation-decay engine needs for a fixed
accuracy, together with the theoretical mixing scale
``1 / (1 - alpha(Delta)) = Theta(sqrt(Delta))``.  The claim is that the
measured locality grows like ``sqrt(Delta)``, not like ``Delta``.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.fitting import fit_power_law
from repro.gibbs import SamplingInstance
from repro.graphs import random_regular_graph, star_graph
from repro.inference import correlation_decay_for
from repro.models import matching_model, matching_ssm_decay_rate
from repro.sampling import sample_approximate_slocal


def run(
    degrees=(2, 4, 8, 16),
    nodes_per_graph: int = 18,
    error: float = 0.05,
    runtime=None,
) -> List[Dict]:
    """Run E7 and return one row per maximum degree.

    The per-degree measurements are independent, so a process runtime (see
    :mod:`repro.runtime`) fans them out across forked workers; the default
    serial runtime runs today's loop.
    """
    from repro.runtime import resolve_runtime

    def row_for(degree: int) -> Dict:
        n = nodes_per_graph
        if (degree * n) % 2 == 1:
            n += 1
        graph = random_regular_graph(degree, n, seed=degree)
        distribution = matching_model(graph, edge_weight=1.0)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution)

        rate = matching_ssm_decay_rate(degree)
        locality = engine.locality(instance, error)
        return {
            "max_degree": degree,
            "edges": distribution.size,
            "decay_rate": rate,
            "mixing_scale": 1.0 / (1.0 - rate),
            "sqrt_degree": math.sqrt(degree),
            "inference_rounds": locality,
            "error": error,
        }

    return resolve_runtime(runtime).map(row_for, list(degrees))


def fitted_degree_exponent(rows: List[Dict], column: str = "inference_rounds") -> float:
    """Exponent of the round column against Delta (expected near 0.5, not 1)."""
    degrees = [row["max_degree"] for row in rows]
    costs = [max(row[column], 1) for row in rows]
    exponent, _ = fit_power_law(degrees, costs)
    return exponent


def sample_one_matching(degree: int = 4, nodes: int = 12, seed: int = 0, max_depth: int = 5):
    """Convenience for the benchmark: draw one matching sample and validate it.

    The recursion depth is capped: the per-node cost of the self-avoiding-walk
    engine grows with the number of walks of that length, which on dense line
    graphs explodes well before the asymptotic O(log n) depth is reachable on
    a laptop.  The cap only affects the sample's accuracy, not its validity,
    and the degree-scaling measurement in :func:`run` is unaffected.
    """
    from repro.models.matching import configuration_to_matching, is_valid_matching

    graph = random_regular_graph(degree, nodes, seed=seed)
    distribution = matching_model(graph, edge_weight=1.0)
    instance = SamplingInstance(distribution)
    engine = correlation_decay_for(distribution, max_depth=max_depth)
    result = sample_approximate_slocal(instance, engine, 0.1, seed=seed)
    matching = configuration_to_matching(distribution, result.configuration)
    return is_valid_matching(graph, matching), result.rounds
