"""E3 -- Lemma 4.1: boosting total-variation accuracy to multiplicative accuracy.

Compare the multiplicative error of a base (TV-accurate) engine with that of
its boosted version at several target accuracies.  The lemma's claim is that
the boosted engine's multiplicative error is bounded by the requested
``epsilon`` even where the base engine's multiplicative error is large (or
infinite, e.g. on hard-constrained values).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis import multiplicative_error, total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.inference import BoostedInference, BoundaryPaddedInference, correlation_decay_for
from repro.models import coloring_model, hardcore_model


def _workloads():
    hardcore = hardcore_model(cycle_graph(10), fugacity=1.0)
    coloring = coloring_model(cycle_graph(7), num_colors=3)
    return [
        ("hardcore-C10", SamplingInstance(hardcore, {0: 1}), correlation_decay_for(hardcore, decay_rate=0.5)),
        ("coloring-C7-q3", SamplingInstance(coloring, {0: 2}), BoundaryPaddedInference(decay_rate=0.6)),
    ]


def run(epsilons=(0.5, 0.2), probes_per_model: int = 3) -> List[Dict]:
    """Run E3 and return one row per (model, epsilon)."""
    rows: List[Dict] = []
    for name, instance, base in _workloads():
        boosted = BoostedInference(base)
        probes = instance.free_nodes[:: max(1, len(instance.free_nodes) // probes_per_model)]
        probes = probes[:probes_per_model]
        for epsilon in epsilons:
            worst_base_mult = 0.0
            worst_boosted_mult = 0.0
            worst_boosted_tv = 0.0
            for node in probes:
                truth = instance.target_marginal(node)
                base_estimate = base.marginal(instance, node, epsilon)
                boosted_estimate = boosted.marginal(instance, node, epsilon)
                worst_base_mult = max(worst_base_mult, multiplicative_error(base_estimate, truth))
                worst_boosted_mult = max(
                    worst_boosted_mult, multiplicative_error(boosted_estimate, truth)
                )
                worst_boosted_tv = max(worst_boosted_tv, total_variation(boosted_estimate, truth))
            rows.append(
                {
                    "model": name,
                    "epsilon": epsilon,
                    "base_mult_err": worst_base_mult if math.isfinite(worst_base_mult) else float("inf"),
                    "boosted_mult_err": worst_boosted_mult,
                    "boosted_tv": worst_boosted_tv,
                    "boosted_rounds": boosted.locality(instance, epsilon),
                }
            )
    return rows
