"""E6 -- Application: hardcore model in the uniqueness regime, O(log^3 n) rounds.

Sweep the instance size and record the LOCAL round complexity of (a) the
inference step, (b) the approximate sampler of Theorem 3.2 (including the
Lemma 3.1 scheduling overhead) and (c) the exact JVV sampler.  The claim is
polylogarithmic growth: the fitted exponent of ``rounds`` against ``log n``
stays bounded while a power-law fit against ``n`` yields an exponent well
below linear as ``n`` grows.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.fitting import fit_power_law
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.inference import correlation_decay_for
from repro.models import hardcore_model, hardcore_uniqueness_threshold
from repro.sampling import sample_approximate_local, sample_exact_local


def run(
    sizes=(8, 16, 32, 64),
    fugacity_fraction: float = 0.5,
    error: float = 0.05,
    runtime=None,
) -> List[Dict]:
    """Run E6 and return one row per instance size.

    The per-size measurements are independent, so a process runtime (see
    :mod:`repro.runtime`) fans them out across forked workers; the default
    serial runtime runs today's loop.
    """
    from repro.runtime import resolve_runtime

    def row_for(n: int) -> Dict:
        graph = cycle_graph(n)
        max_degree = 2
        threshold = hardcore_uniqueness_threshold(max_degree)
        fugacity = fugacity_fraction if math.isinf(threshold) else fugacity_fraction * threshold
        distribution = hardcore_model(graph, fugacity=fugacity)
        instance = SamplingInstance(distribution, {0: 1})
        engine = correlation_decay_for(distribution, decay_rate=0.5)

        inference_rounds = engine.locality(instance, error)
        approx = sample_approximate_local(instance, engine, error, seed=n)
        exact = sample_exact_local(instance, engine, seed=n)
        return {
            "n": n,
            "fugacity": fugacity,
            "inference_rounds": inference_rounds,
            "sampling_rounds": approx.rounds,
            "exact_rounds": exact.rounds,
            "log3_n": math.log(n) ** 3,
            "sample_feasible": distribution.weight(approx.configuration) > 0,
        }

    return resolve_runtime(runtime).map(row_for, list(sizes))


def fitted_exponent(rows: List[Dict], column: str = "exact_rounds") -> float:
    """Power-law exponent of a round column against n (should be well below 1)."""
    sizes = [row["n"] for row in rows]
    costs = [max(row[column], 1) for row in rows]
    exponent, _ = fit_power_law(sizes, costs)
    return exponent
