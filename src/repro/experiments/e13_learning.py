"""E13 -- Learning: fit-then-sample round trips on every runtime backend.

Close the loop between the forward problem (sampling from a known Gibbs
distribution) and the inverse one (:mod:`repro.learning`): draw a dataset
from a ground-truth Ising model, fit the family back to it with each
estimator (exact pseudo-likelihood and contrastive divergence), then sample
from the *fitted* model and measure how far its node marginals sit from the
truth.  Two claims are on trial:

* both estimators recover the generating weights closely enough that the
  fitted model's exact marginals are within a small total-variation
  distance of the true model's;
* the CD negative phase is backend-invariant -- running it on the serial,
  batched or process runtime yields bit-identical fitted weights, so the
  backend column of the table only changes the wall clock, never the row.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis import total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.learning import IsingFamily, Trainer, encode_configurations
from repro.models import ising_model
from repro.runtime import Runtime, chain_seed_sequences, resolve_runtime


def run(
    nodes: int = 10,
    interaction: float = 0.4,
    external_field: float = 0.25,
    samples: int = 300,
    burn_in: int = 250,
    resample: int = 200,
    methods: Sequence[str] = ("pl", "cd"),
    runtimes: Sequence[str] = ("serial", "batched", "process"),
    probes: int = 4,
    seed: int = 42,
    cd_max_iter: int = 60,
    cd_n_negative: int = 64,
) -> List[Dict]:
    """Run E13 and return one row per (method, runtime) pair.

    Each row fits on the same dataset, rebuilds the fitted distribution,
    samples ``resample`` fresh states from it through the row's runtime, and
    records (a) the worst per-parameter recovery error, (b) the worst exact
    marginal TV between the fitted and true models over ``probes`` nodes,
    and (c) the worst TV between the refreshed samples' empirical marginals
    and the true exact marginals (the full round trip).
    """
    graph = cycle_graph(nodes)
    truth = ising_model(graph, interaction=interaction, external_field=external_field)
    true_instance = SamplingInstance(truth, {})
    true_theta = np.array([interaction, external_field])
    family = IsingFamily(graph)
    compiled = family.template().compiled_engine()

    data = Runtime("batched").run_chains(
        "glauber",
        true_instance,
        burn_in,
        seeds=chain_seed_sequences(seed, samples),
    )
    codes = encode_configurations(compiled, data)
    probe_nodes = true_instance.free_nodes[:probes]
    true_marginals = {
        node: true_instance.target_marginal(node) for node in probe_nodes
    }

    rows: List[Dict] = []
    for method in methods:
        for backend in runtimes:
            runtime = resolve_runtime(backend)
            try:
                trainer = Trainer(
                    family,
                    method=method,
                    runtime=runtime,
                    seed=seed,
                    **(
                        {"max_iter": cd_max_iter, "n_negative": cd_n_negative}
                        if method == "cd"
                        else {}
                    ),
                )
                result = trainer.fit(codes)
                fitted_instance = SamplingInstance(result.distribution, {})
                refreshed = runtime.run_chains(
                    "glauber",
                    fitted_instance,
                    burn_in,
                    seeds=chain_seed_sequences(seed + 1, resample),
                )
                exact_tv = max(
                    total_variation(
                        fitted_instance.target_marginal(node), true_marginals[node]
                    )
                    for node in probe_nodes
                )
                sampled_tv = max(
                    total_variation(
                        _empirical_marginal(refreshed, node), true_marginals[node]
                    )
                    for node in probe_nodes
                )
            finally:
                if backend == "process":
                    runtime.shutdown()
            rows.append(
                {
                    "method": method,
                    "runtime": backend,
                    "interaction": float(result.theta[0]),
                    "external_field": float(result.theta[1]),
                    "max_param_error": float(
                        np.abs(result.theta - true_theta).max()
                    ),
                    "exact_marginal_tv": exact_tv,
                    "sampled_marginal_tv": sampled_tv,
                    "iterations": result.iterations,
                }
            )
    return rows


def _empirical_marginal(states: Sequence[Dict], node) -> Dict:
    """The empirical distribution of ``node`` over sampled configurations."""
    counts: Dict = {}
    for state in states:
        value = state[node]
        counts[value] = counts.get(value, 0) + 1
    return {value: count / len(states) for value, count in counts.items()}


def backend_invariance(rows: Sequence[Dict]) -> Dict[str, bool]:
    """Whether each method's fitted weights agree across all backends."""
    out: Dict[str, bool] = {}
    for method in sorted({row["method"] for row in rows}):
        fitted = [
            (row["interaction"], row["external_field"])
            for row in rows
            if row["method"] == method
        ]
        out[method] = all(pair == fitted[0] for pair in fitted)
    return out
