"""Package version, kept in a standalone module to avoid import cycles."""

__version__ = "1.0.0"
