"""Variable elimination as axis-labelled tensor contractions.

This is the computational core of the compiled evaluation engine: potentials
are ``(axes, array)`` pairs where ``axes`` is a tuple of integer variable ids
and ``array`` a dense NumPy array with one length-``q`` axis per variable.
Multiplication aligns the axes by broadcasting, and summing a variable out is
a single ``ndarray.sum`` -- the dict-of-tuples joins of
:mod:`repro.gibbs.elimination` become a handful of vectorised array
operations per eliminated variable.

The elimination order is the same min-degree heuristic the dict engine uses,
computed on the interaction graph of the (pinning-restricted) potentials.
The order depends only on *which* variables are pinned, never on the pinned
values, so callers can cache it per pinned-domain (see
:class:`repro.engine.compiled.CompiledGibbs`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: A potential: integer variable ids plus a dense array, one axis per id.
Potential = Tuple[Tuple[int, ...], np.ndarray]


def restrict_potential(
    axes: Tuple[int, ...], array: np.ndarray, pin_codes: Mapping[int, int]
) -> Potential:
    """Apply a pinning (variable id -> symbol code) by slicing the array.

    Parameters
    ----------
    axes : tuple of int
        Variable ids labelling the array's axes.
    array : numpy.ndarray
        The dense potential, one length-``q`` axis per entry of ``axes``.
    pin_codes : mapping of int to int
        Pinned variable ids mapped to their symbol codes.

    Returns
    -------
    (tuple of int, numpy.ndarray)
        The surviving axes and the sliced array; the inputs are returned
        unchanged when no axis is pinned.
    """
    if not any(axis in pin_codes for axis in axes):
        return axes, array
    index = tuple(
        pin_codes[axis] if axis in pin_codes else slice(None) for axis in axes
    )
    new_axes = tuple(axis for axis in axes if axis not in pin_codes)
    return new_axes, array[index]


#: Memoised axis-alignment plans keyed by the input axes signature.  The same
#: handful of signatures recurs across every elimination call on a given
#: instance, so the union/sort/reshape bookkeeping is paid once per shape.
_ALIGN_PLANS: Dict[tuple, tuple] = {}
_ALIGN_PLAN_LIMIT = 8192


def _alignment_plan(signature: tuple, q: int) -> tuple:
    plan = _ALIGN_PLANS.get(signature)
    if plan is None:
        union: List[int] = []
        for axes in signature[:-1]:
            for axis in axes:
                if axis not in union:
                    union.append(axis)
        union_axes = tuple(union)
        position = {axis: i for i, axis in enumerate(union_axes)}
        steps = []
        for axes in signature[:-1]:
            if not axes:
                steps.append(None)
                continue
            order = sorted(range(len(axes)), key=lambda i: position[axes[i]])
            shape = [1] * len(union_axes)
            for axis in axes:
                shape[position[axis]] = q
            steps.append(
                (
                    tuple(order) if order != list(range(len(axes))) else None,
                    tuple(shape),
                )
            )
        plan = (union_axes, tuple(steps))
        if len(_ALIGN_PLANS) >= _ALIGN_PLAN_LIMIT:
            _ALIGN_PLANS.clear()
        _ALIGN_PLANS[signature] = plan
    return plan


def min_degree_order(
    scopes: Iterable[Tuple[int, ...]], free: Sequence[int]
) -> Tuple[int, ...]:
    """Min-degree (with fill-in simulation) elimination order over ``free``.

    Mirrors the dict engine's heuristic; integer variable ids make the
    tie-break deterministic without ``repr`` calls.

    Parameters
    ----------
    scopes : iterable of tuple of int
        Variable-id scopes of the potentials (the interaction graph).
    free : sequence of int
        Variables to order; everything else is treated as already gone.

    Returns
    -------
    tuple of int
        A permutation of ``free`` in elimination order.
    """
    neighbors: Dict[int, set] = {variable: set() for variable in free}
    for scope in scopes:
        in_free = [variable for variable in scope if variable in neighbors]
        for u in in_free:
            neighbors[u].update(w for w in in_free if w != u)
    order: List[int] = []
    remaining = set(free)
    while remaining:
        variable = min(remaining, key=lambda v: (len(neighbors[v] & remaining), v))
        order.append(variable)
        live = neighbors[variable] & remaining
        for u in live:
            neighbors[u].update(w for w in live if w != u)
        remaining.discard(variable)
    return tuple(order)


def build_schedule(
    potential_axes: Sequence[Tuple[int, ...]],
    free: Sequence[int],
    q: int,
    keep: Sequence[int] = (),
    order: Optional[Sequence[int]] = None,
) -> Tuple[tuple, Tuple[int, ...]]:
    """Symbolically contract on axes alone; return ``(ops, final_axes)``.

    The ops sequence records the full multiply/sum elimination with all
    bookkeeping (axis unions, transpose orders, broadcast shapes, sum
    positions) resolved ahead of time.  Because the restricted axes depend
    only on *which* variables are pinned -- never on the pinned values -- a
    schedule can be cached per pinned domain and executed with
    :func:`execute_schedule` for every value combination.

    Ops are ``("ones",)`` (append a uniform length-``q`` table for a loose
    free variable) or ``("contract", slot_ids, per_input_specs, sum_position
    Optional[int])`` (broadcast-multiply the slots, then sum out the axis at
    ``sum_position``; ``None`` for the final combine).  Every op appends its
    result slot; the last slot is the final potential.

    Parameters
    ----------
    potential_axes : sequence of tuple of int
        Axis labels of the (already restricted) input potentials.
    free : sequence of int
        Free variables of the query; loose ones get uniform tables.
    q : int
        Alphabet size (every axis has length ``q``).
    keep : sequence of int, optional
        Variables to keep (not sum out) -- the marginal's axes.
    order : sequence of int, optional
        Elimination order; defaults to :func:`min_degree_order`.

    Returns
    -------
    (tuple, tuple of int)
        The op sequence for :func:`execute_schedule` and the axis labels of
        the final potential (a permutation of ``keep``).
    """
    axes_list: List[Tuple[int, ...]] = list(potential_axes)
    ops: List[tuple] = []
    covered = set()
    for axes in axes_list:
        covered.update(axes)
    for variable in free:
        if variable not in covered:
            ops.append(("ones",))
            axes_list.append((variable,))
    keep_set = set(keep)
    if order is None:
        order = min_degree_order(axes_list, free)
    by_variable: Dict[int, List[int]] = {}
    for index, axes in enumerate(axes_list):
        for axis in axes:
            by_variable.setdefault(axis, []).append(index)
    alive = [True] * len(axes_list)
    for variable in order:
        if variable in keep_set:
            continue
        involved_ids = [i for i in by_variable.get(variable, ()) if alive[i]]
        if not involved_ids:
            continue
        for i in involved_ids:
            alive[i] = False
        signature = tuple(axes_list[i] for i in involved_ids) + (q,)
        union_axes, specs = _alignment_plan(signature, q)
        position = union_axes.index(variable)
        new_axes = union_axes[:position] + union_axes[position + 1 :]
        ops.append(("contract", tuple(involved_ids), specs, position))
        index = len(axes_list)
        axes_list.append(new_axes)
        alive.append(True)
        for axis in new_axes:
            by_variable.setdefault(axis, []).append(index)
    rest = [index for index in range(len(axes_list)) if alive[index]]
    signature = tuple(axes_list[i] for i in rest) + (q,)
    union_axes, specs = _alignment_plan(signature, q)
    ops.append(("contract", tuple(rest), specs, None))
    return tuple(ops), union_axes


def execute_schedule(ops: Sequence[tuple], arrays: Sequence[np.ndarray], q: int) -> np.ndarray:
    """Run a :func:`build_schedule` plan on concrete (restricted) arrays.

    Parameters
    ----------
    ops : sequence of tuple
        The op sequence produced by :func:`build_schedule`.
    arrays : sequence of numpy.ndarray
        Restricted potential arrays, in the slot order the plan was built
        for (same pinned domain, any pinned values).
    q : int
        Alphabet size.

    Returns
    -------
    numpy.ndarray
        The final potential; its axes are the ``final_axes`` returned by
        :func:`build_schedule`.
    """
    slots: List[np.ndarray] = list(arrays)
    ones: Optional[np.ndarray] = None
    for op in ops:
        if op[0] == "ones":
            if ones is None:
                ones = np.ones(q)
            slots.append(ones)
            continue
        _, ids, specs, sum_position = op
        result: Optional[np.ndarray] = None
        for i, spec in zip(ids, specs):
            array = slots[i]
            if spec is not None:
                order, shape = spec
                if order is not None:
                    array = array.transpose(order)
                array = array.reshape(shape)
            result = array if result is None else result * array
        if result is None:
            result = np.array(1.0)
        if sum_position is not None:
            result = np.add.reduce(result, axis=sum_position)
        slots.append(result)
    return slots[-1]
