"""Array-backed compiled evaluation engine for Gibbs distributions.

This package is the fast execution backend of the repository.  It compiles a
:class:`~repro.gibbs.distribution.GibbsDistribution` (or any ball-restricted
sub-instance) into integer-indexed form -- nodes to contiguous ints, alphabet
symbols to codes, factors to dense NumPy weight arrays -- and replaces the
pure-Python dict joins of :mod:`repro.gibbs.elimination` with axis-labelled
tensor contractions.

Architecture
------------

``contraction``
    The numeric core: potentials as ``(axes, array)`` pairs, broadcast
    multiplication, axis sums, and the min-degree elimination order.
``compiled``
    :class:`CompiledGibbs` -- the integer-indexed instance with cached
    elimination orders and memoised marginals.
``cache``
    :class:`BallCache` -- memoised compilation of ball-restricted
    sub-instances keyed by ``(center, radius)``, with per-pinning-signature
    marginal memoisation inside each compiled ball.
``conditionals``
    :class:`CompiledConditionals` -- per-node gathered factor tables that
    turn a Glauber conditional into one gather plus a product over the
    alphabet axis.

Backend selection
-----------------

Every public evaluation API (``eliminate_partition_function``,
``eliminate_marginal``, ``GibbsDistribution.partition_function`` /
``marginal``, ``local_conditional``, the ball-local inference engines)
accepts an ``engine`` keyword: ``"compiled"`` (the default) routes through
this package, ``"dict"`` selects the reference dict-of-tuples implementation.
Passing ``engine=None`` means "use the default".  The two backends agree to
numerical precision (see ``tests/test_engine_equivalence.py``); the dict
engine is retained as the independently-implemented ground truth.
"""

from __future__ import annotations

from repro.engine.cache import BallCache
from repro.engine.compiled import CompiledGibbs
from repro.engine.conditionals import CompiledConditionals

#: The reference pure-Python backend (dict-of-tuples joins).
DICT_ENGINE = "dict"
#: The array-backed compiled backend.
COMPILED_ENGINE = "compiled"
#: Backend used when callers pass ``engine=None``.
DEFAULT_ENGINE = COMPILED_ENGINE

_ENGINES = (DICT_ENGINE, COMPILED_ENGINE)


def resolve_engine(engine) -> str:
    """Normalise an ``engine=`` argument, rejecting unknown backends.

    Parameters
    ----------
    engine : None or str
        ``None`` (use the default), :data:`DICT_ENGINE` or
        :data:`COMPILED_ENGINE`.

    Returns
    -------
    str
        The resolved backend name.

    Raises
    ------
    ValueError
        For any other value.
    """
    if engine is None:
        return DEFAULT_ENGINE
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown evaluation engine {engine!r}; expected one of {_ENGINES}"
        )
    return engine


__all__ = [
    "BallCache",
    "CompiledGibbs",
    "CompiledConditionals",
    "DICT_ENGINE",
    "COMPILED_ENGINE",
    "DEFAULT_ENGINE",
    "resolve_engine",
]
