"""Vectorised single-site conditionals for the Glauber/LubyGlauber chains.

For each node ``v`` the constructor pre-gathers every factor containing
``v``: the factor array is transposed so ``v``'s axis comes first and stored
as a flat C-order weight list plus the strides of the remaining scope nodes.
A conditional at ``v`` is then one offset computation and one strided slice
per factor -- the slice *is* the gather over the alphabet axis -- followed by
an elementwise product of length-``q`` lists.  No dict construction, no
per-value ``Factor.evaluate`` calls, and (deliberately) no NumPy in the
per-step path: for the tiny ``q`` of the paper's models plain Python floats
beat ndarray scalar overhead by a wide margin.
"""

from __future__ import annotations

from typing import Hashable, List, Mapping, Tuple

import numpy as np

Node = Hashable
Value = Hashable

#: Per-factor entry: (flat weights, stride of the alphabet axis,
#: other scope node ids, strides of the other scope nodes).
_Entry = Tuple[List[float], int, Tuple[int, ...], Tuple[int, ...]]


class CompiledConditionals:
    """Per-node gathered factor tables supporting one-slice local conditionals.

    Parameters
    ----------
    compiled : CompiledGibbs
        The compiled instance whose factors are gathered; reached lazily
        through :attr:`CompiledGibbs.conditionals` in normal use.
    """

    __slots__ = ("compiled", "q", "tables", "_uniform")

    def __init__(self, compiled) -> None:
        self.compiled = compiled
        q = compiled.q
        self.q = q
        tables: List[List[_Entry]] = [[] for _ in compiled.nodes]
        for scope, array in zip(compiled.scopes, compiled.arrays):
            for position, variable in enumerate(scope):
                moved = np.ascontiguousarray(np.moveaxis(array, position, 0))
                flat = moved.ravel().tolist()
                others = scope[:position] + scope[position + 1 :]
                # C-order strides of the trailing axes, in units of items.
                strides = tuple(q ** (len(others) - 1 - i) for i in range(len(others)))
                stride0 = q ** len(others)
                tables[variable].append((flat, stride0, others, strides))
        self.tables: Tuple[Tuple[_Entry, ...], ...] = tuple(
            tuple(entries) for entries in tables
        )
        self._uniform = [1.0] * q

    # ------------------------------------------------------------------
    def weights_by_codes(self, variable: int, codes) -> List[float]:
        """Unnormalised conditional weights of ``variable`` as a length-``q`` list.

        Parameters
        ----------
        variable : int
            Integer id of the node being resampled.
        codes
            Indexable by node id; must hold the current symbol code of every
            node appearing in a factor with ``variable``.

        Returns
        -------
        list of float
            One weight per alphabet code (uniform for factorless nodes).
        """
        weights = None
        for flat, stride0, others, strides in self.tables[variable]:
            offset = 0
            for other, stride in zip(others, strides):
                offset += codes[other] * stride
            gathered = flat[offset::stride0]
            if weights is None:
                weights = gathered
            else:
                weights = [w * g for w, g in zip(weights, gathered)]
        if weights is None:
            return list(self._uniform)
        return weights

    def weights_partial(self, variable: int, codes) -> List[float]:
        """Like :meth:`weights_by_codes` but skipping factors whose other
        scope nodes are not yet assigned (``code < 0`` marks unassigned).

        This is the greedy-construction primitive: only fully assigned
        factors constrain the choice, matching the reference implementation.

        Parameters
        ----------
        variable : int
            Integer id of the node being assigned.
        codes
            Indexable by node id; ``-1`` entries mark unassigned nodes.

        Returns
        -------
        list of float
            One weight per alphabet code, constrained only by the factors
            whose scope is fully assigned.
        """
        weights = None
        for flat, stride0, others, strides in self.tables[variable]:
            offset = 0
            unassigned = False
            for other, stride in zip(others, strides):
                code = codes[other]
                if code < 0:
                    unassigned = True
                    break
                offset += code * stride
            if unassigned:
                continue
            gathered = flat[offset::stride0]
            if weights is None:
                weights = gathered
            else:
                weights = [w * g for w, g in zip(weights, gathered)]
        if weights is None:
            return list(self._uniform)
        return weights

    def weights_by_mapping(
        self, node: Node, configuration: Mapping[Node, Value]
    ) -> List[float]:
        """Conditional weights of ``node`` given a dict configuration.

        Only the neighbours of ``node`` inside its factors are read, so this
        stays a strictly local ``O(deg)`` computation.  The kernel is
        delegated to :meth:`weights_by_codes` via a sparse code mapping.
        """
        compiled = self.compiled
        variable = compiled.node_index[node]
        symbol_index = compiled.symbol_index
        nodes = compiled.nodes
        codes: dict = {}
        for _, _, others, _ in self.tables[variable]:
            for other in others:
                if other not in codes:
                    codes[other] = symbol_index[configuration[nodes[other]]]
        return self.weights_by_codes(variable, codes)
