"""Memoised compilation of ball-restricted sub-instances.

Every ball-local algorithm in the repository (the Theorem 5.1 SSM inference
engines, the boosting lemma, the JVV sampler's inference calls) repeats the
same expensive preamble: extract ``B_r(v)``, collect the factors inside it,
and run variable elimination on the restriction.  :class:`BallCache` keys the
compiled restriction by ``(center, radius)`` -- the ball node set and factor
arrays never change for a fixed distribution -- and the per-query marginal
memo inside each :class:`~repro.engine.compiled.CompiledGibbs` adds the
pinning signature, so a repeated ``(center, radius, pinning)`` query is a
dict hit instead of a recompilation.

The cache lives on the :class:`~repro.gibbs.distribution.GibbsDistribution`
(see :meth:`GibbsDistribution.ball_marginal`), which makes it shared across
all :class:`~repro.gibbs.instance.SamplingInstance` objects conditioned from
the same distribution -- exactly the access pattern of the JVV passes, which
create a fresh conditioned instance per query.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

from repro import obs
from repro.engine.compiled import CompiledGibbs
from repro.graphs.structure import distances_from

Node = Hashable
Value = Hashable

#: Cap on retained compiled balls; the whole cache resets when exceeded
#: (same reset-when-full policy as the memos inside ``CompiledGibbs``),
#: keeping radius sweeps over large instances memory-bounded.
_BALL_CACHE_LIMIT = 4096
#: Cap on the scratch memo space (``extras``).
_EXTRAS_LIMIT = 65536


class BallCache:
    """Compiled ball-restricted sub-instances of one distribution."""

    __slots__ = (
        "_distribution",
        "_ball_nodes",
        "_distances",
        "_compiled",
        "extras",
        "hits",
        "misses",
        "compiles",
        "adoptions",
        "drops",
    )

    def __init__(self, distribution) -> None:
        self._distribution = distribution
        self._ball_nodes: Dict[Tuple[Node, int], frozenset] = {}
        self._distances: Dict[Node, Tuple[int, Dict[Node, int]]] = {}
        self._compiled: Dict[Tuple[Node, int], CompiledGibbs] = {}
        #: Scratch memo space for ball-local algorithms (e.g. the SSM
        #: engines' greedy boundary extensions); cleared with the cache.
        self.extras: Dict = {}
        # Lifetime stats -- plain always-on ints (a few ns per lookup), so
        # ``stats()`` answers even when repro.obs is disabled.  ``drops``
        # counts entries discarded by cap resets plus marginal-memo deltas
        # adopted for balls this cache does not hold.
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.adoptions = 0
        self.drops = 0

    # ------------------------------------------------------------------
    def ball_nodes(self, center: Node, radius: int) -> frozenset:
        """The node set of ``B_radius(center)`` (memoised).

        One BFS per ``(center, largest radius seen)``: smaller balls around
        the same center are sliced out of the cached distance map, so the
        inner/padded/context triple of the SSM engines costs a single
        traversal.
        """
        key = (center, radius)
        nodes = self._ball_nodes.get(key)
        if nodes is None:
            known_radius, distances = self._distances.get(center, (-1, None))
            if distances is None or known_radius < radius:
                distances = distances_from(self._distribution.graph, center, radius)
                if len(self._distances) >= _BALL_CACHE_LIMIT:
                    self._distances.clear()
                self._distances[center] = (radius, distances)
            nodes = frozenset(
                node for node, distance in distances.items() if distance <= radius
            )
            if len(self._ball_nodes) >= 4 * _BALL_CACHE_LIMIT:
                self._ball_nodes.clear()
            self._ball_nodes[key] = nodes
        return nodes

    def compiled_ball(self, center: Node, radius: int) -> CompiledGibbs:
        """The compiled restriction to ``B_radius(center)`` (memoised).

        Nodes are ordered by ``repr`` to match the dict engine's convention;
        only factors fully contained in the ball are compiled, so the result
        computes exactly the ball-restricted quantities of the paper.

        Parameters
        ----------
        center : node
            Ball center.
        radius : int
            Ball radius in graph distance.

        Returns
        -------
        CompiledGibbs
            The compiled sub-instance, shared across repeated queries.
        """
        key = (center, radius)
        compiled = self._compiled.get(key)
        if compiled is not None:
            self.hits += 1
            return compiled
        self.misses += 1
        self.compiles += 1
        with obs.span("engine.compile_ball", center=repr(center), radius=radius):
            distribution = self._distribution
            nodes = sorted(self.ball_nodes(center, radius), key=repr)
            factors = distribution.factors_within(nodes)
            compiled = CompiledGibbs.from_factors(nodes, distribution.alphabet, factors)
        if len(self._compiled) >= _BALL_CACHE_LIMIT:
            self.drops += len(self._compiled)
            self.clear()
        self._compiled[key] = compiled
        handle = obs.active()
        if handle is not None:
            handle.metrics.counter("engine.ball_cache.compiles").inc()
        return compiled

    def cached_extra(self, key, factory):
        """Memoise an arbitrary ball-local computation under this cache.

        Callers namespace their keys with a leading tag string (e.g.
        ``("boundary-extension", center, radius, pinning_signature)``); the
        reset-when-full policy lives here so every user of the scratch space
        shares one eviction discipline.
        """
        value = self.extras.get(key)
        if value is None:
            value = factory()
            if len(self.extras) >= _EXTRAS_LIMIT:
                self.extras.clear()
            self.extras[key] = value
        return value

    def adopt(
        self,
        balls: Optional[Mapping[Tuple[Node, int], CompiledGibbs]] = None,
        extras: Optional[Mapping] = None,
        memos: Optional[Mapping[Tuple[Node, int], Mapping]] = None,
    ) -> int:
        """Merge worker-produced results into this cache.

        This is the parent side of the process-sharding protocol
        (:mod:`repro.runtime.shards`): workers compile balls (and memoise
        ball-local scratch results such as greedy boundary extensions and
        per-pinning marginals) for their shard of the key space, and
        adopting them here turns later serial queries into cache hits.  The
        streaming executor calls this incrementally, once per arriving
        shard, so the cache warms while other shards are still in flight.
        Existing entries win -- worker results are equal by construction, so
        there is nothing to reconcile.

        Parameters
        ----------
        balls : mapping, optional
            ``{(center, radius): CompiledGibbs}`` worker compilations.
        extras : mapping, optional
            Scratch memo entries (e.g. greedy boundary extensions), merged
            into :attr:`extras` under the shared eviction discipline.
        memos : mapping, optional
            ``{(center, radius): exported marginal memo}`` deltas (see
            :meth:`CompiledGibbs.export_marginal_memo`), installed into the
            matching compiled ball -- the one adopted from ``balls`` or an
            already-cached equal one.  Deltas for balls this cache does not
            hold are dropped.

        Returns
        -------
        int
            Number of entries added (balls + extras + memo entries).
        """
        added = 0
        for key, compiled in (balls or {}).items():
            if key not in self._compiled:
                if len(self._compiled) >= _BALL_CACHE_LIMIT:
                    self.drops += len(self._compiled)
                    self.clear()
                self._compiled[key] = compiled
                added += 1
        for key, value in (extras or {}).items():
            if key not in self.extras:
                if len(self.extras) >= _EXTRAS_LIMIT:
                    self.drops += len(self.extras)
                    self.extras.clear()
                self.extras[key] = value
                added += 1
        for key, entries in (memos or {}).items():
            target = self._compiled.get(key)
            if target is not None and entries:
                added += target.absorb_marginal_memo(entries)
            elif target is None and entries:
                self.drops += len(entries)
        self.adoptions += added
        handle = obs.active()
        if handle is not None:
            handle.metrics.counter("engine.ball_cache.adoptions").inc(added)
        return added

    def stats(self) -> Dict[str, int]:
        """Lifetime cache statistics (available with obs disabled).

        Returns ``hits``/``misses``/``compiles`` of :meth:`compiled_ball`,
        ``adoptions`` merged by :meth:`adopt`, ``drops`` (cap-reset
        evictions plus memo deltas for unheld balls), and the current
        ``size`` of the compiled-ball store.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "adoptions": self.adoptions,
            "drops": self.drops,
            "size": len(self._compiled),
        }

    # ------------------------------------------------------------------
    def ball_marginal(
        self,
        center: Node,
        radius: int,
        pinning: Mapping[Node, Value],
        node: Node,
    ) -> Dict[Value, float]:
        """Exact marginal of ``node`` in the ball-restricted sub-instance.

        The pinning is restricted to the ball automatically; pinned query
        nodes return a point mass.  Results are memoised per
        ``(center, radius, pinning signature)``.

        Parameters
        ----------
        center, radius
            Identify the ball ``B_radius(center)``.
        pinning : mapping of node to value
            Boundary condition; entries outside the ball are dropped.
        node : node
            The query node (must lie inside the ball).

        Returns
        -------
        dict
            ``{value: probability}`` over the alphabet.
        """
        compiled = self.compiled_ball(center, radius)
        in_ball = compiled.node_index
        restricted = {n: v for n, v in pinning.items() if n in in_ball}
        return compiled.marginal(node, restricted)

    def clear(self) -> None:
        """Drop all compiled balls (used by tests and memory-pressure hooks)."""
        self._ball_nodes.clear()
        self._distances.clear()
        self._compiled.clear()
        self.extras.clear()
