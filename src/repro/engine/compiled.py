"""Integer-indexed compilation of a Gibbs distribution.

:class:`CompiledGibbs` maps nodes to contiguous integers, alphabet symbols to
integer codes, and materialises every factor as a dense NumPy weight array
with one length-``q`` axis per scope node.  Partition functions and marginals
are then computed by the tensor-contraction eliminator of
:mod:`repro.engine.contraction` instead of the reference dict-of-tuples
engine in :mod:`repro.gibbs.elimination`.

The class is deliberately standalone (it never imports
:class:`~repro.gibbs.distribution.GibbsDistribution`): it is built either
from :class:`~repro.gibbs.factors.Factor`-like objects
(:meth:`CompiledGibbs.from_factors`) or from raw ``(scope, table)`` pairs
(:meth:`CompiledGibbs.from_tables`), so it can compile full instances as well
as ball-restricted sub-instances.

Two memoisations make repeated queries cheap:

* elimination orders are cached per pinned *domain* (the min-degree order
  does not depend on the pinned values);
* marginals are cached per ``(node, pinning signature)`` -- the signature is
  the encoded ``(variable, code)`` item set, so e.g. the JVV sampler's
  repeated acceptance-ratio queries hit the cache instead of re-eliminating.

Both caches are size-capped and simply reset when full, which keeps
long-running chains memory-bounded without LRU bookkeeping overhead.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.engine.contraction import (
    build_schedule,
    execute_schedule,
    min_degree_order,
    restrict_potential,
)

Node = Hashable
Value = Hashable

#: Cap on cached elimination orders (distinct pinned domains).
_ORDER_CACHE_LIMIT = 4096
#: Cap on cached marginals (distinct ``(node, pinning)`` queries).
_MARGINAL_CACHE_LIMIT = 65536


class CompiledGibbs:
    """A Gibbs (sub-)instance compiled to integer-indexed dense arrays.

    Parameters
    ----------
    nodes : sequence of node
        Node labels; positions become the integer variable ids.
    alphabet : sequence of value
        Symbol labels; positions become the integer codes.
    scopes : sequence of tuple of int
        Per-factor variable-id scopes.
    arrays : sequence of numpy.ndarray
        Per-factor dense weight tables, one length-``q`` axis per scope
        entry.

    Attributes
    ----------
    node_index, symbol_index : dict
        Inverse maps of ``nodes`` / ``alphabet``.
    q : int
        Alphabet size.
    factors_at : tuple of tuple of int
        Factor ids touching each variable.
    """

    __slots__ = (
        "nodes",
        "node_index",
        "alphabet",
        "symbol_index",
        "q",
        "scopes",
        "arrays",
        "factors_at",
        "fused_scopes",
        "fused_arrays",
        "_order_cache",
        "_schedule_cache",
        "_marginal_memo",
        "_conditionals",
    )

    def __init__(
        self,
        nodes: Sequence[Node],
        alphabet: Sequence[Value],
        scopes: Sequence[Tuple[int, ...]],
        arrays: Sequence[np.ndarray],
    ) -> None:
        self.nodes: Tuple[Node, ...] = tuple(nodes)
        self.node_index: Dict[Node, int] = {node: i for i, node in enumerate(self.nodes)}
        self.alphabet: Tuple[Value, ...] = tuple(alphabet)
        self.symbol_index: Dict[Value, int] = {value: i for i, value in enumerate(self.alphabet)}
        self.q = len(self.alphabet)
        self.scopes: Tuple[Tuple[int, ...], ...] = tuple(tuple(scope) for scope in scopes)
        self.arrays: Tuple[np.ndarray, ...] = tuple(arrays)
        factors_at: List[List[int]] = [[] for _ in self.nodes]
        for factor_id, scope in enumerate(self.scopes):
            for variable in scope:
                factors_at[variable].append(factor_id)
        self.factors_at: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(ids) for ids in factors_at
        )
        self.fused_scopes, self.fused_arrays = _fuse_factors(self.scopes, self.arrays)
        self._order_cache: Dict[frozenset, Tuple[int, ...]] = {}
        self._schedule_cache: Dict[tuple, tuple] = {}
        self._marginal_memo: Dict[tuple, Dict[Value, float]] = {}
        self._conditionals = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_factors(
        cls, nodes: Sequence[Node], alphabet: Sequence[Value], factors: Sequence
    ) -> "CompiledGibbs":
        """Compile :class:`~repro.gibbs.factors.Factor`-like objects.

        Each factor must expose ``scope`` and ``dense_table(alphabet)``; the
        dense table is cached on the factor, so compiling many overlapping
        balls of the same distribution materialises each factor only once.
        """
        node_index = {node: i for i, node in enumerate(nodes)}
        scopes = [tuple(node_index[node] for node in factor.scope) for factor in factors]
        arrays = [factor.dense_table(alphabet) for factor in factors]
        return cls(nodes, alphabet, scopes, arrays)

    @classmethod
    def from_tables(
        cls,
        nodes: Sequence[Node],
        alphabet: Sequence[Value],
        tables: Sequence[Tuple[Sequence[Node], Mapping[Tuple[Value, ...], float]]],
    ) -> "CompiledGibbs":
        """Compile raw ``(scope, table)`` pairs (the dict engine's input format)."""
        node_index = {node: i for i, node in enumerate(nodes)}
        symbol_index = {value: i for i, value in enumerate(alphabet)}
        q = len(alphabet)
        scopes: List[Tuple[int, ...]] = []
        arrays: List[np.ndarray] = []
        for scope, entries in tables:
            scopes.append(tuple(node_index[node] for node in scope))
            array = np.zeros((q,) * len(scope))
            for key, weight in entries.items():
                codes = tuple(symbol_index.get(value) for value in key)
                if any(code is None for code in codes):
                    continue
                array[codes] = weight
            arrays.append(array)
        return cls(nodes, alphabet, scopes, arrays)

    def reweighted(self, arrays: Sequence[np.ndarray]) -> "CompiledGibbs":
        """A compiled twin with new factor weights on the same structure.

        The learning loop re-evaluates the model at a fresh parameter vector
        every iteration; the nodes, alphabet and factor scopes never change,
        only the dense weight tables do.  Elimination orders and contraction
        schedules depend solely on the scope structure and the pinned domain,
        so the twin *shares* those caches by reference (both sides keep
        warming the same dicts), while the value-dependent state -- fused
        tables, marginal memo, gathered conditionals -- is rebuilt fresh.
        """
        if len(arrays) != len(self.scopes):
            raise ValueError(
                f"expected {len(self.scopes)} factor arrays, got {len(arrays)}"
            )
        for scope, array in zip(self.scopes, arrays):
            if np.shape(array) != (self.q,) * len(scope):
                raise ValueError(
                    f"factor array shape {np.shape(array)} does not match scope "
                    f"{scope} over a q={self.q} alphabet"
                )
        twin = CompiledGibbs(self.nodes, self.alphabet, self.scopes, arrays)
        twin._order_cache = self._order_cache
        twin._schedule_cache = self._schedule_cache
        return twin

    # ------------------------------------------------------------------
    # pinning encoding
    # ------------------------------------------------------------------
    def _encode_pinning(
        self, pinning: Mapping[Node, Value]
    ) -> Optional[Tuple[Dict[int, int], frozenset]]:
        """Encode a pinning as variable codes.

        Returns ``(pin_codes, pinned_domain)``; pinned nodes outside this
        sub-instance are ignored.  ``None`` signals a trivially infeasible
        pinning (a factored node pinned to a symbol outside the alphabet).
        """
        pin_codes: Dict[int, int] = {}
        pinned: set = set()
        for node, value in pinning.items():
            variable = self.node_index.get(node)
            if variable is None:
                continue
            pinned.add(variable)
            code = self.symbol_index.get(value)
            if code is None:
                if self.factors_at[variable]:
                    return None
                continue
            pin_codes[variable] = code
        return pin_codes, frozenset(pinned)

    def _order_for(self, pinned: frozenset) -> Tuple[int, ...]:
        order = self._order_cache.get(pinned)
        if order is None:
            if pinned:
                # Pinning a variable only removes it from scopes, so the
                # elimination graph under the base (unpinned) order is a
                # subgraph of the unpinned one: filtering the base order
                # never increases the induced width, and skips re-running
                # the min-degree heuristic per pinned domain.
                order = tuple(v for v in self._order_for(frozenset()) if v not in pinned)
            else:
                free = list(range(len(self.nodes)))
                covered = set()
                for scope in self.fused_scopes:
                    covered.update(scope)
                scopes = list(self.fused_scopes) + [(v,) for v in free if v not in covered]
                order = min_degree_order(scopes, free)
            if len(self._order_cache) >= _ORDER_CACHE_LIMIT:
                self._order_cache.clear()
            self._order_cache[pinned] = order
        return order

    def _restricted_arrays(self, pin_codes: Mapping[int, int]):
        if not pin_codes:
            return self.fused_arrays
        return [
            restrict_potential(scope, array, pin_codes)[1]
            for scope, array in zip(self.fused_scopes, self.fused_arrays)
        ]

    def _schedule_for(self, pinned: frozenset, keep: Tuple[int, ...]) -> tuple:
        """The cached contraction schedule for a pinned domain and kept axes.

        The schedule (see :func:`repro.engine.contraction.build_schedule`)
        depends only on which variables are pinned, so sweeps that re-query
        the same domain with different pinned values (SSM measurement, the
        phase-transition experiment, JVV acceptance ratios) replay pure
        array operations with no elimination bookkeeping.
        """
        key = (pinned, keep)
        schedule = self._schedule_cache.get(key)
        handle = obs.active()
        if schedule is None:
            if handle is not None:
                handle.metrics.counter("engine.schedule_cache.misses").inc()
            restricted_axes = [
                tuple(v for v in scope if v not in pinned) for scope in self.fused_scopes
            ]
            free = [v for v in range(len(self.nodes)) if v not in pinned]
            schedule = build_schedule(
                restricted_axes, free, self.q, keep=keep, order=self._order_for(pinned)
            )
            if len(self._schedule_cache) >= _ORDER_CACHE_LIMIT:
                self._schedule_cache.clear()
            self._schedule_cache[key] = schedule
        elif handle is not None:
            handle.metrics.counter("engine.schedule_cache.hits").inc()
        return schedule

    # ------------------------------------------------------------------
    # pickling (the process runtime ships compiled instances and balls
    # between workers; see :mod:`repro.runtime.shards`)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Ship only the immutable compiled form.

        The memo caches, fused tables and gathered conditionals are all
        derived state: dropping them keeps worker payloads small and the
        receiving side rebuilds them lazily on first use.
        """
        return (self.nodes, self.alphabet, self.scopes, self.arrays)

    def __setstate__(self, state) -> None:
        nodes, alphabet, scopes, arrays = state
        self.__init__(nodes, alphabet, scopes, arrays)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def partition_function(self, pinning: Mapping[Node, Value]) -> float:
        """Exact conditional partition function ``Z(tau)``.

        Parameters
        ----------
        pinning : mapping of node to value
            The boundary condition ``tau``; nodes outside this sub-instance
            are ignored.

        Returns
        -------
        float
            ``sum_sigma prod_f f(sigma)`` over configurations extending the
            pinning; ``0.0`` for a trivially infeasible pinning.
        """
        encoded = self._encode_pinning(pinning)
        if encoded is None:
            return 0.0
        pin_codes, pinned = encoded
        ops, _ = self._schedule_for(pinned, ())
        array = execute_schedule(ops, self._restricted_arrays(pin_codes), self.q)
        return float(array.sum())

    def marginal_weights(self, node: Node, pinning: Mapping[Node, Value]) -> np.ndarray:
        """Unnormalised marginal weights of ``node``, in alphabet-code order.

        Parameters
        ----------
        node : node
            The query node; must belong to this sub-instance and be free
            under the pinning.
        pinning : mapping of node to value
            The boundary condition.

        Returns
        -------
        numpy.ndarray
            Length-``q`` weights in alphabet-code order; all zeros for a
            trivially infeasible pinning.

        Raises
        ------
        ValueError
            When the node is not part of the sub-instance or not free.
        """
        variable = self.node_index.get(node)
        if variable is None:
            raise ValueError(f"node {node!r} is not part of the instance")
        encoded = self._encode_pinning(pinning)
        if encoded is None:
            return np.zeros(self.q)
        pin_codes, pinned = encoded
        ops, axes = self._schedule_for(pinned, (variable,))
        array = execute_schedule(ops, self._restricted_arrays(pin_codes), self.q)
        if axes == ():
            # The kept node was pinned away or is outside the free set.
            raise ValueError(f"node {node!r} is not free in this query")
        # Sum out any stray kept axes (cannot happen with keep=(variable,),
        # but keeps the contract with multi-node callers honest).
        while len(axes) > 1:
            drop = next(a for a in axes if a != variable)
            index = axes.index(drop)
            axes = axes[:index] + axes[index + 1 :]
            array = array.sum(axis=index)
        return np.asarray(array, dtype=float)

    def joint_marginal_weights(
        self, nodes: Sequence[Node], pinning: Mapping[Node, Value]
    ) -> Tuple[Tuple[Node, ...], np.ndarray]:
        """Unnormalised joint weights over a node tuple, as one dense array.

        Returns ``(free_query_nodes, array)``: the query nodes that are not
        pinned (first-occurrence order) and an array with one alphabet axis
        per such node.  The whole joint is produced by a *single* contraction
        schedule with multiple kept axes -- not by looping value tuples over
        ``partition_function`` -- so the elimination work is paid once per
        pinned domain regardless of the alphabet size.
        """
        variables: List[int] = []
        for node in nodes:
            variable = self.node_index.get(node)
            if variable is None:
                raise ValueError(f"node {node!r} is not part of the instance")
            variables.append(variable)
        encoded = self._encode_pinning(pinning)
        if encoded is None:
            free = tuple(
                dict.fromkeys(
                    self.nodes[v]
                    for v, node in zip(variables, nodes)
                    if node not in pinning
                )
            )
            return free, np.zeros((self.q,) * len(free))
        pin_codes, pinned = encoded
        keep = tuple(dict.fromkeys(v for v in variables if v not in pinned))
        ops, axes = self._schedule_for(pinned, keep)
        array = execute_schedule(ops, self._restricted_arrays(pin_codes), self.q)
        if keep:
            # ``axes`` is a permutation of ``keep`` (every other free
            # variable was summed out); realign to the query order.
            perm = tuple(axes.index(v) for v in keep)
            if perm != tuple(range(len(axes))):
                array = np.transpose(array, perm)
        return (
            tuple(self.nodes[v] for v in keep),
            np.asarray(array, dtype=float),
        )

    def marginal(self, node: Node, pinning: Mapping[Node, Value]) -> Dict[Value, float]:
        """Exact conditional marginal ``mu^tau_v`` as a dict over the alphabet.

        Pinned nodes return a point mass.  Results are memoised per
        ``(node, pinning signature)``.

        Parameters
        ----------
        node : node
            The query node ``v``.
        pinning : mapping of node to value
            The boundary condition ``tau``.

        Returns
        -------
        dict
            ``{value: probability}`` over the full alphabet (a fresh copy).

        Raises
        ------
        ValueError
            When the conditional partition function is zero (infeasible
            pinning).
        """
        if node in pinning:
            pinned_value = pinning[node]
            return {value: (1.0 if value == pinned_value else 0.0) for value in self.alphabet}
        encoded = self._encode_pinning(pinning)
        if encoded is None:
            raise ValueError("infeasible pinning: conditional partition function is zero")
        pin_codes, pinned = encoded
        key = (
            self.node_index.get(node),
            tuple(sorted(pinned)),
            tuple(sorted(pin_codes.items())),
        )
        cached = self._marginal_memo.get(key)
        if cached is None:
            weights = self.marginal_weights(node, pinning)
            total = float(weights.sum())
            if total <= 0.0:
                raise ValueError(
                    "infeasible pinning: conditional partition function is zero"
                )
            cached = {
                value: float(weights[code] / total)
                for code, value in enumerate(self.alphabet)
            }
            if len(self._marginal_memo) >= _MARGINAL_CACHE_LIMIT:
                self._marginal_memo.clear()
            self._marginal_memo[key] = cached
        return dict(cached)

    # ------------------------------------------------------------------
    # marginal-memo deltas (the streaming process runtime ships the memos
    # workers populated back to the parent; see :mod:`repro.runtime.shards`)
    # ------------------------------------------------------------------
    def export_marginal_memo(
        self, cap: Optional[int] = None
    ) -> Dict[tuple, Dict[Value, float]]:
        """Snapshot the per-pinning marginal memo for shipping to a peer.

        Pickling a :class:`CompiledGibbs` deliberately drops its memo caches
        (see :meth:`__getstate__`), so a process worker that computed
        marginals would otherwise hand back compiled balls whose memos the
        parent recomputes from scratch.  This method extracts the memo as
        plain data -- entry keys are integer-encoded pinning signatures,
        which are identical on both sides because the node ordering of a
        compiled ball is deterministic.

        Parameters
        ----------
        cap : int, optional
            Maximum number of entries to export (insertion order).  ``None``
            exports the whole memo.

        Returns
        -------
        dict
            ``{memo key: marginal dict}``, at most ``cap`` entries, each
            marginal a fresh copy safe to mutate or pickle.
        """
        items = self._marginal_memo.items()
        if cap is not None:
            if cap <= 0:
                return {}
            items = itertools.islice(items, cap)
        return {key: dict(value) for key, value in items}

    def absorb_marginal_memo(
        self, entries: Mapping[tuple, Mapping[Value, float]]
    ) -> int:
        """Install exported memo entries produced by an equal compiled peer.

        The parent side of the memo-delta protocol: entries computed by a
        worker on a bit-identical compiled ball are installed directly, so
        the parent's first query of the same ``(node, pinning)`` is a memo
        hit instead of a fresh elimination.

        Existing entries always win, and absorption never evicts -- when the
        memo is at :data:`_MARGINAL_CACHE_LIMIT` capacity the remaining
        entries are dropped rather than clearing locally computed state.

        Parameters
        ----------
        entries : mapping
            The output of :meth:`export_marginal_memo` on an equal instance.

        Returns
        -------
        int
            Number of entries actually installed.
        """
        memo = self._marginal_memo
        added = 0
        for key, value in entries.items():
            if key in memo:
                continue
            if len(memo) >= _MARGINAL_CACHE_LIMIT:
                break
            memo[key] = dict(value)
            added += 1
        return added

    def configuration_weight(self, configuration: Mapping[Node, Value]) -> float:
        """Product of all factor weights on a full configuration.

        Parameters
        ----------
        configuration : mapping of node to value
            A full assignment covering every node of the sub-instance.

        Returns
        -------
        float
            ``prod_f f(configuration)``, short-circuiting at the first zero.

        Raises
        ------
        KeyError
            When a node is missing from the configuration or a value is
            outside the alphabet (callers fall back to the generic
            evaluation path in that case).
        """
        codes = [self.symbol_index[configuration[node]] for node in self.nodes]
        weight = 1.0
        for scope, array in zip(self.scopes, self.arrays):
            weight *= float(array[tuple(codes[v] for v in scope)])
            if weight == 0.0:
                return 0.0
        return weight

    # ------------------------------------------------------------------
    @property
    def conditionals(self):
        """Per-node gathered factor tables for vectorised local conditionals."""
        if self._conditionals is None:
            from repro.engine.conditionals import CompiledConditionals

            self._conditionals = CompiledConditionals(self)
        return self._conditionals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledGibbs(n={len(self.nodes)}, q={self.q}, "
            f"factors={len(self.scopes)})"
        )


def _fuse_factors(
    scopes: Sequence[Tuple[int, ...]], arrays: Sequence[np.ndarray]
) -> Tuple[Tuple[Tuple[int, ...], ...], Tuple[np.ndarray, ...]]:
    """Statically fold factors into fewer tables for the elimination path.

    Factors with identical scope sets are multiplied together, and unary
    factors are absorbed into some multi-node factor containing their node
    (broadcast along that node's axis).  The product of all tables is
    unchanged -- this just roughly halves the join count per elimination for
    the vertex-plus-edge factorisations every model here uses.  The original
    per-factor arrays stay available for conditionals and weight products.
    """
    by_scope_set: Dict[frozenset, int] = {}
    fused_scopes: List[Tuple[int, ...]] = []
    fused_arrays: List[np.ndarray] = []
    unaries: List[Tuple[int, np.ndarray]] = []
    for scope, array in zip(scopes, arrays):
        if len(scope) == 1:
            unaries.append((scope[0], array))
            continue
        key = frozenset(scope)
        slot = by_scope_set.get(key)
        if slot is None:
            by_scope_set[key] = len(fused_scopes)
            fused_scopes.append(scope)
            fused_arrays.append(array.copy())
        else:
            host_scope = fused_scopes[slot]
            aligned = np.transpose(array, [scope.index(v) for v in host_scope])
            fused_arrays[slot] = fused_arrays[slot] * aligned
    host_of: Dict[int, int] = {}
    for slot, scope in enumerate(fused_scopes):
        for variable in scope:
            host_of.setdefault(variable, slot)
    for variable, array in unaries:
        slot = host_of.get(variable)
        if slot is None:
            key = frozenset((variable,))
            slot = by_scope_set.get(key)
            if slot is None:
                by_scope_set[key] = len(fused_scopes)
                fused_scopes.append((variable,))
                fused_arrays.append(array.copy())
                host_of[variable] = by_scope_set[key]
            else:
                fused_arrays[slot] = fused_arrays[slot] * array
            continue
        host_scope = fused_scopes[slot]
        shape = [1] * len(host_scope)
        shape[host_scope.index(variable)] = len(array)
        fused_arrays[slot] = fused_arrays[slot] * array.reshape(shape)
    return tuple(fused_scopes), tuple(fused_arrays)


def dense_table_from_callable(factor, alphabet: Sequence[Value]) -> np.ndarray:
    """Materialise a factor's weight function as a dense ``(q, ..., q)`` array.

    Parameters
    ----------
    factor
        An object exposing ``scope`` and ``evaluate_values(values)``.
    alphabet : sequence of value
        Symbol labels; positions become array indices.

    Returns
    -------
    numpy.ndarray
        Weight array with one length-``q`` axis per scope node.
    """
    q = len(alphabet)
    arity = len(factor.scope)
    array = np.empty((q,) * arity)
    for codes in itertools.product(range(q), repeat=arity):
        array[codes] = factor.evaluate_values(tuple(alphabet[c] for c in codes))
    return array
