"""Translating decay rates into LOCAL round budgets.

If a class of distributions exhibits strong spatial mixing with rate
``delta_n(t) = C * n * alpha^t`` then the inference algorithm of Theorem 5.1
achieves total-variation error ``delta`` at radius
``t = min { t : delta_n(t) <= delta }``; solving for ``t`` gives the
``O(log(n / delta) / (1 - alpha))`` form behind all the round bounds quoted
in the paper's applications (``O(log^3 n)`` once the ``log^2 n`` scheduling
overhead of Lemma 3.1 is included).
"""

from __future__ import annotations

import math


def locality_for_error(
    decay_rate: float,
    size: int,
    error: float,
    constant: float = 1.0,
    minimum: int = 1,
) -> int:
    """Smallest radius ``t`` with ``constant * size * decay_rate^t <= error``.

    Parameters
    ----------
    decay_rate:
        The exponential decay rate ``alpha`` in ``(0, 1)``.  A rate of zero
        (or anything non-positive) means correlations vanish beyond the
        factor diameter, so the minimum radius suffices.
    size:
        The instance size ``n`` (the polynomial prefactor of Definition 5.1
        is taken linear in ``n``, which all quoted SSM results satisfy).
    error:
        The target total-variation error ``delta``.
    constant:
        The constant ``C`` of the decay bound.
    minimum:
        Lower bound on the returned radius (at least one round is charged).
    """
    if error <= 0:
        raise ValueError("error must be positive")
    if size < 1:
        raise ValueError("size must be at least 1")
    if decay_rate >= 1.0:
        raise ValueError(
            "decay_rate must be below 1 (no strong spatial mixing, "
            "the locality would be unbounded)"
        )
    if decay_rate <= 0.0:
        return max(minimum, 1)
    bound = constant * size
    if bound <= error:
        return max(minimum, 1)
    t = math.log(bound / error) / math.log(1.0 / decay_rate)
    return max(minimum, int(math.ceil(t)))


def error_at_locality(
    decay_rate: float, size: int, radius: int, constant: float = 1.0
) -> float:
    """The decay bound ``C * n * alpha^t`` evaluated at a given radius."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if decay_rate <= 0.0:
        return 0.0
    return constant * size * decay_rate ** radius
