"""Exact inference over the full instance (the ground-truth oracle).

``ExactInference`` computes conditional marginals by variable elimination
over the *whole* instance, so its locality equals the number of nodes: it is
not a local algorithm, but it realises the paper's notion of an inference
oracle with error zero.  The reductions (Theorems 3.2, 4.2) are generic in
the inference engine, so running them on top of ``ExactInference`` isolates
the reduction's own error from the engine's -- which is exactly what the
correctness tests do.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.gibbs.instance import SamplingInstance
from repro.inference.base import InferenceAlgorithm

Node = Hashable
Value = Hashable


class ExactInference(InferenceAlgorithm):
    """Zero-error inference oracle via variable elimination on the full instance.

    ``engine`` selects the evaluation backend (``"compiled"`` by default --
    whose per-distribution marginal memo turns the JVV sampler's repeated
    acceptance-ratio queries into cache hits -- or ``"dict"`` for the
    reference eliminator).
    """

    def __init__(self, engine: Optional[str] = None) -> None:
        self.engine = engine

    def locality(self, instance: SamplingInstance, error: float) -> int:
        """Exact inference may need to see the whole graph."""
        return instance.size

    def marginal(
        self, instance: SamplingInstance, node: Node, error: float
    ) -> Dict[Value, float]:
        """The exact conditional marginal ``mu^tau_v`` (the error bound is ignored)."""
        return instance.distribution.marginal(node, instance.pinning, engine=self.engine)
