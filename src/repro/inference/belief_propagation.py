"""Synchronous belief propagation for pairwise models.

Every model in :mod:`repro.models` factorises into unary and binary factors,
so the classic sum-product message-passing scheme applies directly.  ``t``
synchronous iterations of BP are a genuine ``t``-round LOCAL algorithm: the
message a node sends in round ``i`` depends only on information within
distance ``i``.  On trees BP is exact once ``t`` reaches the diameter; on
loopy graphs it is the standard heuristic whose error, in the strong spatial
mixing regimes the paper's applications live in, decays with ``t`` -- the
property the experiments for the coloring application measure.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.gibbs.instance import SamplingInstance
from repro.inference.base import InferenceAlgorithm
from repro.inference.locality import locality_for_error

Node = Hashable
Value = Hashable


def _split_factors(instance: SamplingInstance):
    """Collect unary potentials per node and pairwise potentials per edge."""
    distribution = instance.distribution
    alphabet = distribution.alphabet
    unary: Dict[Node, Dict[Value, float]] = {
        node: {value: 1.0 for value in alphabet} for node in distribution.graph.nodes()
    }
    pairwise: Dict[Tuple[Node, Node], Dict[Tuple[Value, Value], float]] = {}
    for factor in distribution.factors:
        if len(factor.scope) == 1:
            node = factor.scope[0]
            for value in alphabet:
                unary[node][value] *= factor.evaluate_values((value,))
        elif len(factor.scope) == 2:
            u, v = factor.scope
            key = (u, v)
            table = pairwise.setdefault(key, {})
            for value_u in alphabet:
                for value_v in alphabet:
                    weight = factor.evaluate_values((value_u, value_v))
                    table[(value_u, value_v)] = table.get((value_u, value_v), 1.0) * weight
        else:
            raise ValueError(
                "belief propagation supports unary and binary factors only; "
                f"factor {factor.name!r} has arity {len(factor.scope)}"
            )
    # Fold the pinning into the unary potentials as hard evidence.
    for node, pinned in instance.pinning.items():
        for value in alphabet:
            if value != pinned:
                unary[node][value] = 0.0
    return unary, pairwise


class BeliefPropagationInference(InferenceAlgorithm):
    """Loopy sum-product BP run for a bounded number of synchronous rounds.

    Parameters
    ----------
    iterations:
        Explicit number of BP rounds.  If omitted, the round count is derived
        from the target error via the model's decay rate, mirroring the other
        engines.
    decay_rate:
        Exponential decay rate used when ``iterations`` is not given.
    damping:
        Optional damping coefficient in ``[0, 1)`` (0 = undamped), useful for
        models near their uniqueness threshold where plain BP oscillates.
    """

    def __init__(
        self,
        iterations: Optional[int] = None,
        decay_rate: Optional[float] = None,
        damping: float = 0.0,
    ) -> None:
        if iterations is not None and iterations < 1:
            raise ValueError("iterations must be positive")
        if not 0.0 <= damping < 1.0:
            raise ValueError("damping must lie in [0, 1)")
        if decay_rate is not None and not 0.0 <= decay_rate < 1.0:
            raise ValueError("decay_rate must lie in [0, 1)")
        self.iterations = iterations
        self.decay_rate = decay_rate
        self.damping = damping

    def _rounds(self, instance: SamplingInstance, error: float) -> int:
        if self.iterations is not None:
            return self.iterations
        rate = self.decay_rate
        if rate is None:
            rate = instance.distribution.metadata.get("ssm_decay_rate", 0.5)
        return locality_for_error(float(rate), instance.size, error)

    def locality(self, instance: SamplingInstance, error: float) -> int:
        """Each BP iteration is one communication round."""
        return self._rounds(instance, error)

    # ------------------------------------------------------------------
    def _run(self, instance: SamplingInstance, rounds: int):
        graph = instance.graph
        alphabet = instance.alphabet
        unary, pairwise = _split_factors(instance)

        def pair_weight(u: Node, v: Node, value_u: Value, value_v: Value) -> float:
            weight = 1.0
            if (u, v) in pairwise:
                weight *= pairwise[(u, v)].get((value_u, value_v), 1.0)
            if (v, u) in pairwise:
                weight *= pairwise[(v, u)].get((value_v, value_u), 1.0)
            return weight

        uniform = 1.0 / len(alphabet)
        messages: Dict[Tuple[Node, Node], Dict[Value, float]] = {}
        for u, v in graph.edges():
            messages[(u, v)] = {value: uniform for value in alphabet}
            messages[(v, u)] = {value: uniform for value in alphabet}

        for _ in range(rounds):
            updated: Dict[Tuple[Node, Node], Dict[Value, float]] = {}
            for (source, target), old in messages.items():
                raw: Dict[Value, float] = {}
                for value_target in alphabet:
                    total = 0.0
                    for value_source in alphabet:
                        weight = unary[source][value_source] * pair_weight(
                            source, target, value_source, value_target
                        )
                        if weight == 0.0:
                            continue
                        for other in graph.neighbors(source):
                            if other == target:
                                continue
                            weight *= messages[(other, source)][value_source]
                            if weight == 0.0:
                                break
                        total += weight
                    raw[value_target] = total
                norm = sum(raw.values())
                if norm <= 0.0:
                    fresh = {value: uniform for value in alphabet}
                else:
                    fresh = {value: weight / norm for value, weight in raw.items()}
                if self.damping > 0.0:
                    fresh = {
                        value: (1.0 - self.damping) * fresh[value] + self.damping * old[value]
                        for value in alphabet
                    }
                updated[(source, target)] = fresh
            messages = updated
        return unary, messages

    def marginal(
        self, instance: SamplingInstance, node: Node, error: float
    ) -> Dict[Value, float]:
        """BP belief at ``node`` after the scheduled number of rounds."""
        if node in instance.pinning:
            pinned = instance.pinning[node]
            return {
                value: (1.0 if value == pinned else 0.0) for value in instance.alphabet
            }
        rounds = self._rounds(instance, error)
        unary, messages = self._run(instance, rounds)
        alphabet = instance.alphabet
        belief: Dict[Value, float] = {}
        for value in alphabet:
            weight = unary[node][value]
            for neighbour in instance.graph.neighbors(node):
                if weight == 0.0:
                    break
                weight *= messages[(neighbour, node)][value]
            belief[value] = weight
        norm = sum(belief.values())
        if norm <= 0.0:
            uniform = 1.0 / len(alphabet)
            return {value: uniform for value in alphabet}
        return {value: weight / norm for value, weight in belief.items()}

    def marginals(self, instance: SamplingInstance, error: float, nodes=None):
        """All free-node beliefs from a single shared message-passing run."""
        targets = instance.free_nodes if nodes is None else list(nodes)
        rounds = self._rounds(instance, error)
        unary, messages = self._run(instance, rounds)
        alphabet = instance.alphabet
        results: Dict[Node, Dict[Value, float]] = {}
        for node in targets:
            if node in instance.pinning:
                pinned = instance.pinning[node]
                results[node] = {
                    value: (1.0 if value == pinned else 0.0) for value in alphabet
                }
                continue
            belief: Dict[Value, float] = {}
            for value in alphabet:
                weight = unary[node][value]
                for neighbour in instance.graph.neighbors(node):
                    if weight == 0.0:
                        break
                    weight *= messages[(neighbour, node)][value]
                belief[value] = weight
            norm = sum(belief.values())
            if norm <= 0.0:
                uniform = 1.0 / len(alphabet)
                results[node] = {value: uniform for value in alphabet}
            else:
                results[node] = {value: weight / norm for value, weight in belief.items()}
        return results
