"""Correlation-decay (Weitz-style) inference for two-spin models.

The efficient strong-spatial-mixing results the paper plugs into its
reductions (Weitz 2006 for the hardcore model, Li--Lu--Yin 2013 for general
anti-ferromagnetic two-spin systems, Bayati et al. 2007 for matchings through
the line-graph duality) all compute marginals by a depth-limited recursion
over self-avoiding walks: the influence of the truncation boundary decays
exponentially with the depth whenever the model is in its uniqueness regime.

``TwoSpinCorrelationDecayInference`` implements that recursion directly on
the instance graph.  For a node ``u`` the quantity propagated is the ratio
``R_u = mu_u(+)/mu_u(-)`` conditioned on the pinning and on the already
visited vertices being excluded; one step of the recursion multiplies, for
every unvisited neighbour ``w``, the edge term ``(beta R_w + 1)/(R_w +
gamma)`` and finishes with the external field.  Pinned vertices contribute
their deterministic ratio (0 or infinity), and the recursion is cut at the
requested depth with the fixed boundary ratio ``lambda``.

The recursion touches only vertices within the chosen depth of the queried
node, so the engine is a genuine LOCAL algorithm with radius equal to the
depth; its per-node work is ``O(Delta^depth)``, i.e. polynomial in ``n`` when
the depth is ``O(log n)``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional

from repro.gibbs.instance import SamplingInstance
from repro.inference.base import InferenceAlgorithm
from repro.inference.locality import locality_for_error

Node = Hashable
Value = Hashable

_INFINITY = math.inf


class TwoSpinCorrelationDecayInference(InferenceAlgorithm):
    """Depth-limited self-avoiding-walk recursion for two-spin models.

    Parameters
    ----------
    beta, gamma, field:
        The two-spin parameters: ``beta`` is the edge weight of a ``(+,+)``
        pair, ``gamma`` of a ``(-,-)`` pair, and ``field`` the vertex
        activity of ``+``.  The hardcore model is ``beta = 0, gamma = 1,
        field = fugacity``.
    plus_value, minus_value:
        The alphabet symbols playing the roles of ``+`` and ``-`` (defaults
        match the conventions of :mod:`repro.models`).
    decay_rate:
        The exponential decay rate used to schedule the recursion depth from
        a target error; if omitted it is read from the model metadata or a
        conservative default is used.
    max_depth:
        Optional hard cap on the recursion depth (protects experiment runs on
        models outside the uniqueness regime, where no depth suffices).
    """

    def __init__(
        self,
        beta: float,
        gamma: float,
        field: float,
        plus_value: Value = 1,
        minus_value: Value = 0,
        decay_rate: Optional[float] = None,
        max_depth: Optional[int] = None,
    ) -> None:
        if beta < 0 or gamma < 0:
            raise ValueError("beta and gamma must be non-negative")
        if field <= 0:
            raise ValueError("the field must be positive")
        if decay_rate is not None and not 0.0 <= decay_rate < 1.0:
            raise ValueError("decay_rate must lie in [0, 1)")
        self.beta = beta
        self.gamma = gamma
        self.field = field
        self.plus_value = plus_value
        self.minus_value = minus_value
        self.decay_rate = decay_rate
        self.max_depth = max_depth

    # ------------------------------------------------------------------
    @classmethod
    def for_model(cls, instance_or_distribution, **overrides) -> "TwoSpinCorrelationDecayInference":
        """Build an engine from a model's metadata (hardcore, two-spin, matching)."""
        distribution = getattr(instance_or_distribution, "distribution", instance_or_distribution)
        metadata = distribution.metadata
        model = metadata.get("model")
        if model == "hardcore":
            params = {"beta": 0.0, "gamma": 1.0, "field": float(metadata["fugacity"])}
        elif model in ("matching", "hypergraph-matching"):
            weight = float(metadata.get("edge_weight", metadata.get("activity", 1.0)))
            params = {"beta": 0.0, "gamma": 1.0, "field": weight}
        elif model in ("two-spin", "ising"):
            params = {
                "beta": float(metadata["beta"]),
                "gamma": float(metadata["gamma"]),
                "field": float(metadata["field"]),
            }
        else:
            raise ValueError(
                f"correlation-decay inference does not support model {model!r}"
            )
        rate = metadata.get("ssm_decay_rate")
        if rate is not None and "decay_rate" not in overrides:
            overrides = dict(overrides)
            overrides["decay_rate"] = float(rate)
        params.update(overrides)
        return cls(**params)

    # ------------------------------------------------------------------
    def _rate(self, instance: SamplingInstance) -> float:
        if self.decay_rate is not None:
            return self.decay_rate
        rate = instance.distribution.metadata.get("ssm_decay_rate")
        if rate is not None:
            return float(rate)
        return 0.5

    def _depth(self, instance: SamplingInstance, error: float) -> int:
        depth = locality_for_error(self._rate(instance), instance.size, error)
        if self.max_depth is not None:
            depth = min(depth, self.max_depth)
        return depth

    def locality(self, instance: SamplingInstance, error: float) -> int:
        """The recursion depth doubles as the LOCAL radius."""
        return self._depth(instance, error)

    # ------------------------------------------------------------------
    def _edge_term(self, neighbour_ratio: float) -> float:
        """The factor ``(beta R + 1) / (R + gamma)`` with care at ``R = inf``."""
        if math.isinf(neighbour_ratio):
            return self.beta
        return (self.beta * neighbour_ratio + 1.0) / (neighbour_ratio + self.gamma)

    def _ratio(
        self,
        instance: SamplingInstance,
        node: Node,
        visited: frozenset,
        depth: int,
    ) -> float:
        pinning = instance.pinning
        if node in pinning:
            return _INFINITY if pinning[node] == self.plus_value else 0.0
        if depth <= 0:
            return self.field
        product = 1.0
        for neighbour in instance.graph.neighbors(node):
            if neighbour in visited:
                continue
            neighbour_ratio = self._ratio(
                instance, neighbour, visited | {node}, depth - 1
            )
            term = self._edge_term(neighbour_ratio)
            product *= term
            if product == 0.0:
                break
        return self.field * product

    def marginal(
        self, instance: SamplingInstance, node: Node, error: float
    ) -> Dict[Value, float]:
        """Estimated marginal ``{minus: 1/(1+R), plus: R/(1+R)}``."""
        alphabet = set(instance.alphabet)
        if alphabet != {self.plus_value, self.minus_value}:
            raise ValueError(
                "the instance alphabet does not match the two-spin values "
                f"({self.minus_value!r}, {self.plus_value!r})"
            )
        if node in instance.pinning:
            pinned = instance.pinning[node]
            return {value: (1.0 if value == pinned else 0.0) for value in instance.alphabet}
        depth = self._depth(instance, error)
        ratio = self._ratio(instance, node, frozenset(), depth)
        if math.isinf(ratio):
            plus_probability = 1.0
        else:
            plus_probability = ratio / (1.0 + ratio)
        return {
            self.minus_value: 1.0 - plus_probability,
            self.plus_value: plus_probability,
        }


def correlation_decay_for(instance_or_distribution, **overrides) -> TwoSpinCorrelationDecayInference:
    """Convenience alias of :meth:`TwoSpinCorrelationDecayInference.for_model`."""
    return TwoSpinCorrelationDecayInference.for_model(instance_or_distribution, **overrides)
