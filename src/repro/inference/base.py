"""Common interface of the approximate-inference algorithms.

All inference engines implement :class:`InferenceAlgorithm`: given an
instance, a node and an accuracy parameter they return an estimated marginal
distribution, and they declare the LOCAL radius (number of rounds) that
estimate needs.  Following Proposition 3.3 of the paper the engines are
deterministic and never fail, which is why the interface has no failure flag.

The helper :func:`ball_instance` restricts an instance to a ball: it keeps
only the factors fully contained in the ball and the pinning restricted to
it.  Every engine computes exclusively on such restrictions, so locality is
enforced by construction.
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, Iterable, Optional, Tuple

from repro.gibbs.instance import SamplingInstance
from repro.graphs.structure import ball

Node = Hashable
Value = Hashable


class InferenceAlgorithm(abc.ABC):
    """A deterministic LOCAL algorithm for approximate inference."""

    @abc.abstractmethod
    def locality(self, instance: SamplingInstance, error: float) -> int:
        """The LOCAL radius (round count) needed for total-variation error ``error``."""

    @abc.abstractmethod
    def marginal(
        self, instance: SamplingInstance, node: Node, error: float
    ) -> Dict[Value, float]:
        """Estimate the conditional marginal ``mu^tau_v`` within the given error."""

    def marginals(
        self, instance: SamplingInstance, error: float, nodes: Iterable[Node] | None = None
    ) -> Dict[Node, Dict[Value, float]]:
        """Estimated marginals of every free node (or an explicit subset)."""
        targets = instance.free_nodes if nodes is None else list(nodes)
        return {node: self.marginal(instance, node, error) for node in targets}

    def name(self) -> str:
        """Human-readable engine name used in reports and benchmarks."""
        return type(self).__name__


def ball_instance(
    instance: SamplingInstance, center: Node, radius: int
) -> Tuple[set, list, Dict[Node, Value]]:
    """Restrict an instance to the radius-``radius`` ball around ``center``.

    Returns ``(ball_nodes, factor_tables, pinning_in_ball)`` where
    ``factor_tables`` contains only factors whose scope lies entirely inside
    the ball -- exactly the information a ``radius``-round LOCAL algorithm at
    ``center`` may use.
    """
    nodes = ball(instance.graph, center, radius)
    tables = instance.distribution.restricted_tables(nodes)
    pinning = {node: value for node, value in instance.pinning.items() if node in nodes}
    return nodes, tables, pinning


def marginal_in_ball(
    instance: SamplingInstance,
    center: Node,
    radius: int,
    extra_pinning: Dict[Node, Value] | None = None,
    engine: Optional[str] = None,
) -> Dict[Value, float]:
    """Exact marginal of ``center`` of the instance *restricted to a ball*.

    The computation uses only factors inside ``B_radius(center)`` and the
    pinning restricted to the ball (optionally extended by
    ``extra_pinning``); nodes of the ball that remain unpinned are summed
    over freely.  This is the primitive both Theorem 5.1's algorithm and the
    boosting lemma build on.  It routes through the distribution's ball
    cache, so the ball extraction and compilation are shared across calls;
    ``engine`` selects the evaluation backend (see :mod:`repro.engine`).
    """
    pinning = dict(instance.pinning)
    if extra_pinning:
        pinning.update(extra_pinning)
    return instance.distribution.ball_marginal(
        center, radius, pinning, center, engine=engine
    )
