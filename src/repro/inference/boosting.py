"""The boosting lemma (Lemma 4.1): from total-variation to multiplicative error.

Given a LOCAL inference algorithm ``A+`` with total-variation accuracy, the
boosted algorithm ``A x`` achieves *multiplicative* accuracy
``err(mu_hat_v, mu^tau_v) <= epsilon`` (equation (2)) for local Gibbs
distributions.  The construction is a local self-reduction:

1. node ``v`` gathers information up to distance ``2 t + l`` where
   ``t = t(n, epsilon / (5 q n))`` is the locality of ``A+`` at the boosted
   accuracy and ``l`` the factor diameter;
2. it enumerates the shell ``Gamma = B_{t+l}(v) \\ (B_t(v) u Lambda)`` in ID
   order and pins each shell vertex, one after the other, to the value that
   maximises the marginal ``A+`` reports for it given the pins placed so far
   (each such marginal is at least ``1/q - epsilon/(5 n q)``, which keeps the
   growing pinning feasible -- the Claim inside Lemma 4.1);
3. with the shell fully pinned, the conditional marginal of ``v`` is
   determined by the factors inside ``B_{t+l}(v)`` alone (conditional
   independence, Proposition 2.1), so ``v`` computes it exactly and returns
   it.

The returned marginal is the *exact* marginal of a nearby pinned instance,
and the chain-rule argument of Lemma 4.1 bounds its multiplicative distance
to the true marginal by ``epsilon``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.gibbs.instance import SamplingInstance
from repro.inference.base import InferenceAlgorithm

Node = Hashable
Value = Hashable


class BoostedInference(InferenceAlgorithm):
    """Algorithm ``A x`` of Lemma 4.1, built on top of any TV-accurate engine.

    The ``error`` parameter of :meth:`marginal` is interpreted as the target
    *multiplicative* error ``epsilon``; the underlying engine is invoked at
    total-variation error ``epsilon / (5 q n)`` as in the paper.  The final
    exact ball marginal runs on the evaluation backend selected by
    ``engine`` (default: the compiled engine with ball caching).
    """

    def __init__(self, base: InferenceAlgorithm, engine: Optional[str] = None) -> None:
        self.base = base
        self.engine = engine

    # ------------------------------------------------------------------
    def _base_error(self, instance: SamplingInstance, epsilon: float) -> float:
        q = instance.distribution.alphabet_size
        n = max(1, instance.size)
        return epsilon / (5.0 * q * n)

    def locality(self, instance: SamplingInstance, error: float) -> int:
        """``2 t + l`` rounds, where ``t`` is the base engine's locality."""
        base_radius = self.base.locality(instance, self._base_error(instance, error))
        return 2 * base_radius + instance.distribution.locality()

    # ------------------------------------------------------------------
    def marginal(
        self, instance: SamplingInstance, node: Node, error: float
    ) -> Dict[Value, float]:
        """Marginal with multiplicative error at most ``error`` (for SSM models)."""
        distribution = instance.distribution
        alphabet = distribution.alphabet
        if node in instance.pinning:
            pinned = instance.pinning[node]
            return {value: (1.0 if value == pinned else 0.0) for value in alphabet}

        epsilon = error
        base_error = self._base_error(instance, epsilon)
        radius = self.base.locality(instance, base_error)
        locality = distribution.locality()
        cache = distribution.ball_cache()

        inner = cache.ball_nodes(node, radius)
        padded = cache.ball_nodes(node, radius + locality)
        shell = sorted(
            (
                u
                for u in padded
                if u not in inner and u not in instance.pinning
            ),
            key=repr,
        )

        # Pin the shell one vertex at a time, each to the mode of the base
        # engine's marginal given the pins placed so far.
        current = instance
        for shell_node in shell:
            estimate = self.base.marginal(current, shell_node, base_error)
            best_value = max(sorted(estimate, key=repr), key=lambda v: estimate[v])
            current = current.conditioned({shell_node: best_value})

        combined_pinning = {
            u: value for u, value in current.pinning.items() if u in padded
        }
        return distribution.ball_marginal(
            node, radius + locality, combined_pinning, node, engine=self.engine
        )
