"""LOCAL inference from strong spatial mixing (Theorem 5.1, converse direction).

For a locally admissible local Gibbs distribution with SSM rate
``delta_n(t)``, the paper's algorithm achieves total-variation error
``delta`` in ``min{t : delta_n(t) <= delta} + O(1)`` rounds:

1. node ``v`` gathers its ball of radius ``t + 2 l`` (``l`` = factor
   diameter),
2. it extends the pinning ``tau`` to a *locally feasible* configuration
   ``tau'`` on the shell ``Gamma = B_{t+l}(v) \\ (B_t(v) u Lambda)`` -- local
   admissibility guarantees the greedy extension exists and is feasible,
3. it returns the exact conditional marginal ``mu^{tau'}_v``, which by the
   conditional-independence property (Proposition 2.1) is fully determined by
   the factors inside ``B_{t+l}(v)``; SSM bounds its distance to the true
   marginal by ``delta_n(t)``.

Two engines are provided: :class:`BoundaryPaddedInference`, which chooses the
radius from a decay-rate schedule, and :class:`TruncatedBallInference`, which
runs the same computation at an explicitly given radius (used to *measure*
how much locality a target accuracy requires -- the phase-transition
experiment).

Both accept an ``engine=`` keyword selecting the evaluation backend (see
:mod:`repro.engine`); the default compiled backend memoises ball
compilations, greedy boundary extensions and per-pinning marginals on the
distribution's :class:`~repro.engine.cache.BallCache`, so repeated queries
across nodes and rounds cost dictionary lookups instead of eliminations.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Tuple

from repro.gibbs.instance import SamplingInstance
from repro.inference.base import InferenceAlgorithm
from repro.inference.locality import locality_for_error

Node = Hashable
Value = Hashable


def _stream_runtime_marginals(
    engine_obj: InferenceAlgorithm,
    runtime,
    radius: int,
    instance: SamplingInstance,
    error: float,
    nodes: Optional[Iterable[Node]],
) -> Iterator[Tuple[Node, Dict[Value, float]]]:
    """Shared streaming ``marginals`` body of the two ball-local engines.

    The per-node ball computations are independent, so with a process or
    cluster runtime they shard across workers -- OS processes or TCP
    workers respectively, both executing the registered ``ball_marginals``
    task body of :data:`repro.runtime.shards.TASK_REGISTRY` -- and stream
    back in completion order (ball compilations, boundary extensions and
    capped marginal-memo deltas are merged into the distribution's cache
    as each shard lands); otherwise the serial per-node loop yields lazily
    in node order.  The shard transport is compiled-only, so an explicit
    ``engine="dict"`` request keeps the serial loop (the reference backend
    must stay the reference).
    """
    from repro.engine import resolve_engine
    from repro.runtime import resolve_runtime

    resolved = resolve_runtime(runtime)
    targets = instance.free_nodes if nodes is None else list(nodes)
    if (
        (resolved.is_process or resolved.is_cluster)
        and len(targets) > 1
        and resolve_engine(engine_obj.engine) == "compiled"
    ):
        yield from resolved.stream_ball_marginals(instance, targets, radius)
        return
    for node in targets:
        yield node, engine_obj.marginal(instance, node, error)


def _runtime_marginals(
    engine_obj: InferenceAlgorithm,
    runtime,
    radius: int,
    instance: SamplingInstance,
    error: float,
    nodes: Optional[Iterable[Node]],
) -> Dict[Node, Dict[Value, float]]:
    """Barrier wrapper: drain :func:`_stream_runtime_marginals` into a dict."""
    return dict(
        _stream_runtime_marginals(engine_obj, runtime, radius, instance, error, nodes)
    )


def _greedy_boundary_extension(
    instance: SamplingInstance,
    shell_nodes,
    context_nodes,
) -> Dict[Node, Value]:
    """Extend the pinning over the shell, keeping local feasibility.

    Processes the shell nodes in ID (repr) order; for each, picks the first
    alphabet value that keeps the partial configuration locally feasible with
    respect to all factors contained in ``context_nodes``.  For locally
    admissible distributions such a value always exists (a feasible partial
    configuration has a feasible full extension, whose restriction witnesses
    local feasibility); if none is found a ``RuntimeError`` flags the model
    as not locally admissible.

    The assigned-node set is maintained incrementally (and factor scope sets
    are precomputed on the factors), so one candidate check costs
    ``O(|factors_at(node)|)`` set lookups rather than rebuilding both sets
    per factor per value.
    """
    distribution = instance.distribution
    context = set(context_nodes)
    assignment: Dict[Node, Value] = {
        node: value for node, value in instance.pinning.items() if node in context
    }
    assigned = set(assignment)
    for node in sorted(shell_nodes, key=repr):
        if node in assigned:
            continue
        assigned.add(node)
        # Only factors fully inside both the context and the assigned set
        # constrain this choice; the relevant list is identical for every
        # candidate value, so hoist it out of the value loop.
        relevant = [
            factor
            for factor in distribution.factors_at(node)
            if factor.scope_set <= context and factor.scope_set <= assigned
        ]
        chosen = None
        for value in distribution.alphabet:
            assignment[node] = value
            if all(factor.evaluate(assignment) != 0.0 for factor in relevant):
                chosen = value
                break
            del assignment[node]
        if chosen is None:
            assigned.discard(node)
            raise RuntimeError(
                "could not extend the pinning onto the boundary shell; "
                "the distribution does not appear to be locally admissible"
            )
    return {node: assignment[node] for node in shell_nodes if node in assignment}


def padded_ball_marginal(
    instance: SamplingInstance,
    center: Node,
    radius: int,
    engine: Optional[str] = None,
) -> Dict[Value, float]:
    """The marginal computed by the Theorem 5.1 algorithm at a given radius.

    Gathers ``B_{radius + 2 l}(center)``, pads the pinning on the shell
    between radius and ``radius + l``, and returns the exact conditional
    marginal of the ball.

    The ball node sets and the compiled ball restriction come from the
    distribution's :class:`~repro.engine.cache.BallCache`, so repeated calls
    (across nodes, rounds and conditioned instances of the same
    distribution) do not re-extract or re-compile identical balls.
    """
    distribution = instance.distribution
    locality = distribution.locality()
    cache = distribution.ball_cache()
    # Largest radius first: the cache slices the smaller balls out of the
    # same BFS distance map.
    context = cache.ball_nodes(center, radius + 2 * locality)
    padded = cache.ball_nodes(center, radius + locality)
    inner = cache.ball_nodes(center, radius)
    # The greedy extension is deterministic given the pinning restricted to
    # the context ball, so memoise it alongside the compiled balls: repeated
    # rounds at the same node skip the whole feasibility search.
    context_pinning = frozenset(
        (node, value) for node, value in instance.pinning.items() if node in context
    )
    def _extend() -> Dict[Node, Value]:
        shell = {
            node
            for node in padded
            if node not in inner and node not in instance.pinning
        }
        return _greedy_boundary_extension(instance, shell, context)

    boundary_pinning = cache.cached_extra(
        ("boundary-extension", center, radius, context_pinning), _extend
    )

    pinning = {node: value for node, value in instance.pinning.items() if node in padded}
    pinning.update(boundary_pinning)
    if center in pinning:
        return {
            value: (1.0 if value == pinning[center] else 0.0)
            for value in distribution.alphabet
        }
    return distribution.ball_marginal(
        center, radius + locality, pinning, center, engine=engine
    )


class TruncatedBallInference(InferenceAlgorithm):
    """The Theorem 5.1 computation at a fixed, explicitly chosen radius.

    Useful when the radius is the independent variable of an experiment
    (e.g. measuring the accuracy-versus-locality trade-off on either side of
    the uniqueness threshold).
    """

    def __init__(
        self, radius: int, engine: Optional[str] = None, runtime=None
    ) -> None:
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.radius = radius
        self.engine = engine
        self.runtime = runtime

    def locality(self, instance: SamplingInstance, error: float) -> int:
        """Fixed radius plus the constant padding of the factor diameter."""
        return self.radius + 2 * instance.distribution.locality()

    def marginal(
        self, instance: SamplingInstance, node: Node, error: float
    ) -> Dict[Value, float]:
        """Padded-ball marginal at the configured radius (``error`` is ignored)."""
        return padded_ball_marginal(instance, node, self.radius, engine=self.engine)

    def marginals(
        self, instance: SamplingInstance, error: float, nodes=None, runtime=None
    ) -> Dict[Node, Dict[Value, float]]:
        """Per-node marginals, sharded across workers on a distributed runtime.

        ``runtime`` overrides the engine-level knob per call (``None``
        keeps the constructor's choice); both resolve through the unified
        :class:`~repro.runtime.executor.Runtime` facade and its registered
        task bodies.
        """
        return _runtime_marginals(
            self, runtime if runtime is not None else self.runtime,
            self.radius, instance, error, nodes,
        )

    def marginals_stream(
        self, instance: SamplingInstance, error: float, nodes=None, runtime=None
    ) -> Iterator[Tuple[Node, Dict[Value, float]]]:
        """Stream per-node marginals as they complete (see module notes).

        With a process or cluster runtime, ``(node, marginal)`` pairs
        arrive in shard completion order while later shards are still in
        flight; otherwise the serial loop yields lazily in node order.
        Values are identical to :meth:`marginals` on every backend;
        ``runtime`` overrides the engine-level knob per call.
        """
        return _stream_runtime_marginals(
            self, runtime if runtime is not None else self.runtime,
            self.radius, instance, error, nodes,
        )


class BoundaryPaddedInference(InferenceAlgorithm):
    """SSM-scheduled LOCAL inference (the full Theorem 5.1 converse algorithm).

    The radius is chosen as ``min{t : C * n * alpha^t <= delta}`` where
    ``alpha`` is the SSM decay rate.  The decay rate can be given explicitly
    or read from the model metadata (``"ssm_decay_rate"``); if neither is
    available a conservative default of 0.5 is used and the engine's accuracy
    should be verified empirically (the tests do exactly that).
    """

    def __init__(
        self,
        decay_rate: Optional[float] = None,
        constant: float = 1.0,
        max_radius: Optional[int] = None,
        engine: Optional[str] = None,
        runtime=None,
    ) -> None:
        if decay_rate is not None and not 0.0 <= decay_rate < 1.0:
            raise ValueError("decay_rate must lie in [0, 1)")
        self.decay_rate = decay_rate
        self.constant = constant
        self.max_radius = max_radius
        self.engine = engine
        self.runtime = runtime

    def _rate(self, instance: SamplingInstance) -> float:
        if self.decay_rate is not None:
            return self.decay_rate
        rate = instance.distribution.metadata.get("ssm_decay_rate")
        if rate is not None:
            return float(rate)
        return 0.5

    def _radius(self, instance: SamplingInstance, error: float) -> int:
        radius = locality_for_error(
            self._rate(instance), instance.size, error, constant=self.constant
        )
        if self.max_radius is not None:
            radius = min(radius, self.max_radius)
        return radius

    def locality(self, instance: SamplingInstance, error: float) -> int:
        """Radius from the decay schedule plus the constant factor-diameter padding."""
        return self._radius(instance, error) + 2 * instance.distribution.locality()

    def marginal(
        self, instance: SamplingInstance, node: Node, error: float
    ) -> Dict[Value, float]:
        """Padded-ball marginal at the scheduled radius."""
        return padded_ball_marginal(
            instance, node, self._radius(instance, error), engine=self.engine
        )

    def marginals(
        self, instance: SamplingInstance, error: float, nodes=None, runtime=None
    ) -> Dict[Node, Dict[Value, float]]:
        """Per-node marginals, sharded across workers on a distributed runtime.

        ``runtime`` overrides the engine-level knob per call (``None``
        keeps the constructor's choice); both resolve through the unified
        :class:`~repro.runtime.executor.Runtime` facade and its registered
        task bodies.
        """
        return _runtime_marginals(
            self, runtime if runtime is not None else self.runtime,
            self._radius(instance, error), instance, error, nodes,
        )

    def marginals_stream(
        self, instance: SamplingInstance, error: float, nodes=None, runtime=None
    ) -> Iterator[Tuple[Node, Dict[Value, float]]]:
        """Stream per-node marginals at the scheduled radius as they complete.

        With a process or cluster runtime, ``(node, marginal)`` pairs
        arrive in shard completion order while later shards are still in
        flight; otherwise the serial loop yields lazily in node order.
        Values are identical to :meth:`marginals` on every backend;
        ``runtime`` overrides the engine-level knob per call.
        """
        return _stream_runtime_marginals(
            self, runtime if runtime is not None else self.runtime,
            self._radius(instance, error), instance, error, nodes,
        )
