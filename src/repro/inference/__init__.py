"""Approximate inference (local counting) engines.

Inference in the paper's sense: every node estimates its conditional marginal
``mu^tau_v``.  This package provides

* :class:`~repro.inference.exact.ExactInference` -- ground truth via variable
  elimination over the full instance (unbounded locality);
* :class:`~repro.inference.ssm_inference.BoundaryPaddedInference` -- the
  LOCAL algorithm from the converse direction of Theorem 5.1: pad the
  pinning with a locally feasible boundary on a shell around the ball and
  compute the exact marginal inside the ball;
* :class:`~repro.inference.ssm_inference.TruncatedBallInference` -- the same
  computation at a fixed, explicitly given radius (used to *measure* how much
  locality a given accuracy needs, i.e. the phase-transition experiments);
* :class:`~repro.inference.correlation_decay.TwoSpinCorrelationDecayInference`
  -- depth-limited self-avoiding-walk recursion (Weitz-style correlation
  decay) for two-spin models: hardcore, Ising/anti-ferromagnetic two-spin,
  and -- through the line-graph duality -- matchings;
* :class:`~repro.inference.belief_propagation.BeliefPropagationInference` --
  synchronous loopy belief propagation for any pairwise model, used for
  colorings and as a general-purpose engine;
* :class:`~repro.inference.boosting.BoostedInference` -- the boosting lemma
  (Lemma 4.1), turning total-variation accuracy into multiplicative accuracy.
"""

from repro.inference.base import InferenceAlgorithm, ball_instance
from repro.inference.exact import ExactInference
from repro.inference.ssm_inference import BoundaryPaddedInference, TruncatedBallInference
from repro.inference.correlation_decay import (
    TwoSpinCorrelationDecayInference,
    correlation_decay_for,
)
from repro.inference.belief_propagation import BeliefPropagationInference
from repro.inference.boosting import BoostedInference
from repro.inference.locality import locality_for_error

__all__ = [
    "InferenceAlgorithm",
    "ball_instance",
    "ExactInference",
    "BoundaryPaddedInference",
    "TruncatedBallInference",
    "TwoSpinCorrelationDecayInference",
    "correlation_decay_for",
    "BeliefPropagationInference",
    "BoostedInference",
    "locality_for_error",
]
