"""A tiny asyncio HTTP/1.1 client for the sampling server.

Just enough HTTP to talk to :mod:`repro.serve.server` from tests, the CI
smoke, and the benchmarks: one request per call (a fresh connection each
time -- the concurrency the server coalesces comes from many client
tasks, exactly like independent remote clients), ``Content-Length`` and
chunked bodies, JSON and ndjson decoding.  No third-party dependency.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple


async def _read_body(reader: asyncio.StreamReader, headers: Dict[str, str]) -> bytes:
    if headers.get("transfer-encoding", "").lower() == "chunked":
        chunks: List[bytes] = []
        while True:
            size_line = await reader.readline()
            size = int(size_line.strip().split(b";")[0], 16)
            if size == 0:
                await reader.readline()  # trailing CRLF of the terminator
                return b"".join(chunks)
            chunks.append(await reader.readexactly(size))
            await reader.readexactly(2)  # chunk-terminating CRLF
    length = int(headers.get("content-length", "0"))
    if length:
        return await reader.readexactly(length)
    return b""


async def request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload=None,
    timeout: float = 60.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP request; returns ``(status, headers, body)``."""

    async def _go() -> Tuple[int, Dict[str, str], bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            body = b""
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Content-Type: application/json\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(" ", 2)
            status = int(parts[1])
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            return status, headers, await _read_body(reader, headers)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    return await asyncio.wait_for(_go(), timeout=timeout)


async def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload=None,
    timeout: float = 60.0,
) -> Tuple[int, object]:
    """One request with the body decoded as JSON (``None`` when empty)."""
    status, _, body = await request(host, port, method, path, payload, timeout)
    return status, (json.loads(body.decode("utf-8")) if body else None)


async def request_ndjson(
    host: str,
    port: int,
    path: str,
    payload=None,
    timeout: float = 60.0,
) -> Tuple[int, List[object]]:
    """One POST whose response is an ndjson stream, decoded line by line."""
    status, _, body = await request(host, port, "POST", path, payload, timeout)
    lines = [line for line in body.decode("utf-8").splitlines() if line.strip()]
    return status, [json.loads(line) for line in lines]


def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload=None,
    timeout: float = 60.0,
) -> Tuple[int, object]:
    """Synchronous convenience wrapper around :func:`request_json`."""
    return asyncio.run(request_json(host, port, method, path, payload, timeout))


def sample_payload(
    model: str,
    kernel: str = "glauber",
    count: int = 1,
    seed: int = 0,
    n_chains: int = 1,
    deadline_ms: Optional[float] = None,
) -> Dict[str, object]:
    """The ``POST /v1/sample`` body for one request."""
    payload: Dict[str, object] = {
        "model": model,
        "kernel": kernel,
        "count": count,
        "seed": seed,
        "n_chains": n_chains,
    }
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return payload
