"""Sampling-as-a-service: the asyncio HTTP/JSON front end.

``SamplingServer`` binds the pieces together: the model registry
(:mod:`repro.serve.registry`), one shared :class:`~repro.runtime.Runtime`
plus :class:`~repro.serve.coalesce.RequestCoalescer` per model, and the
thin HTTP/1.1 framing of :mod:`repro.serve.http`.

Endpoints
---------

``POST /v1/sample``
    ``{"model", "kernel", "count", "seed", "n_chains", "initial"?,
    "deadline_ms"?}`` -> ``{"states": [...], "request_id", "batch_id",
    "batch_size", ...}``.  Concurrent requests against one model coalesce
    into shared ``run_chains`` batches; with ``cross_model=True`` requests
    against *different* models additionally fold into one packed kernel
    step (``Runtime.run_packed``).  Either way every response is
    bit-identical to the same request served alone (see
    :mod:`repro.serve.coalesce`).
``POST /v1/marginal``
    ``{"model", "radius", "nodes"?, "deadline_ms"?}`` -> a chunked
    ndjson stream of ``{"node", "marginal"}`` lines, one per completed
    shard of :meth:`Runtime.stream_ball_marginals`.
``GET /v1/models`` / ``PUT /v1/models/<name>``
    List / declaratively register models.
``GET /v1/healthz``
    Liveness plus the per-model serving stats.

Error mapping: unknown model -> 404, malformed payloads -> 400,
queue-cap backpressure -> 429, per-request deadline -> 504 (the queued
work is cancelled), draining -> 503.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro import obs
from repro.runtime import Runtime
from repro.sampling.kernels import get_kernel
from repro.serve.coalesce import (
    Backpressure,
    CoalescerClosed,
    PackedCoalescer,
    RequestCoalescer,
    new_request_id,
)
from repro.serve.http import (
    HttpError,
    Request,
    finish_chunked,
    json_response,
    read_request,
    start_chunked,
    write_chunk,
)
from repro.serve.registry import (
    ModelEntry,
    ModelRegistry,
    RegistryError,
    UnknownModelError,
    encode_state,
    jsonable_node,
    parse_node,
)


class _ModelState:
    """One model's serving machinery: shared runtime + coalescer."""

    __slots__ = ("entry", "runtime", "coalescer")

    def __init__(
        self,
        entry: ModelEntry,
        runtime: Runtime,
        max_batch: int,
        max_wait: float,
        max_queue: int,
    ) -> None:
        self.entry = entry
        self.runtime = runtime
        self.coalescer = RequestCoalescer(
            entry.name,
            entry.instance,
            runtime,
            max_batch=max_batch,
            max_wait=max_wait,
            max_queue=max_queue,
        )
        # The serving layer contributes its block to the shared runtime's
        # snapshot, next to "obs" and "cluster".
        self.runtime.register_snapshot_section("serve", self.coalescer.stats)


class SamplingServer:
    """The coalescing sampling server (one asyncio event loop).

    Parameters
    ----------
    registry : ModelRegistry, optional
        Models served at startup; an empty registry accepts ``PUT``
        registrations (unless ``allow_register=False``).
    host, port : str, int
        Bind address; port 0 picks a free port (read :attr:`address`).
    max_batch, max_wait_ms, max_queue
        Coalescer shape per model (see
        :class:`~repro.serve.coalesce.RequestCoalescer`).
    default_deadline_ms : float, optional
        Deadline applied to requests that do not carry their own
        ``deadline_ms``; ``None`` means no deadline.
    runtime_factory : callable, optional
        Builds the per-model shared runtime (default:
        ``Runtime("batched")`` -- merged requests advance as one code
        matrix).
    allow_register : bool
        Whether ``PUT /v1/models/<name>`` is accepted.
    cross_model : bool
        Route ``POST /v1/sample`` through one shared
        :class:`~repro.serve.coalesce.PackedCoalescer`: concurrent
        requests for *different* registered models (same kernel and
        count) fold into a single packed kernel step
        (:meth:`Runtime.run_packed`) instead of one batch per model.
        Responses stay bit-identical to solo runs either way.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        max_queue: int = 128,
        default_deadline_ms: Optional[float] = None,
        runtime_factory=None,
        allow_register: bool = True,
        cross_model: bool = False,
    ) -> None:
        self.registry = registry if registry is not None else ModelRegistry()
        self.host = host
        self.port = port
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.max_queue = int(max_queue)
        self.default_deadline = (
            None if default_deadline_ms is None else float(default_deadline_ms) / 1000.0
        )
        self.runtime_factory = runtime_factory or (lambda: Runtime("batched"))
        self.allow_register = bool(allow_register)
        self._packed: Optional[PackedCoalescer] = (
            PackedCoalescer(
                self.runtime_factory(),
                max_batch=self.max_batch,
                max_wait=self.max_wait,
                max_queue=self.max_queue,
            )
            if cross_model
            else None
        )
        self._models: Dict[str, _ModelState] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._draining = False

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        return self.host, self.port

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting connections; returns the address."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def close(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, release.

        Requests already admitted (queued in a coalescer or mid-batch)
        complete and their responses are written; new requests during the
        drain are answered 503.  Runtimes shut down last -- via the
        event-loop-safe :meth:`Runtime.shutdown` path.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._packed is not None:
            await self._packed.drain()
        for state in list(self._models.values()):
            await state.coalescer.drain()
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        if self._packed is not None:
            self._packed.runtime.shutdown()
        for state in list(self._models.values()):
            state.runtime.unregister_snapshot_section("serve")
            state.runtime.shutdown()
        self._models.clear()

    def _model_state(self, name: str) -> _ModelState:
        state = self._models.get(name)
        if state is None:
            entry = self.registry.get(name)
            state = self._models[name] = _ModelState(
                entry,
                self.runtime_factory(),
                self.max_batch,
                self.max_wait,
                self.max_queue,
            )
        return state

    # -- connection handling -------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as error:
                    writer.write(
                        json_response(
                            error.status,
                            {"error": error.message, "status": error.status},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                keep_alive = request.keep_alive and not self._draining
                try:
                    handled = await self._dispatch(request, writer, keep_alive)
                except HttpError as error:
                    self._count_rejection(error.status)
                    writer.write(
                        json_response(
                            error.status,
                            {"error": error.message, "status": error.status},
                            keep_alive=keep_alive,
                        )
                    )
                    await writer.drain()
                    handled = True
                except (ConnectionResetError, BrokenPipeError):
                    return
                except Exception as error:  # defensive: never kill the connection loop silently
                    writer.write(
                        json_response(
                            500,
                            {"error": f"{type(error).__name__}: {error}", "status": 500},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if not handled or not keep_alive:
                    return
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _count_rejection(status: int) -> None:
        handle = obs.active()
        if handle is not None and status == 504:
            handle.metrics.counter("serve.rejected.deadline").inc()

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> bool:
        handle = obs.active()
        if handle is not None:
            handle.metrics.counter("serve.requests").inc()
        method, path = request.method, request.path
        if method == "GET" and path == "/v1/healthz":
            payload = {
                "status": "draining" if self._draining else "ok",
                "models": self.registry.names(),
                "serving": {
                    name: state.coalescer.stats()
                    for name, state in self._models.items()
                },
            }
            if self._packed is not None:
                payload["packed"] = self._packed.stats()
            writer.write(json_response(200, payload, keep_alive))
            await writer.drain()
            return True
        if method == "GET" and path == "/v1/models":
            writer.write(
                json_response(200, {"models": self.registry.describe()}, keep_alive)
            )
            await writer.drain()
            return True
        if method == "PUT" and path.startswith("/v1/models/"):
            await self._handle_register(request, writer, keep_alive)
            return True
        if method == "POST" and path == "/v1/sample":
            await self._handle_sample(request, writer, keep_alive)
            return True
        if method == "POST" and path == "/v1/marginal":
            await self._handle_marginal(request, writer)
            return True
        raise HttpError(404, f"no route for {method} {path}")

    # -- routes --------------------------------------------------------
    async def _handle_register(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        if not self.allow_register:
            raise HttpError(405, "model registration is disabled on this server")
        if self._draining:
            raise HttpError(503, "server is draining")
        name = request.path[len("/v1/models/") :]
        try:
            entry = self.registry.register_payload(name, request.json())
        except RegistryError as error:
            raise HttpError(400, str(error))
        # A re-registration replaces the model; drop any cached serving
        # state so the next request sees the new spec.
        stale = self._models.pop(name, None)
        if stale is not None:
            await stale.coalescer.drain()
            stale.runtime.unregister_snapshot_section("serve")
            stale.runtime.shutdown()
        writer.write(json_response(200, {"registered": entry.describe()}, keep_alive))
        await writer.drain()

    def _deadline(self, payload) -> Optional[float]:
        deadline_ms = payload.get("deadline_ms", None)
        if deadline_ms is None:
            return self.default_deadline
        try:
            deadline = float(deadline_ms) / 1000.0
        except (TypeError, ValueError):
            raise HttpError(400, f"malformed deadline_ms {deadline_ms!r}")
        if deadline <= 0:
            raise HttpError(400, "deadline_ms must be positive")
        return deadline

    async def _handle_sample(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        if self._draining:
            raise HttpError(503, "server is draining")
        payload = request.json()
        name = payload.get("model")
        if not isinstance(name, str):
            raise HttpError(400, 'sample request needs a string "model"')
        try:
            state = self._model_state(name)
        except UnknownModelError as error:
            raise HttpError(404, str(error))
        kernel = payload.get("kernel", "glauber")
        try:
            get_kernel(str(kernel))
        except ValueError as error:
            raise HttpError(400, str(error))
        try:
            count = int(payload.get("count", 0))
            seed = int(payload.get("seed", 0))
            n_chains = int(payload.get("n_chains", 1))
        except (TypeError, ValueError) as error:
            raise HttpError(400, f"malformed sample request: {error}")
        if count < 1:
            raise HttpError(400, '"count" must be a positive integer')
        if n_chains < 1:
            raise HttpError(400, '"n_chains" must be a positive integer')
        initial = None
        if payload.get("initial") is not None:
            if not isinstance(payload["initial"], dict):
                raise HttpError(400, '"initial" must be an object of node -> value')
            initial = {
                parse_node(str(key)): value
                for key, value in payload["initial"].items()
            }
        deadline = self._deadline(payload)
        request_id = new_request_id()
        with obs.span(
            "serve.request",
            endpoint="sample",
            model=name,
            kernel=str(kernel),
            request_id=request_id,
        ):
            if self._packed is not None:
                # Cross-model mode: different models' requests fold into
                # one packed kernel step (same bit-identity contract).
                call = self._packed.sample(
                    name,
                    state.entry.instance,
                    str(kernel),
                    count,
                    seed=seed,
                    n_chains=n_chains,
                    initial=initial,
                    request_id=request_id,
                )
            else:
                call = state.coalescer.sample(
                    str(kernel),
                    count,
                    seed=seed,
                    n_chains=n_chains,
                    initial=initial,
                    request_id=request_id,
                )
            try:
                if deadline is None:
                    states, batch_id, batch_size = await call
                else:
                    states, batch_id, batch_size = await asyncio.wait_for(
                        call, timeout=deadline
                    )
            except asyncio.TimeoutError:
                raise HttpError(
                    504,
                    f"deadline of {deadline * 1000.0:g} ms exceeded; "
                    "queued work cancelled",
                )
            except Backpressure as error:
                raise HttpError(429, str(error))
            except CoalescerClosed as error:
                raise HttpError(503, str(error))
            except ValueError as error:
                raise HttpError(400, str(error))
        nodes = state.entry.nodes
        body = {
            "model": name,
            "kernel": str(kernel),
            "count": count,
            "seed": seed,
            "n_chains": n_chains,
            "request_id": request_id,
            # batch_id/batch_size let a client observe coalescing from the
            # JSON responses alone (the CI smoke asserts on them).
            "batch_id": batch_id,
            "batch_size": batch_size,
            "nodes": [jsonable_node(node) for node in nodes],
            "states": [encode_state(nodes, chain_state) for chain_state in states],
        }
        writer.write(json_response(200, body, keep_alive))
        await writer.drain()

    async def _handle_marginal(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            raise HttpError(503, "server is draining")
        payload = request.json()
        name = payload.get("model")
        if not isinstance(name, str):
            raise HttpError(400, 'marginal request needs a string "model"')
        try:
            state = self._model_state(name)
        except UnknownModelError as error:
            raise HttpError(404, str(error))
        try:
            radius = int(payload.get("radius", 0))
        except (TypeError, ValueError) as error:
            raise HttpError(400, f"malformed radius: {error}")
        if radius < 0:
            raise HttpError(400, '"radius" must be a non-negative integer')
        instance = state.entry.instance
        if payload.get("nodes") is None:
            nodes = list(instance.free_nodes)
        else:
            if not isinstance(payload["nodes"], list):
                raise HttpError(400, '"nodes" must be a list')
            free = set(instance.free_nodes)
            nodes = [parse_node(str(node)) for node in payload["nodes"]]
            unknown = [node for node in nodes if node not in free]
            if unknown:
                raise HttpError(400, f"nodes not free in {name!r}: {unknown!r}")
        request_id = new_request_id()
        handle = obs.active()
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        _END = object()

        def pump() -> None:
            try:
                for node, marginal in state.runtime.stream_ball_marginals(
                    instance, nodes, radius
                ):
                    loop.call_soon_threadsafe(queue.put_nowait, (node, marginal))
                loop.call_soon_threadsafe(queue.put_nowait, _END)
            except Exception as error:  # surfaced as the stream's last line
                loop.call_soon_threadsafe(queue.put_nowait, error)

        with obs.span(
            "serve.request",
            endpoint="marginal",
            model=name,
            radius=radius,
            request_id=request_id,
        ):
            import time as _time

            started = _time.monotonic()
            first = True
            future = loop.run_in_executor(state.coalescer._executor, pump)
            await start_chunked(writer)
            try:
                while True:
                    item = await queue.get()
                    if item is _END:
                        break
                    if isinstance(item, Exception):
                        line = {"error": f"{type(item).__name__}: {item}"}
                        await write_chunk(
                            writer, json.dumps(line).encode("utf-8") + b"\n"
                        )
                        break
                    node, marginal = item
                    if first and handle is not None:
                        handle.metrics.histogram("serve.ttfr_seconds").observe(
                            _time.monotonic() - started
                        )
                    first = False
                    line = {
                        "node": jsonable_node(node),
                        "marginal": sorted(marginal.items()),
                        "request_id": request_id,
                    }
                    await write_chunk(
                        writer, json.dumps(line).encode("utf-8") + b"\n"
                    )
            finally:
                await future
            await finish_chunked(writer)
