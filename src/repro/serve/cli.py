"""``repro-serve``: run the coalescing sampling server from the shell.

Mirrors the ``repro-cluster-worker`` CLI contract: the process prints one
``repro-serve listening on HOST:PORT`` banner to stdout (flushed) so a
parent that launched it with ``--port 0`` can discover the bound port,
then serves until SIGINT/SIGTERM, at which point it drains gracefully --
in-flight requests complete before the process exits.

Models come from repeated ``--model NAME=JSON`` flags (the declarative
payload of ``PUT /v1/models/<name>``), e.g.::

    repro-serve --port 0 --max-batch 8 \
        --model 'demo={"family": "hardcore", "graph": {"kind": "cycle", "n": 16}, "fugacity": 1.2}'

``--demo`` registers a small hardcore model under ``demo`` when no
``--model`` was given, so the server is probeable out of the box.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import List, Optional

from repro.serve.registry import ModelRegistry, RegistryError
from repro.serve.server import SamplingServer

DEMO_MODEL = {
    "family": "hardcore",
    "graph": {"kind": "cycle", "n": 16},
    "fugacity": 1.2,
    "pinning": {"0": 1},
}


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Coalescing sampling-as-a-service server (repro.serve).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks a free port (see the banner)"
    )
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--max-queue", type=int, default=128)
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline (requests may override)",
    )
    parser.add_argument(
        "--model",
        action="append",
        default=[],
        metavar="NAME=JSON",
        help="register a model at startup (repeatable)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="register a demo hardcore model when no --model is given",
    )
    parser.add_argument(
        "--no-register",
        action="store_true",
        help="disable PUT /v1/models registration",
    )
    parser.add_argument(
        "--cross-model",
        action="store_true",
        help=(
            "coalesce concurrent requests for different models into one "
            "packed kernel step (PackedCoalescer)"
        ),
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="enable metrics + span tracing for the server's lifetime",
    )
    return parser.parse_args(argv)


def build_registry(specs: List[str], demo: bool) -> ModelRegistry:
    """A registry from ``NAME=JSON`` CLI specs (plus the optional demo)."""
    registry = ModelRegistry()
    for spec in specs:
        name, separator, payload = spec.partition("=")
        if not separator:
            raise RegistryError(
                f"--model expects NAME=JSON, got {spec!r}"
            )
        try:
            decoded = json.loads(payload)
        except json.JSONDecodeError as error:
            raise RegistryError(f"--model {name!r}: invalid JSON: {error}")
        registry.register_payload(name, decoded)
    if demo and not len(registry):
        registry.register_payload("demo", DEMO_MODEL)
    return registry


async def _serve(args: argparse.Namespace, registry: ModelRegistry) -> int:
    server = SamplingServer(
        registry,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        default_deadline_ms=args.deadline_ms,
        allow_register=not args.no_register,
        cross_model=args.cross_model,
    )
    host, port = await server.start()
    print(f"repro-serve listening on {host}:{port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix platforms
            pass
    await stop.wait()
    print("repro-serve draining", flush=True)
    await server.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    try:
        registry = build_registry(args.model, args.demo)
    except RegistryError as error:
        print(f"repro-serve: {error}", file=sys.stderr)
        return 2
    handle_owned = False
    if args.obs:
        from repro import obs

        if obs.active() is None:
            obs.enable(proc="serve")
            handle_owned = True
    try:
        return asyncio.run(_serve(args, registry))
    finally:
        if handle_owned:
            from repro import obs

            obs.disable()


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
