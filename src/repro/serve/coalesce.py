"""Cross-request coalescing: many concurrent sample requests, one chain batch.

The production-scale move of the serving layer (the continuous-batching
shape of modern inference servers): concurrent ``POST /v1/sample``
requests against the same model are held for a bounded window
(``max_wait`` seconds, or until ``max_batch`` requests are queued) and
merged into a *single* :meth:`Runtime.run_chains` call.

Bit-identity is free, not a trade-off.  The chain contract
(:func:`~repro.runtime.chains.chain_seed_sequences` + per-chain RNG
streams) makes chain ``c`` of any multi-chain execution depend only on
its own spawned ``SeedSequence`` -- never on how many other chains share
the code matrix.  So the coalescer spawns each request's per-chain seeds
from *its own* root seed, concatenates the seed lists into one
``run_chains(kernel, instance, count, seeds=concat)`` call, and splits
the resulting states back by offset: every response is bit-identical to
the same request served alone.

Each coalescer owns one model's execution: one shared
:class:`~repro.runtime.Runtime`, one warmed ball cache, and one
dedicated single-thread executor -- so batches for a model are
serialised (no cache races between threads) while the event loop stays
free to accept and queue more requests.

:class:`PackedCoalescer` extends the same move *across* models: requests
for different registered models (same kernel and count) merge into one
:meth:`Runtime.run_packed` call, advancing every group inside a single
packed code matrix (:class:`~repro.runtime.chains.PackedBatch`) -- the
per-step Python overhead is paid once per step, not once per model, and
the per-request seed contract keeps every response bit-identical to a
solo run.  Enable it with ``SamplingServer(cross_model=True)``.

Backpressure and deadlines live here too: admitting a request beyond
``max_queue`` outstanding raises :class:`Backpressure` (HTTP 429), and a
caller that abandons its request (``asyncio.wait_for`` timeout -> HTTP
504) is removed from its queued bucket -- a bucket whose every request
was abandoned is dropped without running at all.
"""

from __future__ import annotations

import asyncio
import functools
import os
import time
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro import obs
from repro.gibbs import SamplingInstance
from repro.runtime import Runtime
from repro.runtime.chains import chain_seed_sequences

Node = Hashable
Value = Hashable


class Backpressure(RuntimeError):
    """The coalescer's outstanding-request cap was hit (HTTP 429)."""


class CoalescerClosed(RuntimeError):
    """The coalescer is draining; no new requests are admitted (HTTP 503)."""


def new_request_id() -> str:
    """A fresh request id (never touches numpy RNG state)."""
    return os.urandom(8).hex()


class _Pending:
    """One admitted request waiting for its slice of a batch."""

    __slots__ = ("request_id", "seeds", "future", "admitted", "settled")

    def __init__(self, request_id: str, seeds: Sequence, future: asyncio.Future) -> None:
        self.request_id = request_id
        self.seeds = list(seeds)
        self.future = future
        self.admitted = time.monotonic()
        self.settled = False


class _Bucket:
    """Requests merged into one ``run_chains`` call: same kernel/count/initial."""

    __slots__ = ("key", "requests", "timer")

    def __init__(self, key: Tuple) -> None:
        self.key = key
        self.requests: List[_Pending] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class RequestCoalescer:
    """Per-model request coalescer over one shared runtime.

    Parameters
    ----------
    name : str
        Model name (metric labels and span attributes).
    instance : SamplingInstance
        The model every batch samples from (shared ball cache included).
    runtime : Runtime
        The shared execution policy for merged batches (typically
        ``Runtime("batched")``).
    max_batch : int
        Requests merged per batch; the ``max_batch``-th admission flushes
        immediately.
    max_wait : float
        Seconds a partially filled bucket waits for co-travellers.
    max_queue : int
        Outstanding-request cap across queued and in-flight batches;
        admissions beyond it raise :class:`Backpressure`.
    """

    def __init__(
        self,
        name: str,
        instance: SamplingInstance,
        runtime: Runtime,
        max_batch: int = 8,
        max_wait: float = 0.002,
        max_queue: int = 128,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self.name = name
        self.instance = instance
        self.runtime = runtime
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.max_queue = int(max_queue)
        self._open: Dict[Tuple, _Bucket] = {}
        self._inflight: set = set()
        self._outstanding = 0
        self._closing = False
        # One executor thread per model: batches are serialised, so the
        # shared instance/ball cache is only ever touched by one thread,
        # and the event loop never blocks on a running batch.
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"serve-{name}"
        )
        self._batches = 0
        self._served = 0

    # -- accounting ----------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Requests admitted but not yet answered (the queue depth)."""
        return self._outstanding

    @property
    def batches(self) -> int:
        """Batches dispatched to ``run_chains`` so far."""
        return self._batches

    def stats(self) -> Dict[str, object]:
        """The serving block this model contributes to ``Runtime.snapshot()``."""
        return {
            "model": self.name,
            "outstanding": self._outstanding,
            "batches": self._batches,
            "served": self._served,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait * 1000.0,
            "max_queue": self.max_queue,
            "draining": self._closing,
        }

    def _gauge(self) -> None:
        handle = obs.active()
        if handle is not None:
            handle.metrics.gauge("serve.queue_depth").set(self._outstanding)

    def _settle(self, pending: _Pending) -> None:
        if not pending.settled:
            pending.settled = True
            self._outstanding -= 1
            self._gauge()

    # -- admission -----------------------------------------------------
    async def sample(
        self,
        kernel: str,
        count: int,
        seed=0,
        n_chains: int = 1,
        initial: Optional[Dict[Node, Value]] = None,
        request_id: Optional[str] = None,
    ) -> Tuple[List[Dict[Node, Value]], str, int]:
        """Admit one sample request; resolves to ``(states, batch_id, batch_size)``.

        ``states`` is bit-identical to ``Runtime.run_chains(kernel,
        instance, count, seeds=chain_seed_sequences(seed, n_chains))``
        served alone -- regardless of which other requests share the
        batch.  ``batch_id``/``batch_size`` identify the coalesced batch
        the request rode in, so clients can observe coalescing from
        responses alone.
        """
        if self._closing:
            raise CoalescerClosed(f"model {self.name!r} is draining")
        if self._outstanding >= self.max_queue:
            handle = obs.active()
            if handle is not None:
                handle.metrics.counter("serve.rejected.backpressure").inc()
            raise Backpressure(
                f"model {self.name!r} has {self._outstanding} outstanding "
                f"requests (cap {self.max_queue})"
            )
        if count < 1:
            raise ValueError("count must be at least 1")
        if n_chains < 1:
            raise ValueError("n_chains must be at least 1")
        loop = asyncio.get_running_loop()
        seeds = chain_seed_sequences(seed, n_chains)
        pending = _Pending(
            request_id or new_request_id(), seeds, loop.create_future()
        )
        self._outstanding += 1
        self._gauge()
        initial_token = (
            None
            if initial is None
            else tuple(sorted(initial.items(), key=repr))
        )
        key = (str(kernel), int(count), initial_token)
        bucket = self._open.get(key)
        if bucket is None:
            bucket = self._open[key] = _Bucket(key)
            bucket.timer = loop.call_later(
                self.max_wait, functools.partial(self._flush, key)
            )
        bucket.requests.append(pending)
        if len(bucket.requests) >= self.max_batch:
            self._flush(key)
        try:
            return await pending.future
        except asyncio.CancelledError:
            # The caller gave up (deadline): take the request back out of
            # its queued bucket so abandoned work is never executed.
            self._discard(key, pending)
            raise

    def _discard(self, key: Tuple, pending: _Pending) -> None:
        self._settle(pending)
        bucket = self._open.get(key)
        if bucket is None:
            return
        bucket.requests = [
            request for request in bucket.requests if request is not pending
        ]
        if not bucket.requests:
            if bucket.timer is not None:
                bucket.timer.cancel()
            del self._open[key]

    # -- flushing ------------------------------------------------------
    def _flush(self, key: Tuple) -> None:
        """Close a bucket and dispatch it as one batch (sync, loop thread)."""
        bucket = self._open.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        live = [
            request
            for request in bucket.requests
            if not request.future.cancelled() and not request.settled
        ]
        if not live:
            return
        task = asyncio.get_running_loop().create_task(self._run_batch(key, live))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, key: Tuple, requests: List[_Pending]) -> None:
        kernel, count, initial_token = key
        initial = None if initial_token is None else dict(initial_token)
        seeds: List = []
        offsets = [0]
        for request in requests:
            seeds.extend(request.seeds)
            offsets.append(len(seeds))
        self._batches += 1
        batch_id = new_request_id()
        handle = obs.active()
        if handle is not None:
            handle.metrics.counter("serve.batches").inc()
            handle.metrics.counter("serve.coalesced_requests").inc(len(requests))
        call = functools.partial(
            self.runtime.run_chains,
            kernel,
            self.instance,
            count,
            seeds=seeds,
        )
        if initial is not None:
            call = functools.partial(call, initial=initial)
        loop = asyncio.get_running_loop()
        try:
            # One span per coalesced batch, carrying every request id it
            # serves -- the stitch between per-request traces and the
            # single run_chains execution.
            with obs.span(
                "serve.batch",
                model=self.name,
                kernel=kernel,
                count=count,
                batch_id=batch_id,
                requests=",".join(request.request_id for request in requests),
                size=len(requests),
                chains=len(seeds),
            ):
                states = await loop.run_in_executor(self._executor, call)
        except Exception as error:
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(error)
                self._settle(request)
            return
        now = time.monotonic()
        for index, request in enumerate(requests):
            slice_ = states[offsets[index] : offsets[index + 1]]
            if not request.future.done():
                request.future.set_result((slice_, batch_id, len(requests)))
                self._served += 1
                if handle is not None:
                    handle.metrics.histogram("serve.ttfr_seconds").observe(
                        now - request.admitted
                    )
            self._settle(request)

    # -- lifecycle -----------------------------------------------------
    async def drain(self) -> None:
        """Flush every queued bucket and wait for in-flight batches.

        Admissions after this point raise :class:`CoalescerClosed`;
        requests already admitted complete normally (graceful drain).
        """
        self._closing = True
        for key in list(self._open):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self._executor.shutdown(wait=True)


class _PackedPending(_Pending):
    """One admitted cross-model request: carries its own model group."""

    __slots__ = ("name", "instance", "initial")

    def __init__(
        self,
        request_id: str,
        seeds: Sequence,
        future: asyncio.Future,
        name: str,
        instance: SamplingInstance,
        initial: Optional[Dict[Node, Value]],
    ) -> None:
        super().__init__(request_id, seeds, future)
        self.name = name
        self.instance = instance
        self.initial = initial


class PackedCoalescer:
    """Cross-model request coalescer: one packed kernel step per batch.

    The multi-tenant sibling of :class:`RequestCoalescer`: concurrent
    requests for *different* registered models -- same kernel and count,
    any mix of instances -- are held for the same bounded window and
    merged into a single :meth:`Runtime.run_packed` call.  All groups
    advance inside one padded :class:`~repro.runtime.chains.PackedBatch`
    code matrix, so the per-step Python overhead is paid once across every
    model instead of once per model (and non-fusable mixes fall back to
    group-by-group execution transparently).

    Bit-identity is the same free property as the per-model coalescer's:
    each request is its own pack group with per-chain seeds spawned from
    *its own* root seed, and a pack group's chains are bit-identical to
    the solo batch (the :class:`~repro.runtime.chains.PackedBatch`
    determinism contract) -- so every response equals the same request
    served alone, regardless of which models share the step.

    One coalescer serves every model: one shared runtime and one
    dedicated single-thread executor, so batches across all models are
    serialised and no instance is ever touched by two threads.
    """

    def __init__(
        self,
        runtime: Runtime,
        max_batch: int = 8,
        max_wait: float = 0.002,
        max_queue: int = 128,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self.runtime = runtime
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.max_queue = int(max_queue)
        self._open: Dict[Tuple, _Bucket] = {}
        self._inflight: set = set()
        self._outstanding = 0
        self._closing = False
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-packed"
        )
        self._batches = 0
        self._served = 0
        self._served_by_model: Dict[str, int] = {}

    # -- accounting ----------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Requests admitted but not yet answered (across all models)."""
        return self._outstanding

    @property
    def batches(self) -> int:
        """Packed batches dispatched to ``run_packed`` so far."""
        return self._batches

    def stats(self) -> Dict[str, object]:
        """The cross-model serving block (``/v1/healthz`` and snapshots)."""
        return {
            "mode": "packed",
            "outstanding": self._outstanding,
            "batches": self._batches,
            "served": self._served,
            "served_by_model": dict(sorted(self._served_by_model.items())),
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait * 1000.0,
            "max_queue": self.max_queue,
            "draining": self._closing,
        }

    def _gauge(self) -> None:
        handle = obs.active()
        if handle is not None:
            handle.metrics.gauge("serve.queue_depth").set(self._outstanding)

    def _settle(self, pending: _Pending) -> None:
        if not pending.settled:
            pending.settled = True
            self._outstanding -= 1
            self._gauge()

    # -- admission -----------------------------------------------------
    async def sample(
        self,
        name: str,
        instance: SamplingInstance,
        kernel: str,
        count: int,
        seed=0,
        n_chains: int = 1,
        initial: Optional[Dict[Node, Value]] = None,
        request_id: Optional[str] = None,
    ) -> Tuple[List[Dict[Node, Value]], str, int]:
        """Admit one request for ``name``; resolves like the per-model path.

        ``states`` is bit-identical to ``Runtime.run_chains(kernel,
        instance, count, seeds=chain_seed_sequences(seed, n_chains))``
        served alone, even when the batch packs other models' requests.
        """
        if self._closing:
            raise CoalescerClosed("the packed coalescer is draining")
        if self._outstanding >= self.max_queue:
            handle = obs.active()
            if handle is not None:
                handle.metrics.counter("serve.rejected.backpressure").inc()
            raise Backpressure(
                f"packed coalescer has {self._outstanding} outstanding "
                f"requests (cap {self.max_queue})"
            )
        if count < 1:
            raise ValueError("count must be at least 1")
        if n_chains < 1:
            raise ValueError("n_chains must be at least 1")
        loop = asyncio.get_running_loop()
        pending = _PackedPending(
            request_id or new_request_id(),
            chain_seed_sequences(seed, n_chains),
            loop.create_future(),
            name,
            instance,
            initial,
        )
        self._outstanding += 1
        self._gauge()
        # Unlike the per-model key, the model name is NOT part of the
        # bucket key -- folding different models into one step is the
        # whole point.  Per-request initials ride in the pending instead.
        key = (str(kernel), int(count))
        bucket = self._open.get(key)
        if bucket is None:
            bucket = self._open[key] = _Bucket(key)
            bucket.timer = loop.call_later(
                self.max_wait, functools.partial(self._flush, key)
            )
        bucket.requests.append(pending)
        if len(bucket.requests) >= self.max_batch:
            self._flush(key)
        try:
            return await pending.future
        except asyncio.CancelledError:
            self._discard(key, pending)
            raise

    def _discard(self, key: Tuple, pending: _Pending) -> None:
        self._settle(pending)
        bucket = self._open.get(key)
        if bucket is None:
            return
        bucket.requests = [
            request for request in bucket.requests if request is not pending
        ]
        if not bucket.requests:
            if bucket.timer is not None:
                bucket.timer.cancel()
            del self._open[key]

    # -- flushing ------------------------------------------------------
    def _flush(self, key: Tuple) -> None:
        bucket = self._open.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        live = [
            request
            for request in bucket.requests
            if not request.future.cancelled() and not request.settled
        ]
        if not live:
            return
        task = asyncio.get_running_loop().create_task(self._run_batch(key, live))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, key: Tuple, requests: List[_PackedPending]) -> None:
        kernel, count = key
        self._batches += 1
        batch_id = new_request_id()
        models = sorted({request.name for request in requests})
        handle = obs.active()
        if handle is not None:
            handle.metrics.counter("serve.batches").inc()
            handle.metrics.counter("serve.coalesced_requests").inc(len(requests))
            handle.metrics.counter("serve.packed_batches").inc()
            handle.metrics.counter("serve.packed_models").inc(len(models))
        groups = [
            (request.instance, request.seeds, request.initial)
            for request in requests
        ]
        call = functools.partial(self.runtime.run_packed, kernel, groups, count)
        loop = asyncio.get_running_loop()
        try:
            with obs.span(
                "serve.packed_batch",
                kernel=kernel,
                count=count,
                batch_id=batch_id,
                models=",".join(models),
                requests=",".join(request.request_id for request in requests),
                size=len(requests),
                chains=sum(len(request.seeds) for request in requests),
            ):
                results = await loop.run_in_executor(self._executor, call)
        except Exception as error:
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(error)
                self._settle(request)
            return
        now = time.monotonic()
        for index, request in enumerate(requests):
            states = results[index]
            if not request.future.done():
                request.future.set_result((states, batch_id, len(requests)))
                self._served += 1
                self._served_by_model[request.name] = (
                    self._served_by_model.get(request.name, 0) + 1
                )
                if handle is not None:
                    handle.metrics.histogram("serve.ttfr_seconds").observe(
                        now - request.admitted
                    )
            self._settle(request)

    # -- lifecycle -----------------------------------------------------
    async def drain(self) -> None:
        """Flush every queued bucket and wait for in-flight packed batches."""
        self._closing = True
        for key in list(self._open):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self._executor.shutdown(wait=True)
