"""Sampling-as-a-service: the coalescing HTTP/JSON serving layer.

The front end that turns the FengY18 reproduction from a library into a
system with users: named models (picklable
:class:`~repro.runtime.shards.InstanceSpec` snapshots) served over a
small asyncio HTTP/1.1 server, with concurrent sample requests against
one model *coalesced* into shared :meth:`Runtime.run_chains` batches --
bit-identical per request to a solo run, by the per-chain seed contract
(see :mod:`repro.serve.coalesce`).

Layout: :mod:`~repro.serve.registry` (named models),
:mod:`~repro.serve.coalesce` (the batching core),
:mod:`~repro.serve.http` (HTTP/1.1 framing),
:mod:`~repro.serve.server` (routes + lifecycle),
:mod:`~repro.serve.client` (test/benchmark client),
:mod:`~repro.serve.cli` (the ``repro-serve`` console script).
"""

from repro.serve.coalesce import (
    Backpressure,
    CoalescerClosed,
    PackedCoalescer,
    RequestCoalescer,
)
from repro.serve.registry import (
    ModelEntry,
    ModelRegistry,
    RegistryError,
    UnknownModelError,
    build_instance,
    encode_state,
)
from repro.serve.server import SamplingServer

__all__ = [
    "Backpressure",
    "CoalescerClosed",
    "PackedCoalescer",
    "RequestCoalescer",
    "ModelEntry",
    "ModelRegistry",
    "RegistryError",
    "UnknownModelError",
    "build_instance",
    "encode_state",
    "SamplingServer",
]
