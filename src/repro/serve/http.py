"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The serving layer (:mod:`repro.serve.server`) needs exactly four things
from HTTP: parse a request head + body, write a JSON response, stream a
chunked body, and keep-alive.  This module provides them on top of
``asyncio.StreamReader``/``StreamWriter`` with no third-party dependency
-- the same "thin framing over a trusted transport" stance as the cluster
wire protocol (:mod:`repro.cluster.protocol`), with the same hard limits
on header and body size so a stray client cannot make the server buffer
an unbounded request.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: Refuse request heads (request line + headers) above this size.
MAX_HEADER_BYTES = 64 * 1024
#: Refuse request bodies above this size (model specs and sample requests
#: are kilobytes; nothing legitimate approaches this).
MAX_BODY_BYTES = 16 * 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """An error with an HTTP status; rendered as a JSON error body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message


class Request:
    """One parsed HTTP request: method, split target, headers, raw body."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self):
        """The body decoded as JSON (``{}`` when empty); 400 on bad JSON."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}")

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 keep-alive semantics: persistent unless ``close``."""
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from the stream; ``None`` on a clean EOF.

    Raises
    ------
    HttpError
        On malformed request lines, oversized heads/bodies, or a body
        truncated by the peer mid-transfer.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "connection closed mid request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    try:
        body_bytes = int(length)
    except ValueError:
        raise HttpError(400, f"malformed Content-Length {length!r}")
    if body_bytes < 0 or body_bytes > MAX_BODY_BYTES:
        raise HttpError(413, f"request body of {body_bytes} bytes refused")
    body = b""
    if body_bytes:
        try:
            body = await reader.readexactly(body_bytes)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid request body")
    return Request(method, split.path, query, headers, body)


def _head(
    status: int, content_type: str, extra: Tuple[Tuple[str, str], ...]
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}", f"Content-Type: {content_type}"]
    lines.extend(f"{name}: {value}" for name, value in extra)
    return ("\r\n".join(lines) + "\r\n").encode("latin-1")


def json_response(status: int, payload, keep_alive: bool = True) -> bytes:
    """Render a complete JSON response frame (headers + body)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    extra = (
        ("Content-Length", str(len(body))),
        ("Connection", "keep-alive" if keep_alive else "close"),
    )
    return _head(status, "application/json", extra) + b"\r\n" + body


async def start_chunked(
    writer: asyncio.StreamWriter,
    status: int = 200,
    content_type: str = "application/x-ndjson",
) -> None:
    """Write the head of a chunked (streaming) response."""
    extra = (("Transfer-Encoding", "chunked"), ("Connection", "keep-alive"))
    writer.write(_head(status, content_type, extra) + b"\r\n")
    await writer.drain()


async def write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
    """Write one chunk of a chunked response body."""
    if not data:
        return  # a zero-length chunk would terminate the body
    writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
    await writer.drain()


async def finish_chunked(writer: asyncio.StreamWriter) -> None:
    """Terminate a chunked response body."""
    writer.write(b"0\r\n\r\n")
    await writer.drain()
