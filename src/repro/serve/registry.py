"""The serving model registry: named, picklable ``InstanceSpec`` entries.

A *model* is a conditioned :class:`~repro.gibbs.SamplingInstance` frozen
into the picklable :class:`~repro.runtime.shards.InstanceSpec` -- the same
snapshot the cluster ships to its workers.  Serving from the spec's
reconstruction (``spec.to_instance()``) rather than the original object
buys the registry the spec's bit-identity guarantee for free: the compiled
engine is installed directly from the shipped arrays, so every sample and
marginal computed for a registered model is bit-identical to the same
computation on the instance that was registered.

Models enter the registry either programmatically
(:meth:`ModelRegistry.register_instance`, used at server startup and by
tests) or as a declarative JSON payload (:meth:`ModelRegistry.register_payload`,
the body of ``PUT /v1/models/<name>``)::

    {"family": "hardcore", "graph": {"kind": "cycle", "n": 16},
     "fugacity": 1.2, "pinning": {"0": 1}}

Families map onto the model constructors of :mod:`repro.models`, graphs
onto the generators of :mod:`repro.graphs`.  Grid nodes are 2-tuples; in
JSON they are spelled ``"row,col"`` (pinning keys) and encoded as
``[row, col]`` pairs (states).
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.gibbs import SamplingInstance
from repro.runtime.shards import InstanceSpec

Node = Hashable
Value = Hashable

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class RegistryError(ValueError):
    """An invalid model name or declarative model payload (HTTP 400)."""


class UnknownModelError(KeyError):
    """A model name the registry does not hold (HTTP 404)."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0] if self.args else ""


def jsonable_node(node: Node):
    """A node as JSON: ints/strings pass through, tuples become lists."""
    if isinstance(node, tuple):
        return list(node)
    return node


def encode_state(nodes, state: Dict[Node, Value]) -> List:
    """One configuration as ``[[node, value], ...]`` in canonical node order.

    The canonical order is the spec's compiled node order, so two
    bit-identical configurations encode to identical JSON -- which is what
    lets clients assert bit-identity on the serialised responses alone.
    """
    return [[jsonable_node(node), state[node]] for node in nodes]


def parse_node(key: str) -> Node:
    """A JSON pinning key back into a graph node.

    ``"3"`` is the integer node 3; ``"1,2"`` is the grid node ``(1, 2)``;
    anything else stays a string.
    """
    text = key.strip()
    try:
        return int(text)
    except ValueError:
        pass
    if "," in text:
        parts = [part.strip() for part in text.split(",")]
        try:
            return tuple(int(part) for part in parts)
        except ValueError:
            pass
    return text


def _build_graph(payload) -> object:
    from repro.graphs import (
        cycle_graph,
        grid_graph,
        path_graph,
        random_tree,
    )

    if not isinstance(payload, dict):
        raise RegistryError('"graph" must be an object like {"kind": "cycle", "n": 12}')
    kind = payload.get("kind")
    try:
        if kind == "cycle":
            return cycle_graph(int(payload["n"]))
        if kind == "path":
            return path_graph(int(payload["n"]))
        if kind == "grid":
            return grid_graph(int(payload["rows"]), int(payload["cols"]))
        if kind == "tree":
            return random_tree(int(payload["n"]), seed=int(payload.get("seed", 0)))
    except KeyError as error:
        raise RegistryError(f"graph kind {kind!r} is missing parameter {error}")
    except (TypeError, ValueError) as error:
        raise RegistryError(f"invalid graph parameters: {error}")
    raise RegistryError(
        f"unknown graph kind {kind!r}; expected cycle, path, grid or tree"
    )


def _build_distribution(family: str, graph, payload):
    from repro.models import (
        coloring_model,
        hardcore_model,
        ising_model,
        matching_model,
        two_spin_model,
    )

    try:
        if family == "hardcore":
            return hardcore_model(graph, fugacity=float(payload.get("fugacity", 1.0)))
        if family == "coloring":
            return coloring_model(graph, num_colors=int(payload["num_colors"]))
        if family == "two-spin":
            return two_spin_model(
                graph,
                beta=float(payload["beta"]),
                gamma=float(payload["gamma"]),
                field=float(payload.get("field", 1.0)),
            )
        if family == "ising":
            return ising_model(
                graph,
                interaction=float(payload["interaction"]),
                external_field=float(payload.get("external_field", 0.0)),
            )
        if family == "matching":
            return matching_model(graph, edge_weight=float(payload.get("edge_weight", 1.0)))
    except KeyError as error:
        raise RegistryError(f"model family {family!r} is missing parameter {error}")
    except (TypeError, ValueError) as error:
        raise RegistryError(f"invalid model parameters: {error}")
    raise RegistryError(
        f"unknown model family {family!r}; expected hardcore, coloring, "
        "two-spin, ising or matching"
    )


def build_instance(payload) -> Tuple[SamplingInstance, Dict[str, object]]:
    """A declarative JSON model payload into a conditioned instance.

    Returns the instance plus the metadata dict echoed by ``GET
    /v1/models``.  Raises :class:`RegistryError` for anything malformed --
    including a pinning that is not feasible for the model.
    """
    if not isinstance(payload, dict):
        raise RegistryError("model payload must be a JSON object")
    family = payload.get("family")
    if not isinstance(family, str):
        raise RegistryError('model payload needs a string "family"')
    graph = _build_graph(payload.get("graph"))
    distribution = _build_distribution(family, graph, payload)
    pinning: Dict[Node, Value] = {}
    raw_pinning = payload.get("pinning", {})
    if not isinstance(raw_pinning, dict):
        raise RegistryError('"pinning" must be an object of node -> value')
    for key, value in raw_pinning.items():
        pinning[parse_node(str(key))] = value
    unknown = [node for node in pinning if node not in distribution.graph]
    if unknown:
        raise RegistryError(f"pinned nodes not in the graph: {unknown!r}")
    try:
        instance = SamplingInstance(distribution, pinning)
        feasible = SamplingInstance(distribution).is_feasible_extension(pinning)
    except Exception as error:
        raise RegistryError(f"invalid pinning for {family!r}: {error}")
    if not feasible:
        raise RegistryError(
            f"pinning {dict(pinning)!r} is not feasible for {family!r}"
        )
    meta = {
        "family": family,
        "graph": dict(payload.get("graph", {})),
        "params": {
            key: value
            for key, value in payload.items()
            if key not in ("family", "graph", "pinning")
        },
        "pinning": {str(key): value for key, value in raw_pinning.items()},
    }
    return instance, meta


class ModelEntry:
    """One registered model: name, spec, metadata, lazy reconstruction."""

    __slots__ = ("name", "spec", "meta", "_instance", "_lock")

    def __init__(self, name: str, spec: InstanceSpec, meta: Optional[dict] = None) -> None:
        self.name = name
        self.spec = spec
        self.meta = dict(meta or {})
        self._instance: Optional[SamplingInstance] = None
        self._lock = threading.Lock()

    @property
    def instance(self) -> SamplingInstance:
        """The spec's reconstruction (memoised; bit-identical to the original)."""
        with self._lock:
            if self._instance is None:
                self._instance = self.spec.to_instance()
            return self._instance

    @property
    def nodes(self) -> List[Node]:
        """Canonical (compiled) node order; the response encoding order."""
        return list(self.spec.nodes)

    def describe(self) -> Dict[str, object]:
        """The ``GET /v1/models`` row for this entry."""
        return {
            "name": self.name,
            "nodes": len(self.spec.nodes),
            "alphabet": len(self.spec.alphabet),
            "meta": dict(self.meta),
        }


class ModelRegistry:
    """Named models the server is willing to sample from (thread-safe)."""

    def __init__(self) -> None:
        self._entries: Dict[str, ModelEntry] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _check_name(name: str) -> str:
        if not isinstance(name, str) or not _NAME_PATTERN.match(name):
            raise RegistryError(
                f"invalid model name {name!r}; use 1-64 characters from "
                "[A-Za-z0-9._-]"
            )
        return name

    def register_instance(
        self, name: str, instance: SamplingInstance, meta: Optional[dict] = None
    ) -> ModelEntry:
        """Register a live instance under ``name`` (snapshot to a spec)."""
        entry = ModelEntry(self._check_name(name), InstanceSpec.from_instance(instance), meta)
        with self._lock:
            self._entries[name] = entry
        return entry

    def register_payload(self, name: str, payload) -> ModelEntry:
        """Register a declarative JSON model payload under ``name``."""
        instance, meta = build_instance(payload)
        return self.register_instance(name, instance, meta)

    def get(self, name: str) -> ModelEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(sorted(self._entries)) or "none"
            raise UnknownModelError(f"unknown model {name!r}; registered: {known}")
        return entry

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def describe(self) -> List[Dict[str, object]]:
        with self._lock:
            entries = sorted(self._entries.values(), key=lambda entry: entry.name)
        return [entry.describe() for entry in entries]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
