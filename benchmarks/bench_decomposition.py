"""E11 benchmark -- network decomposition quality and scheduling overhead.

Regenerates the decomposition-quality table across graph sizes; the claim is
(O(log n), O(log n)) quality and O(log^2 n) scheduling overhead for a
locality-1 SLOCAL algorithm (the Lemma 3.1 substrate).
"""

import math

from repro.experiments import e11_decomposition
from repro.experiments.common import format_table


def test_e11_network_decomposition(once):
    rows = once(e11_decomposition.run, sizes=(16, 32, 64, 128))
    print()
    print(format_table(rows, title="E11: network decomposition quality (Lemma 3.1 substrate)"))
    for row in rows:
        log_n = row["log2_n"]
        assert row["colors"] <= 6 * log_n + 6
        assert row["max_cluster_diameter"] <= 4 * log_n + 4
        assert row["fallback_nodes"] <= max(1, 0.05 * row["n"])
    # Scheduling overhead normalised by log^2 n stays bounded as n grows.
    cycles = [row for row in rows if row["graph"].startswith("cycle")]
    assert cycles[-1]["rounds_over_log2sq"] <= 4.0 * cycles[0]["rounds_over_log2sq"]
