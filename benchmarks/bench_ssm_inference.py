"""E5 benchmark -- Theorem 5.1: strong spatial mixing versus required locality.

Regenerates the table of SSM decay rates and required inference radii across
fugacities; the claim is that the radius needed for a fixed accuracy grows
with the decay rate (slower decay => more rounds).
"""

from repro.experiments import e05_ssm_inference
from repro.experiments.common import format_table


def test_e05_ssm_vs_locality(once):
    rows = once(e05_ssm_inference.run, fugacities=(0.3, 1.0, 3.0, 8.0), cycle_size=16)
    print()
    print(format_table(rows, title="E5: SSM decay rate vs locality of inference (Theorem 5.1)"))
    # Influence at distance 4 is always below influence at distance 1
    # (decay), and the required radius is non-decreasing in the fugacity
    # (the decay slows down as lambda grows on the cycle).
    radii = [row["radius_for_eps"] for row in rows]
    assert radii == sorted(radii)
    for row in rows:
        assert row["influence_at_r4"] <= row["influence_at_r1"] + 1e-12
        assert 0.0 <= row["ssm_decay_rate"] <= 1.1
